"""Four-valued PSL semantics on finite traces.

The paper's embedding follows the PSL reference manual's semi-formal
semantics and Gordon's HOL formalisation [4]; both rest on the
*truncated-path* semantics of Eisner et al.: a finite trace can be read
under a **weak**, **neutral** or **strong** view of its truncation
point, and the monitoring verdict for a property combines the three:

=================  ============================================================
verdict            meaning
=================  ============================================================
``HOLDS_STRONGLY`` satisfied and no continuation can change that (``|=+``)
``HOLDS``          satisfied if the trace ends here (neutral satisfaction)
``PENDING``        not yet violated, but strong obligations are outstanding
``FAILS``          irrecoverably violated (not even weakly satisfied)
=================  ============================================================

The views are monotone -- ``STRONG => NEUTRAL => WEAK`` -- which the
property-based tests assert on random formulas and traces.

Boolean expressions evaluate identically under every view within the
trace; past the end of the trace everything holds under the weak view
and nothing holds under the strong or neutral views.  Negation swaps
the weak and strong views (the classic duality).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Mapping, Sequence, Tuple

from .ast_nodes import (
    EvalContext,
    FlAbort,
    FlAlways,
    FlAnd,
    FlBefore,
    FlBool,
    FlClocked,
    FlEventually,
    FlIff,
    FlImplies,
    FlNever,
    FlNext,
    FlNextA,
    FlNextE,
    FlNextEvent,
    FlNot,
    FlOr,
    FlSere,
    FlSuffixImpl,
    FlUntil,
    Formula,
)
from .errors import PslEvaluationError
from .sere import Matcher, Trace


class View(enum.Enum):
    """The three truncation views of Eisner et al."""

    WEAK = 0
    NEUTRAL = 1
    STRONG = 2


def dual(view: View) -> View:
    """Negation swaps weak and strong; neutral is self-dual."""
    if view is View.WEAK:
        return View.STRONG
    if view is View.STRONG:
        return View.WEAK
    return View.NEUTRAL


class Verdict(enum.Enum):
    """The four-valued monitoring verdict."""

    HOLDS_STRONGLY = "holds strongly"
    HOLDS = "holds"
    PENDING = "pending"
    FAILS = "fails"

    @property
    def is_ok(self) -> bool:
        """True unless the property already failed."""
        return self is not Verdict.FAILS

    @property
    def is_definite(self) -> bool:
        """True when no continuation can change the verdict."""
        return self in (Verdict.HOLDS_STRONGLY, Verdict.FAILS)


class Evaluator:
    """Satisfaction checker for one formula family over one trace."""

    def __init__(self, trace: Trace):
        self.trace = trace
        self.length = len(trace)
        self.matcher = Matcher(trace)
        self._memo: Dict[Tuple[Formula, int, View], bool] = {}

    # -- public API ----------------------------------------------------------

    def sat(self, formula: Formula, position: int = 0, view: View = View.NEUTRAL) -> bool:
        if position >= self.length:
            return view is View.WEAK
        key = (formula, position, view)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        result = self._compute(formula, position, view)
        self._memo[key] = result
        return result

    def verdict(self, formula: Formula, position: int = 0) -> Verdict:
        if not self.sat(formula, position, View.WEAK):
            return Verdict.FAILS
        if self.sat(formula, position, View.STRONG):
            return Verdict.HOLDS_STRONGLY
        if self.sat(formula, position, View.NEUTRAL):
            return Verdict.HOLDS
        return Verdict.PENDING

    # -- dispatch ---------------------------------------------------------------

    def _compute(self, formula: Formula, i: int, v: View) -> bool:
        n = self.length
        if isinstance(formula, FlBool):
            try:
                return formula.expr.eval_bool(EvalContext(self.trace, i))
            except PslEvaluationError:
                # An unevaluable boolean (unknown signal, prev() before
                # the start) holds only under the weak view.
                return v is View.WEAK
        if isinstance(formula, FlNot):
            return not self.sat(formula.operand, i, dual(v))
        if isinstance(formula, FlAnd):
            return self.sat(formula.left, i, v) and self.sat(formula.right, i, v)
        if isinstance(formula, FlOr):
            return self.sat(formula.left, i, v) or self.sat(formula.right, i, v)
        if isinstance(formula, FlImplies):
            return (not self.sat(formula.left, i, dual(v))) or self.sat(
                formula.right, i, v
            )
        if isinstance(formula, FlIff):
            forward = (not self.sat(formula.left, i, dual(v))) or self.sat(
                formula.right, i, v
            )
            backward = (not self.sat(formula.right, i, dual(v))) or self.sat(
                formula.left, i, v
            )
            return forward and backward
        if isinstance(formula, FlNext):
            target = i + formula.count
            if target < n:
                return self.sat(formula.operand, target, v)
            if v is View.WEAK:
                return True
            if v is View.NEUTRAL:
                return not formula.strong
            return False
        if isinstance(formula, FlNextA):
            truncated = i + formula.high >= n
            for t in range(i + formula.low, min(i + formula.high + 1, n)):
                if not self.sat(formula.operand, t, v):
                    return False
            if truncated:
                if v is View.WEAK:
                    return True
                if v is View.NEUTRAL:
                    return not formula.strong
                return False
            return True
        if isinstance(formula, FlNextE):
            for t in range(i + formula.low, min(i + formula.high + 1, n)):
                if self.sat(formula.operand, t, v):
                    return True
            if i + formula.high >= n:
                return v is View.WEAK
            return False
        if isinstance(formula, FlNextEvent):
            return self._next_event(formula, i, v)
        if isinstance(formula, FlAlways):
            for t in range(i, n):
                if not self.sat(formula.operand, t, v):
                    return False
            return v is not View.STRONG
        if isinstance(formula, FlNever):
            for t in range(i, n):
                if self.sat(formula.operand, t, dual(v)):
                    return False
            return v is not View.STRONG
        if isinstance(formula, FlEventually):
            for t in range(i, n):
                if self.sat(formula.operand, t, v):
                    return True
            return v is View.WEAK
        if isinstance(formula, FlUntil):
            return self._until(formula, i, v)
        if isinstance(formula, FlBefore):
            return self._before(formula, i, v)
        if isinstance(formula, FlSere):
            has_match = self.matcher.has_match(formula.sere, i)
            if has_match:
                return True
            if v is View.WEAK:
                return self.matcher.alive(formula.sere, i)
            return False
        if isinstance(formula, FlSuffixImpl):
            return self._suffix_implication(formula, i, v)
        if isinstance(formula, FlAbort):
            return self._abort(formula, i, v)
        if isinstance(formula, FlClocked):
            return self._clocked(formula, i, v)
        raise TypeError(f"unknown formula node {type(formula).__name__}")

    # -- composite operators ---------------------------------------------------

    def _next_event(self, formula: FlNextEvent, i: int, v: View) -> bool:
        remaining = formula.count
        for t in range(i, self.length):
            try:
                hit = formula.trigger.eval_bool(EvalContext(self.trace, t))
            except PslEvaluationError:
                hit = False
            if hit:
                remaining -= 1
                if remaining == 0:
                    return self.sat(formula.operand, t, v)
        # The n-th trigger occurrence lies beyond the trace.
        if v is View.WEAK:
            return True
        if v is View.NEUTRAL:
            return not formula.strong
        return False

    def _until(self, formula: FlUntil, i: int, v: View) -> bool:
        n = self.length
        for k in range(i, n):
            if self.sat(formula.right, k, v):
                if formula.inclusive and not self.sat(formula.left, k, v):
                    continue
                if all(self.sat(formula.left, j, v) for j in range(i, k)):
                    return True
                return False  # left already failed before the release
        # No release within the trace: left must have held throughout.
        if not all(self.sat(formula.left, j, v) for j in range(i, n)):
            return False
        if v is View.WEAK:
            return True
        if v is View.NEUTRAL:
            return not formula.strong
        return False

    def _before(self, formula: FlBefore, i: int, v: View) -> bool:
        """``a before b`` == ``(!b) until (a && !b)``;
        ``a before_ b`` == ``(!b) until (a)``  (strength carried over)."""
        if formula.inclusive:
            rewritten = FlUntil(
                FlNot(formula.right), formula.left, strong=formula.strong
            )
        else:
            rewritten = FlUntil(
                FlNot(formula.right),
                FlAnd(formula.left, FlNot(formula.right)),
                strong=formula.strong,
            )
        return self.sat(rewritten, i, v)

    def _suffix_implication(self, formula: FlSuffixImpl, i: int, v: View) -> bool:
        ends = self.matcher.match_ends(formula.antecedent, i)
        for end in ends:
            if end <= i:
                continue  # empty antecedent matches oblige nothing
            obligation_at = end - 1 if formula.overlapping else end
            if obligation_at >= self.length:
                # Obligation starts past the end of the trace.
                if v is View.WEAK:
                    continue
                if v is View.NEUTRAL and not formula.overlapping:
                    # |=> with the match ending exactly at the last
                    # letter: the consequent is only obliged on the
                    # continuation, so a complete trace satisfies it
                    # weakly.  Follows the LRM's weak-next reading.
                    continue
                return False
            if not self.sat(formula.consequent, obligation_at, v):
                return False
        if v is View.STRONG and self.matcher.alive(formula.antecedent, i):
            # An in-progress antecedent could still complete and oblige
            # a consequent we cannot guarantee.
            return False
        return True

    def _abort(self, formula: FlAbort, i: int, v: View) -> bool:
        if self.sat(formula.operand, i, v):
            return True
        for j in range(i, self.length):
            try:
                fired = formula.condition.eval_bool(EvalContext(self.trace, j))
            except PslEvaluationError:
                fired = False
            if fired:
                truncated = Evaluator(self.trace[:j])
                return truncated.sat(formula.operand, i, View.WEAK)
        return False

    def _clocked(self, formula: FlClocked, i: int, v: View) -> bool:
        ticks = []
        for t in range(self.length):
            try:
                if formula.clock.eval_bool(EvalContext(self.trace, t)):
                    ticks.append(t)
            except PslEvaluationError:
                continue
        projected = [self.trace[t] for t in ticks]
        start = next((k for k, t in enumerate(ticks) if t >= i), None)
        if start is None:
            # No clock tick at or after i: vacuous except under the
            # strong view.
            return v is not View.STRONG
        return Evaluator(projected).sat(formula.operand, start, v)


# -- module-level conveniences ----------------------------------------------------


def satisfies(
    formula: Formula,
    trace: Trace,
    position: int = 0,
    view: View = View.NEUTRAL,
) -> bool:
    """One-shot satisfaction check."""
    return Evaluator(trace).sat(formula, position, view)


def verdict(formula: Formula, trace: Trace, position: int = 0) -> Verdict:
    """One-shot four-valued verdict at ``position``."""
    return Evaluator(trace).verdict(formula, position)
