"""SERE matching over finite traces.

A SERE *tightly* matches a trace segment ``trace[start:end)`` when the
segment, letter by letter, belongs to the SERE's language.  The matcher
computes, for a start position, the set of all (exclusive) end
positions -- the primitive that both the four-valued FL semantics and
the assertion monitors build on.

It also answers *liveness of a partial match* ("alive"): the remaining
trace has been consumed and the SERE could still complete given more
letters.  This powers the weak SERE formula ``{r}`` and PENDING
verdicts.  Aliveness is exact for the common constructs and
conservatively approximate for length-matching intersection (``&&``)
over unsatisfiable boolean steps -- documented in :meth:`Matcher.alive`.

Goto (``b[->n:m]``) and non-consecutive (``b[=n:m]``) repetitions are
desugared into core constructs:

* ``b[->n:m]``  ==  ``{(!b)[*]; b}[*n:m]``
* ``b[=n:m]``   ==  ``{(!b)[*]; b}[*n:m] ; (!b)[*]``
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Mapping, Sequence, Set, Tuple

from .ast_nodes import (
    Const,
    EvalContext,
    Expr,
    Not,
    Sere,
    SereAnd,
    SereBool,
    SereConcat,
    SereFusion,
    SereGoto,
    SereNonConsec,
    SereOr,
    SereRepeat,
)
from .errors import PslEvaluationError
from .rewrite import simplify_expr

Trace = Sequence[Mapping[str, Any]]


def desugar(item: Sere) -> Sere:
    """Rewrite goto / non-consecutive repetitions into core SEREs."""
    if isinstance(item, SereGoto):
        high = item.high if item.high is not None else item.low
        unit = SereConcat(
            (SereRepeat(SereBool(Not(item.expr)), 0, None), SereBool(item.expr))
        )
        return SereRepeat(unit, item.low, high)
    if isinstance(item, SereNonConsec):
        high = item.high if item.high is not None else item.low
        unit = SereConcat(
            (SereRepeat(SereBool(Not(item.expr)), 0, None), SereBool(item.expr))
        )
        return SereConcat(
            (
                SereRepeat(unit, item.low, high),
                SereRepeat(SereBool(Not(item.expr)), 0, None),
            )
        )
    return item


class Matcher:
    """Memoizing SERE matcher bound to one trace."""

    def __init__(self, trace: Trace):
        self.trace = trace
        self.length = len(trace)
        self._ends_memo: Dict[Tuple[Sere, int], FrozenSet[int]] = {}
        self._alive_memo: Dict[Tuple[Sere, int], bool] = {}

    # -- tight matching ----------------------------------------------------

    def match_ends(self, item: Sere, start: int) -> FrozenSet[int]:
        """All ``end`` with ``start <= end <= len(trace)`` such that
        ``trace[start:end)`` tightly matches ``item``."""
        if start > self.length:
            return frozenset()
        key = (item, start)
        cached = self._ends_memo.get(key)
        if cached is not None:
            return cached
        # Pre-seed to cut infinite recursion through nullable repeats;
        # the fixpoint loop below recomputes repeats iteratively anyway.
        self._ends_memo[key] = frozenset()
        result = frozenset(self._compute_ends(item, start))
        self._ends_memo[key] = result
        return result

    def has_match(self, item: Sere, start: int) -> bool:
        return bool(self.match_ends(item, start))

    def first_match_end(self, item: Sere, start: int) -> int | None:
        ends = self.match_ends(item, start)
        return min(ends) if ends else None

    def _bool_holds(self, expression: Expr, position: int) -> bool:
        try:
            return expression.eval_bool(EvalContext(self.trace, position))
        except PslEvaluationError:
            # Unknown signal or out-of-trace peek: the step cannot be
            # shown to hold, so it does not match.
            return False

    def _compute_ends(self, item: Sere, start: int) -> Set[int]:
        item = desugar(item)
        if isinstance(item, SereBool):
            if start < self.length and self._bool_holds(item.expr, start):
                return {start + 1}
            return set()
        if isinstance(item, SereConcat):
            current: Set[int] = {start}
            for part in item.parts:
                nxt: Set[int] = set()
                for position in current:
                    nxt |= self.match_ends(part, position)
                current = nxt
                if not current:
                    break
            return current
        if isinstance(item, SereFusion):
            result: Set[int] = set()
            for left_end in self.match_ends(item.left, start):
                if left_end <= start:
                    continue  # fusion needs a non-empty left match
                for right_end in self.match_ends(item.right, left_end - 1):
                    if right_end <= left_end - 1:
                        continue  # and a non-empty right match
                    result.add(right_end)
            return result
        if isinstance(item, SereOr):
            return set(self.match_ends(item.left, start)) | set(
                self.match_ends(item.right, start)
            )
        if isinstance(item, SereAnd):
            left_ends = self.match_ends(item.left, start)
            right_ends = self.match_ends(item.right, start)
            if item.length_matching:
                return set(left_ends) & set(right_ends)
            result = set()
            if left_ends and right_ends:
                shortest_left = min(left_ends)
                shortest_right = min(right_ends)
                result |= {e for e in left_ends if e >= shortest_right}
                result |= {e for e in right_ends if e >= shortest_left}
            return result
        if isinstance(item, SereRepeat):
            return self._repeat_ends(item, start)
        raise TypeError(f"unknown SERE node {type(item).__name__}")

    def _repeat_ends(self, item: SereRepeat, start: int) -> Set[int]:
        """Iterate body matches, detecting frontier cycles for ``[*]``.

        ``reached[k]`` holds the positions reachable with exactly *k*
        body matches; the frontier sequence over a finite position set
        is eventually periodic, so we accumulate from ``low`` until
        either the bound is reached or a frontier repeats.
        """
        low, high = item.low, item.high
        accumulated: Set[int] = set()
        if low == 0:
            accumulated.add(start)
        frontier: FrozenSet[int] = frozenset({start})
        seen_after_low: Set[FrozenSet[int]] = set()
        count = 0
        while frontier:
            if high is not None and count >= high:
                break
            if high is None and count >= low:
                # Identical frontier at or past `low` => identical future
                # contributions; everything in the cycle is accumulated.
                if frontier in seen_after_low:
                    break
                seen_after_low.add(frontier)
            nxt: Set[int] = set()
            for position in frontier:
                nxt |= self.match_ends(item.body, position)
            count += 1
            frontier = frozenset(nxt)
            if count >= low:
                accumulated |= nxt
        return accumulated

    # -- partial-match liveness ------------------------------------------------

    def alive(self, item: Sere, start: int) -> bool:
        """True when a match starting at ``start`` has consumed the whole
        remaining trace and could still complete with more letters.

        Boolean steps are assumed satisfiable unless they are literally
        ``false``; length-matching ``&&`` is approximated by requiring
        both sides alive (their future length agreement is assumed
        feasible).
        """
        key = (item, start)
        cached = self._alive_memo.get(key)
        if cached is not None:
            return cached
        self._alive_memo[key] = False  # cut cycles through nullable repeats
        result = self._compute_alive(item, start)
        self._alive_memo[key] = result
        return result

    def _compute_alive(self, item: Sere, start: int) -> bool:
        item = desugar(item)
        if isinstance(item, SereBool):
            if start >= self.length:
                return not _is_const_false(item.expr)
            return False
        if isinstance(item, SereConcat):
            positions: Set[int] = {start}
            for part in item.parts:
                if any(self.alive(part, position) for position in positions):
                    return True
                nxt: Set[int] = set()
                for position in positions:
                    nxt |= self.match_ends(part, position)
                positions = nxt
                if not positions:
                    return False
            return False
        if isinstance(item, SereFusion):
            if self.alive(item.left, start):
                return True
            for left_end in self.match_ends(item.left, start):
                if left_end > start and self.alive(item.right, left_end - 1):
                    return True
            return False
        if isinstance(item, SereOr):
            return self.alive(item.left, start) or self.alive(item.right, start)
        if isinstance(item, SereAnd):
            left_alive = self.alive(item.left, start)
            right_alive = self.alive(item.right, start)
            if item.length_matching:
                return left_alive and right_alive
            return (left_alive and (right_alive or self.has_match(item.right, start))) or (
                right_alive and (left_alive or self.has_match(item.left, start))
            )
        if isinstance(item, SereRepeat):
            positions: Set[int] = {start}
            visited: Set[int] = set()
            count = 0
            while positions:
                if item.high is not None and count >= item.high:
                    return False
                if any(self.alive(item.body, position) for position in positions):
                    return True
                nxt: Set[int] = set()
                for position in positions:
                    nxt |= self.match_ends(item.body, position)
                new = nxt - visited
                visited |= nxt
                positions = new
                count += 1
            return False
        raise TypeError(f"unknown SERE node {type(item).__name__}")


_const_false_memo: Dict[Any, bool] = {}


def _is_const_false(expression: Expr) -> bool:
    """Semantically constant-false boolean step.

    Structural matching on ``Const(False)`` alone is not enough: the
    rewriter (NNF, simplify) folds ``!true`` or ``p && false`` into
    ``false``, and aliveness must not depend on which spelling it
    sees.  Running the same folding here keeps the aliveness
    approximation invariant under those rewrites; the variable-free
    evaluation fallback catches constants the folder leaves alone.
    Memoized per expression: the answer only depends on the
    expression, not the trace, but Matchers are built per trace.
    """
    if isinstance(expression, Const):
        return not expression.value
    try:
        cached = _const_false_memo.get(expression)
    except TypeError:  # unhashable Const payload somewhere inside
        return _compute_const_false(expression)
    if cached is None:
        cached = _compute_const_false(expression)
        _const_false_memo[expression] = cached
    return cached


def _compute_const_false(expression: Expr) -> bool:
    expression = simplify_expr(expression)
    if isinstance(expression, Const):
        return not expression.value
    if expression.variables():
        return False
    try:
        return not expression.eval_bool(EvalContext(({},), 0))
    except Exception:
        # any failure (unknown construct, type clash or arithmetic
        # error in a degenerate expression) means "cannot prove
        # unsatisfiable": stay alive
        return False


def match_ends(item: Sere, trace: Trace, start: int = 0) -> FrozenSet[int]:
    """One-shot convenience wrapper around :class:`Matcher`."""
    return Matcher(trace).match_ends(item, start)


def tightly_matches(item: Sere, trace: Trace) -> bool:
    """True when the *entire* trace tightly matches the SERE."""
    return len(trace) in Matcher(trace).match_ends(item, 0)
