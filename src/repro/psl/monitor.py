"""Executable assertion monitors.

The paper compiles each PSL property (embedded in ASM) into a C# class
that runs next to the SystemC simulation as an *assertion monitor*
(Section 3.2).  This module is the executable equivalent: a monitor
consumes the design state cycle by cycle and maintains a four-valued
:class:`~repro.psl.semantics.Verdict`.

Two implementation strategies:

* **Incremental monitors** -- for the safety-shaped properties that
  dominate bus protocols (``always``/``never`` over booleans, SERE
  suffix implications, ``eventually!``/``until`` over booleans, SERE
  coverage).  These track Brzozowski-style *derivative residual sets*
  of the SEREs involved, so a step costs O(|residuals|) regardless of
  trace length -- essential for the paper's million-cycle simulations
  -- and their internal state is compact and hashable, which lets the
  FSM explorer embed it into state keys (the paper's "property
  embedded in every state").

* **ReplayMonitor** -- the general fallback: it records the trace and
  re-evaluates the full four-valued semantics each cycle.  Exact for
  every formula, at O(n) memory and O(n^2) total time; used for short
  traces and as the differential-testing oracle for the incremental
  monitors.

:func:`build_monitor` picks the best strategy automatically.
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter as _perf_counter
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..obs.runtime import OBS
from .ast_nodes import (
    Const,
    Directive,
    DirectiveKind,
    EvalContext,
    Expr,
    FlAlways,
    FlBool,
    FlEventually,
    FlImplies,
    FlNever,
    FlNext,
    FlNextA,
    FlNextE,
    FlNot,
    FlSere,
    FlSuffixImpl,
    FlUntil,
    Formula,
    Func,
    Not,
    Property,
    Sere,
    SereAnd,
    SereBool,
    SereConcat,
    SereFusion,
    SereOr,
    SereRepeat,
    TRUE,
)
from .errors import PslEvaluationError, PslUnsupportedError
from .letter import FrozenLetter, freeze_letter
from .semantics import Evaluator, Verdict
from .sere import desugar

Letter = Mapping[str, Any]

#: The empty-word SERE (epsilon): zero repetitions of anything.
EPSILON = SereRepeat(SereBool(TRUE), 0, 0)


# ---------------------------------------------------------------------------
# History depth: how many past letters boolean built-ins need
# ---------------------------------------------------------------------------


def history_depth(expression: Expr) -> int:
    """Past-cycle window the expression's built-ins require."""
    if isinstance(expression, Func):
        inner = max((history_depth(a) for a in expression.args), default=0)
        if expression.name == "prev":
            depth = 1
            if len(expression.args) == 2 and isinstance(expression.args[1], Const):
                depth = int(expression.args[1].value)
            return inner + depth
        if expression.name in ("rose", "fell", "stable"):
            return inner + 1
        if expression.name == "next":
            raise PslUnsupportedError(
                "next() needs lookahead and cannot run in an online monitor"
            )
        return inner
    children = [
        getattr(expression, name)
        for name in ("operand", "left", "right", "base", "index")
        if hasattr(expression, name)
    ]
    if hasattr(expression, "args"):
        children.extend(expression.args)
    return max((history_depth(c) for c in children if isinstance(c, Expr)), default=0)


def sere_history_depth(item: Sere) -> int:
    if isinstance(item, SereBool):
        return history_depth(item.expr)
    if isinstance(item, SereConcat):
        return max((sere_history_depth(p) for p in item.parts), default=0)
    if isinstance(item, (SereFusion, SereOr, SereAnd)):
        return max(sere_history_depth(item.left), sere_history_depth(item.right))
    if isinstance(item, SereRepeat):
        return sere_history_depth(item.body)
    return sere_history_depth(desugar(item))


# ---------------------------------------------------------------------------
# Derivative machinery
# ---------------------------------------------------------------------------


#: nullable() is called once per residual per cycle; memoize globally
#: (SEREs are immutable).
_NULLABLE_CACHE: Dict[Sere, bool] = {}


def nullable(item: Sere) -> bool:
    """Can the SERE match the empty word?"""
    cached = _NULLABLE_CACHE.get(item)
    if cached is not None:
        return cached
    result = _compute_nullable(item)
    _NULLABLE_CACHE[item] = result
    return result


def _compute_nullable(item: Sere) -> bool:
    item = desugar(item)
    if isinstance(item, SereBool):
        return False
    if isinstance(item, SereConcat):
        return all(nullable(p) for p in item.parts)
    if isinstance(item, SereFusion):
        return False  # both sides non-empty, sharing one letter
    if isinstance(item, SereOr):
        return nullable(item.left) or nullable(item.right)
    if isinstance(item, SereAnd):
        return nullable(item.left) and nullable(item.right)
    if isinstance(item, SereRepeat):
        return item.low == 0 or nullable(item.body)
    raise TypeError(f"unknown SERE node {type(item).__name__}")


def _concat(head: Sere, tail: Sere) -> Sere:
    """Smart concatenation dropping epsilons."""
    if head == EPSILON:
        return tail
    if tail == EPSILON:
        return head
    head_parts = head.parts if isinstance(head, SereConcat) else (head,)
    tail_parts = tail.parts if isinstance(tail, SereConcat) else (tail,)
    return SereConcat(head_parts + tail_parts)


#: Compiled-expression cache shared by all monitors (expressions are
#: immutable, so compilation is done once per distinct AST).
_COMPILED_BOOL: Dict[Expr, Any] = {}


class _LetterView:
    """Evaluation window: current letter plus bounded history.

    ``holds`` memoizes per view (i.e. per letter): a derivative step
    asks about the same atom once per residual containing it, so
    shared subexpressions evaluate once per cycle, not once per
    residual-set member.
    """

    __slots__ = ("history", "_memo")

    def __init__(self, history: Sequence[Letter]):
        self.history = history
        self._memo: Dict[Expr, bool] = {}

    def holds(self, expression: Expr) -> bool:
        value = self._memo.get(expression)
        if value is None:
            compiled = _COMPILED_BOOL.get(expression)
            if compiled is None:
                from .compile_ import compile_bool

                compiled = compile_bool(expression)
                _COMPILED_BOOL[expression] = compiled
            value = bool(compiled(self.history))
            self._memo[expression] = value
        return value


def derivatives(item: Sere, view: _LetterView) -> FrozenSet[Sere]:
    """Residual SEREs after consuming the current letter."""
    item = desugar(item)
    if isinstance(item, SereBool):
        if view.holds(item.expr):
            return frozenset({EPSILON})
        return frozenset()
    if isinstance(item, SereConcat):
        head, tail = item.parts[0], item.parts[1:]
        rest: Sere = (
            EPSILON
            if not tail
            else (tail[0] if len(tail) == 1 else SereConcat(tail))
        )
        result = {
            _concat(d, rest) for d in derivatives(head, view)
        }
        if nullable(head):
            result |= set(derivatives(rest, view))
        return frozenset(result)
    if isinstance(item, SereFusion):
        result: set[Sere] = set()
        left_derivs = derivatives(item.left, view)
        for d in left_derivs:
            if d != EPSILON:
                # The left match continues past this letter.
                result.add(SereFusion(d, item.right))
        if any(nullable(d) for d in left_derivs):
            # The left match can end exactly here, so the right side
            # starts on this very letter (the fusion overlap).
            result |= set(derivatives(item.right, view))
        return frozenset(result)
    if isinstance(item, SereOr):
        return derivatives(item.left, view) | derivatives(item.right, view)
    if isinstance(item, SereAnd):
        if not item.length_matching:
            # r1 & r2  ==  (r1 && {r2;true[*]}) | ({r1;true[*]} && r2)
            padded_left = _concat(item.left, SereRepeat(SereBool(TRUE), 0, None))
            padded_right = _concat(item.right, SereRepeat(SereBool(TRUE), 0, None))
            rewritten = SereOr(
                SereAnd(item.left, padded_right, length_matching=True),
                SereAnd(padded_left, item.right, length_matching=True),
            )
            return derivatives(rewritten, view)
        result = set()
        for dl in derivatives(item.left, view):
            for dr in derivatives(item.right, view):
                if dl == EPSILON and dr == EPSILON:
                    result.add(EPSILON)
                else:
                    result.add(SereAnd(dl, dr, length_matching=True))
        return frozenset(result)
    if isinstance(item, SereRepeat):
        low, high = item.low, item.high
        if high is not None and high == 0:
            return frozenset()
        if nullable(item.body):
            low = 0  # empty body iterations satisfy any lower bound
        next_high = None if high is None else high - 1
        next_low = max(low - 1, 0)
        rest = SereRepeat(item.body, next_low, next_high)
        result = set()
        for d in derivatives(item.body, view):
            result.add(_concat(d, rest))
        return frozenset(result)
    raise TypeError(f"unknown SERE node {type(item).__name__}")


class SereTracker:
    """Tracks all in-flight matches of one SERE, one anchor at a time.

    ``advance`` consumes the next letter for an existing residual set;
    ``start`` returns the initial residual set for a match anchored at
    the current cycle.  A completed match is signalled by a nullable
    residual.
    """

    #: Safety valve: residual sets beyond this size indicate a SERE the
    #: derivative engine cannot track compactly.
    MAX_RESIDUALS = 512

    def __init__(self, item: Sere):
        self.sere = desugar(item)
        self.depth = sere_history_depth(self.sere)

    def start(self) -> FrozenSet[Sere]:
        return frozenset({self.sere})

    def advance(
        self, residuals: FrozenSet[Sere], view: _LetterView
    ) -> Tuple[FrozenSet[Sere], bool]:
        """Returns ``(new_residuals, match_completed_now)``."""
        result: set[Sere] = set()
        for residual in residuals:
            result |= derivatives(residual, view)
        if len(result) > self.MAX_RESIDUALS:
            raise PslUnsupportedError(
                f"SERE residual set exceeded {self.MAX_RESIDUALS} terms; "
                f"use the ReplayMonitor for this property"
            )
        matched = any(nullable(r) for r in result)
        return frozenset(result), matched


# ---------------------------------------------------------------------------
# Monitor base
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MonitorReport:
    """Status record a monitor can emit (paper: "write a report about
    the assertion status and all its variables")."""

    name: str
    verdict: Verdict
    cycle: int
    message: str = ""
    watched: Tuple[str, ...] = ()

    def __str__(self) -> str:
        text = f"[{self.verdict.value}] {self.name} @ cycle {self.cycle}"
        if self.message:
            text += f": {self.message}"
        return text


#: Thread-local nesting depth of sanctioned monitor construction.
#: Non-zero inside :func:`build_monitor` / ``compile_properties``;
#: zero depth at ``Monitor.__init__`` means a direct instantiation,
#: which is deprecated (mirroring the DesignFlow -> Workbench shim).
_SANCTION = threading.local()


def _sanction_depth() -> int:
    return getattr(_SANCTION, "depth", 0)


@contextmanager
def _sanctioned_construction():
    """Mark monitor construction as coming from a blessed factory."""
    _SANCTION.depth = _sanction_depth() + 1
    try:
        yield
    finally:
        _SANCTION.depth -= 1


class Monitor:
    """Base class: consume letters, maintain a verdict."""

    #: Definite verdicts latch (assertion semantics).  Cover monitors
    #: override this to keep counting hits after the goal is reached.
    latch_definite = True

    #: Which stepping engine backs this monitor ("interpreted" here;
    #: "compiled" for the table-driven classes in ``psl.compiled``).
    engine = "interpreted"

    #: Cover directives report coverage, not failure; the ABV harness
    #: keys off this instead of concrete classes so both engines work.
    is_cover = False

    def __init__(self, name: str, report: str = ""):
        if _sanction_depth() == 0:
            warnings.warn(
                "direct Monitor construction is deprecated; build monitors "
                "through repro.psl.compile_properties()",
                DeprecationWarning,
                stacklevel=3,
            )
        self.name = name
        self.report_message = report
        self.cycle = -1
        self._verdict = Verdict.HOLDS
        self.failure_cycle: Optional[int] = None
        #: observability accumulators (attributed per property by the
        #: ABV harness at finish time; zero-cost unless OBS is enabled)
        self.steps_traced = 0
        self.step_seconds = 0.0

    # -- protocol ---------------------------------------------------------

    def reset(self) -> None:
        self.cycle = -1
        self._verdict = Verdict.HOLDS
        self.failure_cycle = None
        self.steps_traced = 0
        self.step_seconds = 0.0

    def step(self, letter: Letter) -> Verdict:
        """Consume one cycle of design state; return the running verdict."""
        self.cycle += 1
        if self.latch_definite and self._verdict.is_definite:
            return self._verdict
        if OBS.enabled:
            started = _perf_counter()
            self._verdict = self._advance(letter)
            self.step_seconds += _perf_counter() - started
            self.steps_traced += 1
        else:
            self._verdict = self._advance(letter)
        if self._verdict is Verdict.FAILS and self.failure_cycle is None:
            self.failure_cycle = self.cycle
        return self._verdict

    def verdict(self) -> Verdict:
        return self._verdict

    def report(self) -> MonitorReport:
        return MonitorReport(
            name=self.name,
            verdict=self._verdict,
            cycle=self.cycle,
            message=self.report_message if self._verdict is Verdict.FAILS else "",
            watched=tuple(sorted(self.variables())),
        )

    def variables(self) -> frozenset[str]:
        return frozenset()

    # -- exploration support (StateProperty protocol) -------------------------

    def snapshot(self) -> Any:
        raise NotImplementedError

    def restore(self, snap: Any) -> None:
        raise NotImplementedError

    def _advance(self, letter: Letter) -> Verdict:
        raise NotImplementedError


class _HistoryMixin:
    """Bounded history window shared by the incremental monitors.

    Letters arriving as :class:`FrozenLetter` are stored by reference
    (cheap, shared across monitors); plain dicts are defensively
    frozen.  Snapshots are therefore tuples of hashable letters.
    """

    def _init_history(self, depth: int) -> None:
        self._depth = depth
        self._history: List[Letter] = []

    def _push(self, letter: Letter) -> _LetterView:
        self._history.append(freeze_letter(letter))
        if len(self._history) > self._depth + 1:
            self._history.pop(0)
        return _LetterView(self._history)

    def _history_snapshot(self) -> tuple:
        return tuple(self._history)

    def _history_restore(self, snap: tuple) -> None:
        self._history = list(snap)


# ---------------------------------------------------------------------------
# Incremental monitors
# ---------------------------------------------------------------------------


class BooleanInvariantMonitor(Monitor, _HistoryMixin):
    """``always b`` (expect=True) or ``never b`` (expect=False)."""

    def __init__(self, expression: Expr, expect: bool, name: str, report: str = ""):
        super().__init__(name, report)
        self.expression = expression
        self.expect = expect
        self._init_history(history_depth(expression))

    def reset(self) -> None:
        super().reset()
        self._history = []

    def _advance(self, letter: Letter) -> Verdict:
        view = self._push(letter)
        if view.holds(self.expression) != self.expect:
            return Verdict.FAILS
        return Verdict.HOLDS

    def variables(self) -> frozenset[str]:
        return self.expression.variables()

    def snapshot(self) -> Any:
        return (self._verdict, self._history_snapshot())

    def restore(self, snap: Any) -> None:
        self._verdict, history = snap
        self._history_restore(history)


class SuffixImplicationMonitor(Monitor, _HistoryMixin):
    """``always {r} |->/|=> {s}`` with derivative-tracked obligations.

    Every cycle anchors a fresh antecedent attempt (the ``always``);
    each completed antecedent match spawns a consequent obligation.  An
    obligation whose residual set dies without having matched fails the
    assertion.  ``strong_consequent`` marks unfinished obligations at
    end of trace as PENDING rather than HOLDS.
    """

    def __init__(
        self,
        antecedent: Sere,
        consequent: Sere,
        *,
        overlapping: bool,
        strong_consequent: bool = False,
        name: str = "suffix_implication",
        report: str = "",
    ):
        super().__init__(name, report)
        self.antecedent_tracker = SereTracker(antecedent)
        self.consequent_tracker = SereTracker(consequent)
        self.overlapping = overlapping
        self.strong_consequent = strong_consequent
        self._antecedent_sets: FrozenSet[FrozenSet[Sere]] = frozenset()
        self._obligations: FrozenSet[FrozenSet[Sere]] = frozenset()
        #: obligations created this cycle that start consuming next cycle
        self._fresh_obligations: FrozenSet[FrozenSet[Sere]] = frozenset()
        depth = max(
            self.antecedent_tracker.depth, self.consequent_tracker.depth
        )
        self._init_history(depth)
        self.triggered = 0  # completed antecedent matches (activity metric)

    def reset(self) -> None:
        super().reset()
        self._antecedent_sets = frozenset()
        self._obligations = frozenset()
        self._fresh_obligations = frozenset()
        self._history = []
        self.triggered = 0

    def variables(self) -> frozenset[str]:
        return self.antecedent_tracker.sere.variables() | (
            self.consequent_tracker.sere.variables()
        )

    def _advance(self, letter: Letter) -> Verdict:
        view = self._push(letter)

        # 1. advance antecedent attempts (plus a fresh anchor at this cycle)
        attempts = set(self._antecedent_sets)
        attempts.add(self.antecedent_tracker.start())
        new_attempts: set[FrozenSet[Sere]] = set()
        matched_now = False
        for attempt in attempts:
            residuals, matched = self.antecedent_tracker.advance(attempt, view)
            if matched:
                matched_now = True
            if residuals:
                new_attempts.add(residuals)
        self._antecedent_sets = frozenset(new_attempts)

        # 2. advance outstanding obligations (those spawned before this cycle)
        live: set[FrozenSet[Sere]] = set()
        failed = False
        pending_obligations = set(self._obligations) | set(self._fresh_obligations)
        self._fresh_obligations = frozenset()
        for obligation in pending_obligations:
            residuals, matched = self.consequent_tracker.advance(obligation, view)
            if matched:
                continue  # discharged
            if not residuals:
                failed = True
                continue
            live.add(residuals)

        # 3. a completed antecedent spawns a consequent obligation
        if matched_now:
            self.triggered += 1
            start = self.consequent_tracker.start()
            if self.overlapping:
                # |->: the consequent's first letter is the match's last
                # letter, i.e. the current one: consume it immediately.
                residuals, matched = self.consequent_tracker.advance(start, view)
                if not matched:
                    if not residuals:
                        failed = True
                    else:
                        live.add(residuals)
            else:
                # |=>: the consequent starts next cycle.
                self._fresh_obligations = frozenset({start})

        self._obligations = frozenset(live)
        if failed:
            return Verdict.FAILS
        if (self._obligations or self._fresh_obligations) and self.strong_consequent:
            return Verdict.PENDING
        return Verdict.HOLDS

    def snapshot(self) -> Any:
        # ``triggered`` is a running statistic, not semantic monitor
        # state; keeping it out of the snapshot lets the explorer merge
        # states reached along different paths.
        return (
            self._verdict,
            self._antecedent_sets,
            self._obligations,
            self._fresh_obligations,
            self._history_snapshot(),
        )

    def restore(self, snap: Any) -> None:
        (
            self._verdict,
            self._antecedent_sets,
            self._obligations,
            self._fresh_obligations,
            history,
        ) = snap
        self._history_restore(history)


class NeverSereMonitor(Monitor, _HistoryMixin):
    """``never {r}``: no tight match of r may ever complete."""

    def __init__(self, item: Sere, name: str = "never_sere", report: str = ""):
        super().__init__(name, report)
        self.tracker = SereTracker(item)
        self._attempts: FrozenSet[FrozenSet[Sere]] = frozenset()
        self._init_history(self.tracker.depth)

    def reset(self) -> None:
        super().reset()
        self._attempts = frozenset()
        self._history = []

    def variables(self) -> frozenset[str]:
        return self.tracker.sere.variables()

    def _advance(self, letter: Letter) -> Verdict:
        view = self._push(letter)
        attempts = set(self._attempts)
        attempts.add(self.tracker.start())
        survivors: set[FrozenSet[Sere]] = set()
        for attempt in attempts:
            residuals, matched = self.tracker.advance(attempt, view)
            if matched:
                return Verdict.FAILS
            if residuals:
                survivors.add(residuals)
        self._attempts = frozenset(survivors)
        return Verdict.HOLDS

    def snapshot(self) -> Any:
        return (self._verdict, self._attempts, self._history_snapshot())

    def restore(self, snap: Any) -> None:
        self._verdict, self._attempts, history = snap
        self._history_restore(history)


class CoverMonitor(Monitor, _HistoryMixin):
    """``cover {r}``: counts completed matches; FAILS only at finish()
    time if nothing was ever covered."""

    latch_definite = False  # keep counting after the first hit
    is_cover = True

    def __init__(self, item: Sere, name: str = "cover", report: str = ""):
        super().__init__(name, report)
        self.tracker = SereTracker(item)
        self._attempts: FrozenSet[FrozenSet[Sere]] = frozenset()
        self.hits = 0
        self._init_history(self.tracker.depth)

    def reset(self) -> None:
        super().reset()
        self._attempts = frozenset()
        self._history = []
        self.hits = 0

    def variables(self) -> frozenset[str]:
        return self.tracker.sere.variables()

    def _advance(self, letter: Letter) -> Verdict:
        view = self._push(letter)
        attempts = set(self._attempts)
        attempts.add(self.tracker.start())
        survivors: set[FrozenSet[Sere]] = set()
        for attempt in attempts:
            residuals, matched = self.tracker.advance(attempt, view)
            if matched:
                self.hits += 1
            if residuals:
                survivors.add(residuals)
        self._attempts = frozenset(survivors)
        return Verdict.HOLDS_STRONGLY if self.hits else Verdict.PENDING

    def snapshot(self) -> Any:
        # ``hits`` stays out: it is a statistic, and a covered/uncovered
        # bit is what distinguishes monitor states semantically.
        return (
            self._verdict,
            self._attempts,
            self.hits > 0,
            self._history_snapshot(),
        )

    def restore(self, snap: Any) -> None:
        self._verdict, self._attempts, covered, history = snap
        if covered and self.hits == 0:
            self.hits = 1
        self._history_restore(history)


class EventuallyMonitor(Monitor, _HistoryMixin):
    """``eventually! b``: PENDING until b holds once."""

    def __init__(self, expression: Expr, name: str = "eventually", report: str = ""):
        super().__init__(name, report)
        self.expression = expression
        self._init_history(history_depth(expression))
        self._verdict = Verdict.PENDING

    def reset(self) -> None:
        super().reset()
        self._verdict = Verdict.PENDING
        self._history = []

    def variables(self) -> frozenset[str]:
        return self.expression.variables()

    def _advance(self, letter: Letter) -> Verdict:
        view = self._push(letter)
        if view.holds(self.expression):
            return Verdict.HOLDS_STRONGLY
        return Verdict.PENDING

    def snapshot(self) -> Any:
        return (self._verdict, self._history_snapshot())

    def restore(self, snap: Any) -> None:
        self._verdict, history = snap
        self._history_restore(history)


class BooleanUntilMonitor(Monitor, _HistoryMixin):
    """``a until b`` / ``a until! b`` over boolean operands."""

    def __init__(
        self,
        left: Expr,
        right: Expr,
        *,
        strong: bool,
        inclusive: bool = False,
        name: str = "until",
        report: str = "",
    ):
        super().__init__(name, report)
        self.left = left
        self.right = right
        self.strong = strong
        self.inclusive = inclusive
        self._released = False
        depth = max(history_depth(left), history_depth(right))
        self._init_history(depth)
        self._verdict = Verdict.PENDING if strong else Verdict.HOLDS

    def reset(self) -> None:
        super().reset()
        self._released = False
        self._verdict = Verdict.PENDING if self.strong else Verdict.HOLDS
        self._history = []

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def _advance(self, letter: Letter) -> Verdict:
        if self._released:
            return self._verdict
        view = self._push(letter)
        release = view.holds(self.right)
        if release and (not self.inclusive or view.holds(self.left)):
            self._released = True
            return Verdict.HOLDS_STRONGLY
        if not view.holds(self.left):
            return Verdict.FAILS
        return Verdict.PENDING if self.strong else Verdict.HOLDS

    def snapshot(self) -> Any:
        return (self._verdict, self._released, self._history_snapshot())

    def restore(self, snap: Any) -> None:
        self._verdict, self._released, history = snap
        self._history_restore(history)


# ---------------------------------------------------------------------------
# Replay monitor (general fallback + differential-testing oracle)
# ---------------------------------------------------------------------------


class ReplayMonitor(Monitor):
    """Exact but O(trace) memory: re-evaluates the full semantics."""

    def __init__(self, formula: Formula, name: str = "replay", report: str = ""):
        super().__init__(name, report)
        self.formula = formula
        self._trace: List[Letter] = []

    def reset(self) -> None:
        super().reset()
        self._trace = []

    def variables(self) -> frozenset[str]:
        return self.formula.variables()

    def _advance(self, letter: Letter) -> Verdict:
        self._trace.append(freeze_letter(letter))
        return Evaluator(self._trace).verdict(self.formula)

    def snapshot(self) -> Any:
        return (self._verdict, tuple(self._trace))

    def restore(self, snap: Any) -> None:
        self._verdict, trace = snap
        self._trace = list(trace)


# ---------------------------------------------------------------------------
# Builder
# ---------------------------------------------------------------------------


def _as_sere(formula: Formula) -> Optional[Sere]:
    """View a consequent formula as a SERE when possible."""
    if isinstance(formula, FlSere):
        return formula.sere
    if isinstance(formula, FlBool):
        return SereBool(formula.expr)
    if isinstance(formula, FlNext) and isinstance(formula.operand, FlBool):
        # next[k] b  ==  {true[*k] ; b} as a |->-anchored SERE
        return SereConcat(
            (SereRepeat(SereBool(TRUE), formula.count, formula.count),
             SereBool(formula.operand.expr))
        )
    if isinstance(formula, FlNextE) and isinstance(formula.operand, FlBool):
        # next_e[l:h] b  ==  {true[*l+1:h+1] : b} (fusion pins b in window)
        return SereFusion(
            SereRepeat(SereBool(TRUE), formula.low + 1, formula.high + 1),
            SereBool(formula.operand.expr),
        )
    if isinstance(formula, FlNextA) and isinstance(formula.operand, FlBool):
        # next_a[l:h] b  ==  {true[*l] ; b[*h-l+1]}
        return SereConcat(
            (SereRepeat(SereBool(TRUE), formula.low, formula.low),
             SereRepeat(SereBool(formula.operand.expr),
                        formula.high - formula.low + 1,
                        formula.high - formula.low + 1))
        )
    return None


def _consequent_is_strong(formula: Formula) -> bool:
    if isinstance(formula, FlSere):
        return formula.strong
    if isinstance(formula, (FlNext, FlNextE, FlNextA)):
        return formula.strong
    return False


def build_monitor(
    source: Property | Directive | Formula,
    name: str | None = None,
) -> Monitor:
    """Compile a property into the most efficient applicable monitor.

    ``cover`` directives build a :class:`CoverMonitor`; everything else
    is matched against the incremental patterns and falls back to
    :class:`ReplayMonitor`.
    """
    report = ""
    kind = DirectiveKind.ASSERT
    if isinstance(source, Directive):
        kind = source.kind
        report = source.prop.report
        formula = source.prop.formula
        name = name or source.prop.name
    elif isinstance(source, Property):
        formula = source.formula
        report = source.report
        name = name or source.name
    else:
        formula = source
        name = name or "property"

    with _sanctioned_construction():
        if kind == DirectiveKind.COVER:
            target = formula
            if isinstance(target, FlEventually):
                target = target.operand
            if isinstance(target, FlSere):
                return CoverMonitor(target.sere, name=name, report=report)
            if isinstance(target, FlBool):
                return CoverMonitor(SereBool(target.expr), name=name, report=report)
            return ReplayMonitor(formula, name=name, report=report)

        monitor = _match_incremental(formula, name, report)
        if monitor is not None:
            return monitor
        return ReplayMonitor(formula, name=name, report=report)


def _match_incremental(
    formula: Formula, name: str, report: str
) -> Optional[Monitor]:
    if isinstance(formula, FlAlways):
        body = formula.operand
        if isinstance(body, FlBool):
            return BooleanInvariantMonitor(body.expr, True, name, report)
        if isinstance(body, FlNot) and isinstance(body.operand, FlBool):
            return BooleanInvariantMonitor(body.operand.expr, False, name, report)
        if isinstance(body, FlSuffixImpl):
            consequent = _as_sere(body.consequent)
            if consequent is not None:
                return SuffixImplicationMonitor(
                    body.antecedent,
                    consequent,
                    overlapping=body.overlapping,
                    strong_consequent=_consequent_is_strong(body.consequent),
                    name=name,
                    report=report,
                )
        if isinstance(body, FlImplies) and isinstance(body.left, FlBool):
            consequent = _as_sere(body.right)
            if consequent is not None:
                # always (b -> f)  ==  always {b} |-> {consequent-as-sere}
                return SuffixImplicationMonitor(
                    SereBool(body.left.expr),
                    consequent,
                    overlapping=True,
                    strong_consequent=_consequent_is_strong(body.right),
                    name=name,
                    report=report,
                )
    if isinstance(formula, FlNever):
        body = formula.operand
        if isinstance(body, FlBool):
            return BooleanInvariantMonitor(body.expr, False, name, report)
        if isinstance(body, FlSere):
            return NeverSereMonitor(body.sere, name=name, report=report)
    if isinstance(formula, FlEventually) and isinstance(formula.operand, FlBool):
        return EventuallyMonitor(formula.operand.expr, name=name, report=report)
    if isinstance(formula, FlUntil):
        if isinstance(formula.left, FlBool) and isinstance(formula.right, FlBool):
            return BooleanUntilMonitor(
                formula.left.expr,
                formula.right.expr,
                strong=formula.strong,
                inclusive=formula.inclusive,
                name=name,
                report=report,
            )
    return None


def run_monitor(
    monitor: Monitor, trace: Sequence[Letter], stop_early: bool = True
) -> Verdict:
    """Feed an entire trace through a monitor; returns the final verdict.

    ``stop_early`` skips the remaining letters once the verdict is
    definite; pass False to keep statistics (e.g. cover hits) exact.
    """
    monitor.reset()
    last = monitor.verdict()
    for letter in trace:
        last = monitor.step(letter)
        if stop_early and last.is_definite:
            break
    return monitor.verdict()
