"""Immutable, hash-cached letters (signal valuations).

One simulation/exploration state produces one letter observed by every
monitor; making the letter immutable and caching its hash lets
monitors share references instead of copying dictionaries, and lets
monitor snapshots (tuples of letters) be hashed cheaply into FSM state
keys.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping


class FrozenLetter(Mapping[str, Any]):
    """An immutable signal valuation with a cached structural hash."""

    __slots__ = ("_data", "_hash")

    def __init__(self, values: Mapping[str, Any]):
        self._data = dict(values)
        self._hash = hash(frozenset(self._data.items()))

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenLetter):
            return self._hash == other._hash and self._data == other._data
        if isinstance(other, Mapping):
            return self._data == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        return f"FrozenLetter({self._data!r})"


def freeze_letter(values: Mapping[str, Any]) -> FrozenLetter:
    """Idempotent freezing."""
    if isinstance(values, FrozenLetter):
        return values
    return FrozenLetter(values)
