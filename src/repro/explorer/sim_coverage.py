"""FSM coverage of simulation runs.

Section 4.3 of the paper argues that fast monitored simulation "offers
good coverage for the assertions" -- this module makes that claim
measurable.  Given the FSM generated at the ASM level and a simulation
of the *translated* design (whose executed action calls and visited
state keys we can observe), it computes:

* **state coverage** -- which FSM nodes the simulation visited,
* **transition coverage** -- which FSM edges the simulation exercised,
* the **uncovered residue** -- the states/transitions only the model
  checker reached (the formal leg's added value, stated concretely).

Because the runtime executes the same ASM actions the explorer
enumerated, a simulation trace maps 1:1 onto an FSM path whenever the
exploration covered it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from ..asm.machine import ActionCall, AsmModel
from ..asm.state import Location, StateKey
from .fsm import Fsm


@dataclass
class SimCoverage:
    """Coverage of one FSM by one (or more) simulation runs."""

    fsm: Fsm
    visited_states: Set[int] = field(default_factory=set)
    exercised_transitions: Set[Tuple[int, str, int]] = field(default_factory=set)
    #: state keys observed in simulation but absent from the FSM
    #: (possible when the exploration was bounded)
    off_fsm_states: int = 0
    samples: int = 0

    # -- accounting -------------------------------------------------------

    @property
    def state_coverage(self) -> float:
        # an empty universe is vacuously covered (1.0, matching
        # BinCoverage.ratio and CoverageResidue) -- returning 0.0 made
        # downstream thresholds apply pressure to a design with
        # nothing left to cover
        if self.fsm.state_count() == 0:
            return 1.0
        return len(self.visited_states) / self.fsm.state_count()

    @property
    def transition_coverage(self) -> float:
        if self.fsm.transition_count() == 0:
            return 1.0
        return len(self.exercised_transitions) / self.fsm.transition_count()

    def uncovered_states(self) -> List[int]:
        return [
            s.index for s in self.fsm.states if s.index not in self.visited_states
        ]

    def uncovered_transitions(self) -> List[str]:
        covered = self.exercised_transitions
        return [
            f"s{t.source} --{t.label()}--> s{t.target}"
            for t in self.fsm.transitions
            if (t.source, t.call.label(), t.target) not in covered
        ]

    def summary(self) -> str:
        return (
            f"simulation covered {len(self.visited_states)}/"
            f"{self.fsm.state_count()} states "
            f"({self.state_coverage:.0%}) and "
            f"{len(self.exercised_transitions)}/"
            f"{self.fsm.transition_count()} transitions "
            f"({self.transition_coverage:.0%}); "
            f"{self.off_fsm_states} off-FSM samples"
        )


class CoverageTracker:
    """Observes a simulation of an :class:`AsmSystemCModule` and maps it
    onto a previously generated FSM.

    ``selected`` must match the state-variable selection the FSM was
    generated with (the default selection when None).  Property-bit
    locations embedded in the FSM keys are ignored during matching, so
    an FSM generated *with* properties still accepts coverage from a
    monitor-less simulation.
    """

    def __init__(
        self,
        fsm: Fsm,
        model: AsmModel,
        selected: Optional[Sequence[Location]] = None,
    ):
        self.coverage = SimCoverage(fsm)
        self.model = model
        self.selected = tuple(
            selected if selected is not None else model.state_variables()
        )
        self._design_locations = self._design_only(fsm)
        self._previous_index: Optional[int] = None
        self._key_index = {
            self._project(state.key): state.index for state in fsm.states
        }

    def _design_only(self, fsm: Fsm) -> Optional[frozenset]:
        if not fsm.states:
            return None
        return frozenset(
            loc
            for loc, _ in fsm.states[0].key.items()
            if not loc.machine.startswith("$prop:")
        )

    def _project(self, key: StateKey) -> tuple:
        wanted = self._design_locations
        return tuple(
            (loc, value)
            for loc, value in key.items()
            if wanted is None or loc in wanted
        )

    # -- observation ------------------------------------------------------------

    def sample(self, call: Optional[ActionCall] = None) -> None:
        """Record the model's current state (and the call that led here)."""
        coverage = self.coverage
        coverage.samples += 1
        key = self.model.full_state().project(self.selected)
        index = self._key_index.get(self._project(key))
        if index is None:
            coverage.off_fsm_states += 1
            self._previous_index = None
            return
        coverage.visited_states.add(index)
        if call is not None and self._previous_index is not None:
            edge = (self._previous_index, call.label(), index)
            for transition in coverage.fsm.outgoing(self._previous_index):
                if (
                    transition.call.label() == call.label()
                    and transition.target == index
                ):
                    coverage.exercised_transitions.add(edge)
                    break
        self._previous_index = index

    def observe_run(self, module) -> SimCoverage:
        """Replay an :class:`AsmSystemCModule`'s executed calls offline.

        Resets the module's ASM model, re-executes the recorded calls
        and samples after each -- exact coverage without having had to
        instrument the run.
        """
        self.model.reset()
        self._previous_index = None
        self.sample()
        for call in module.executed:
            self.model.execute(call)
            self.sample(call)
        return self.coverage
