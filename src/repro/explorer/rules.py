"""Static validation of the R-FSM modelling rules.

Section 2.2.1 of the paper defines four rules "to guarantee the
generation of an FSM representing a portion of the complete system's
FSM".  This module checks a model + configuration against them and
reports findings; the checks are advisory (level ``warning``) where a
static check can only approximate the rule.

* **R1** -- every machine class used by the model has a registered list
  of instances ("this ensures that the algorithm will not throw an
  exception").
* **R2** -- the first executed method verifies that all objects were
  correctly instantiated (we check an ``init_action`` is configured and
  exists).
* **R3** -- every explorable method declares preconditions (we inspect
  the action source for ``require(``).
* **R4** -- every action parameter draws from a finite, restricted
  domain inherited from ASM types.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import List

from ..asm.errors import ModelRuleViolation
from ..asm.machine import AsmModel
from .config import ExplorationConfig

#: Domains larger than this trigger an R4 size warning.
LARGE_DOMAIN_THRESHOLD = 64


@dataclass(frozen=True)
class RuleFinding:
    """One diagnostic from the rule checker."""

    rule: str
    level: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:
        return f"[{self.level}] {self.rule}: {self.message}"


def check_rules(model: AsmModel, config: ExplorationConfig | None = None) -> List[RuleFinding]:
    """Check R1..R4; returns findings (empty = fully conformant)."""
    config = config or ExplorationConfig()
    findings: List[RuleFinding] = []
    findings.extend(_check_r1(model))
    findings.extend(_check_r2(model, config))
    findings.extend(_check_r3(model))
    findings.extend(_check_r4(model, config))
    return findings


def assert_rules(model: AsmModel, config: ExplorationConfig | None = None) -> None:
    """Raise :class:`ModelRuleViolation` on the first error-level finding."""
    for finding in check_rules(model, config):
        if finding.level == "error":
            raise ModelRuleViolation(finding.rule, finding.message)


def _check_r1(model: AsmModel) -> List[RuleFinding]:
    findings: List[RuleFinding] = []
    if not model.machines:
        findings.append(
            RuleFinding("R1_FSM", "error", "model has no registered machine instances")
        )
    classes = {type(m) for m in model.machines.values()}
    for cls in classes:
        if not cls.declared_actions() and not cls.declared_state_vars():
            findings.append(
                RuleFinding(
                    "R1_FSM",
                    "warning",
                    f"class {cls.__name__} declares no state variables or actions",
                )
            )
    return findings


def _check_r2(model: AsmModel, config: ExplorationConfig) -> List[RuleFinding]:
    if config.init_action is None:
        return [
            RuleFinding(
                "R2_FSM",
                "warning",
                "no init action configured; the first explored method should "
                "verify that all objects were correctly instantiated",
            )
        ]
    machine_name, _, action_name = config.init_action.partition(".")
    machine = model.machines.get(machine_name)
    if machine is None:
        return [
            RuleFinding(
                "R2_FSM", "error", f"init action machine {machine_name!r} not registered"
            )
        ]
    if action_name not in type(machine).declared_actions():
        return [
            RuleFinding(
                "R2_FSM",
                "error",
                f"init action {config.init_action!r} is not an @action of "
                f"{type(machine).__name__}",
            )
        ]
    return []


def _check_r3(model: AsmModel) -> List[RuleFinding]:
    findings: List[RuleFinding] = []
    for machine_name in sorted(model.machines):
        machine = model.machines[machine_name]
        for action_name in type(machine).declared_actions():
            method = getattr(machine, action_name)
            unwrapped = inspect.unwrap(method)
            try:
                source = inspect.getsource(unwrapped)
            except (OSError, TypeError):
                continue
            if "require(" not in source:
                findings.append(
                    RuleFinding(
                        "R3_FSM",
                        "warning",
                        f"action {machine_name}.{action_name} declares no "
                        f"require(...) precondition",
                    )
                )
    return findings


def _check_r4(model: AsmModel, config: ExplorationConfig) -> List[RuleFinding]:
    findings: List[RuleFinding] = []
    try:
        calls = model.candidate_calls(
            actions=config.actions,
            extra_domains=config.domains,
            groups=config.action_groups,
        )
        total = sum(1 for _ in calls)
    except ModelRuleViolation as violation:
        return [RuleFinding("R4_FSM", "error", str(violation))]
    if total > LARGE_DOMAIN_THRESHOLD * max(len(model.machines), 1):
        findings.append(
            RuleFinding(
                "R4_FSM",
                "warning",
                f"{total} candidate calls per state; consider restricting "
                f"domains to avoid state explosion",
            )
        )
    return findings
