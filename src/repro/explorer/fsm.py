"""The finite state machine produced by exploration.

"The transitions in the FSM are the method calls (including argument
values) in the test sequences. ... The states in the FSM are determined
by the values of selected variables in the model program" (paper,
Section 2.2.1).  The FSM is an *under-approximation* of the complete
state graph: exploration bounds, filters and domain restrictions all cut
it down.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..asm.machine import ActionCall
from ..asm.state import StateKey


@dataclass(frozen=True)
class FsmState:
    """One node: a numbered, keyed model state."""

    index: int
    key: StateKey
    is_initial: bool = False
    #: exploration stopped here (filter failed / bound hit / violation)
    terminal_reason: Optional[str] = None

    def label(self) -> str:
        return f"s{self.index}"


@dataclass(frozen=True)
class FsmTransition:
    """One edge: an action call taking ``source`` to ``target``."""

    source: int
    target: int
    call: ActionCall

    def label(self) -> str:
        return self.call.label()


class Fsm:
    """A generated finite state machine with query helpers."""

    def __init__(self, name: str = "fsm"):
        self.name = name
        self._states: List[FsmState] = []
        self._by_key: Dict[StateKey, int] = {}
        self._transitions: List[FsmTransition] = []
        self._out: Dict[int, List[int]] = {}
        self._in: Dict[int, List[int]] = {}

    # -- construction -------------------------------------------------------

    def add_state(
        self,
        key: StateKey,
        *,
        is_initial: bool = False,
        terminal_reason: str | None = None,
    ) -> FsmState:
        """Add a state (or return the existing one with the same key)."""
        existing = self._by_key.get(key)
        if existing is not None:
            return self._states[existing]
        state = FsmState(
            index=len(self._states),
            key=key,
            is_initial=is_initial,
            terminal_reason=terminal_reason,
        )
        self._states.append(state)
        self._by_key[key] = state.index
        self._out[state.index] = []
        self._in[state.index] = []
        return state

    def mark_terminal(self, index: int, reason: str) -> None:
        old = self._states[index]
        self._states[index] = FsmState(
            index=old.index,
            key=old.key,
            is_initial=old.is_initial,
            terminal_reason=reason,
        )

    def add_transition(self, source: int, target: int, call: ActionCall) -> FsmTransition:
        transition = FsmTransition(source, target, call)
        edge_index = len(self._transitions)
        self._transitions.append(transition)
        self._out[source].append(edge_index)
        self._in[target].append(edge_index)
        return transition

    # -- queries ---------------------------------------------------------------

    @property
    def states(self) -> Tuple[FsmState, ...]:
        return tuple(self._states)

    @property
    def transitions(self) -> Tuple[FsmTransition, ...]:
        return tuple(self._transitions)

    def state_count(self) -> int:
        return len(self._states)

    def transition_count(self) -> int:
        return len(self._transitions)

    def state_by_key(self, key: StateKey) -> Optional[FsmState]:
        index = self._by_key.get(key)
        return self._states[index] if index is not None else None

    def contains_key(self, key: StateKey) -> bool:
        return key in self._by_key

    def initial_states(self) -> List[FsmState]:
        return [s for s in self._states if s.is_initial]

    def terminal_states(self) -> List[FsmState]:
        return [s for s in self._states if s.terminal_reason is not None]

    def outgoing(self, index: int) -> List[FsmTransition]:
        return [self._transitions[e] for e in self._out.get(index, ())]

    def incoming(self, index: int) -> List[FsmTransition]:
        return [self._transitions[e] for e in self._in.get(index, ())]

    def successors(self, index: int) -> List[int]:
        return [t.target for t in self.outgoing(index)]

    def deadlock_states(self) -> List[FsmState]:
        """Non-terminal states with no outgoing transition."""
        return [
            s
            for s in self._states
            if not self._out.get(s.index) and s.terminal_reason is None
        ]

    def enabled_actions_at(self, index: int) -> List[str]:
        return [t.call.label() for t in self.outgoing(index)]

    # -- graph algorithms ------------------------------------------------------

    def shortest_path(self, source: int, target: int) -> Optional[List[FsmTransition]]:
        """BFS shortest path as a list of transitions, or None."""
        if source == target:
            return []
        parent: Dict[int, FsmTransition] = {}
        frontier = deque([source])
        seen = {source}
        while frontier:
            node = frontier.popleft()
            for transition in self.outgoing(node):
                if transition.target in seen:
                    continue
                parent[transition.target] = transition
                if transition.target == target:
                    return self._unwind(parent, source, target)
                seen.add(transition.target)
                frontier.append(transition.target)
        return None

    def _unwind(
        self, parent: Dict[int, FsmTransition], source: int, target: int
    ) -> List[FsmTransition]:
        path: List[FsmTransition] = []
        node = target
        while node != source:
            transition = parent[node]
            path.append(transition)
            node = transition.source
        path.reverse()
        return path

    def reachable_from(self, source: int) -> set[int]:
        seen = {source}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for successor in self.successors(node):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    def strongly_connected_components(self) -> List[List[int]]:
        """Tarjan's algorithm (iterative); useful for liveness reasoning."""
        index_counter = 0
        stack: List[int] = []
        lowlink: Dict[int, int] = {}
        index: Dict[int, int] = {}
        on_stack: Dict[int, bool] = {}
        components: List[List[int]] = []

        for root in range(len(self._states)):
            if root in index:
                continue
            work = [(root, 0)]
            while work:
                node, child_pos = work[-1]
                if node not in index:
                    index[node] = index_counter
                    lowlink[node] = index_counter
                    index_counter += 1
                    stack.append(node)
                    on_stack[node] = True
                recurse = False
                successors = self.successors(node)
                for position in range(child_pos, len(successors)):
                    successor = successors[position]
                    if successor not in index:
                        work[-1] = (node, position + 1)
                        work.append((successor, 0))
                        recurse = True
                        break
                    if on_stack.get(successor):
                        lowlink[node] = min(lowlink[node], index[successor])
                if recurse:
                    continue
                if lowlink[node] == index[node]:
                    component: List[int] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
                work.pop()
                if work:
                    parent_node = work[-1][0]
                    lowlink[parent_node] = min(lowlink[parent_node], lowlink[node])
        return components

    def __repr__(self) -> str:
        return (
            f"Fsm({self.name!r}: {self.state_count()} states, "
            f"{self.transition_count()} transitions)"
        )


def iter_paths(
    fsm: Fsm, source: int, max_depth: int
) -> Iterator[List[FsmTransition]]:
    """Enumerate simple paths from ``source`` up to ``max_depth`` edges."""

    def walk(node: int, path: List[FsmTransition], visited: set[int]):
        if path:
            yield list(path)
        if len(path) >= max_depth:
            return
        for transition in fsm.outgoing(node):
            if transition.target in visited:
                continue
            path.append(transition)
            visited.add(transition.target)
            yield from walk(transition.target, path, visited)
            visited.remove(transition.target)
            path.pop()

    yield from walk(source, [], {source})
