"""FSM generation by bounded reachability (the AsmL tester's explorer).

Drives an :class:`repro.asm.AsmModel` through its enabled actions,
recording visited states (keyed by selected state variables plus
embedded property monitors) and transitions (action calls with argument
values).  Supports filters as stopping conditions, exploration bounds,
on-the-fly property checking with counterexample extraction, and DOT
export -- the toolchain of Sections 2.2.1 and 3.1 of the paper.
"""

from .config import (
    ExplorationConfig,
    Filter,
    SearchOrder,
    StateProperty,
    violation_filter,
)
from .counterexample import Counterexample, CounterexampleStep
from .dot import counterexample_to_dot, fsm_to_dot
from .engine import ExplorationResult, Explorer, Violation, explore
from .fsm import Fsm, FsmState, FsmTransition, iter_paths
from .goal_planner import (
    EventWalk,
    GoalPlanner,
    PlannedGoal,
    residue_label,
    walk_fsm_events,
)
from .liveness import (
    LivenessResult,
    LivenessViolation,
    StatePredicate,
    check_eventually,
)
from .rules import LARGE_DOMAIN_THRESHOLD, RuleFinding, assert_rules, check_rules
from .sim_coverage import CoverageTracker, SimCoverage
from .stats import ExplorationStats

__all__ = [
    "ExplorationConfig",
    "Filter",
    "SearchOrder",
    "StateProperty",
    "violation_filter",
    "Counterexample",
    "CounterexampleStep",
    "counterexample_to_dot",
    "fsm_to_dot",
    "ExplorationResult",
    "Explorer",
    "Violation",
    "explore",
    "Fsm",
    "FsmState",
    "FsmTransition",
    "iter_paths",
    "EventWalk",
    "GoalPlanner",
    "PlannedGoal",
    "residue_label",
    "walk_fsm_events",
    "LARGE_DOMAIN_THRESHOLD",
    "RuleFinding",
    "assert_rules",
    "check_rules",
    "ExplorationStats",
    "LivenessResult",
    "LivenessViolation",
    "StatePredicate",
    "check_eventually",
    "CoverageTracker",
    "SimCoverage",
]
