"""Liveness checking on generated FSMs.

"Both models include certain properties, such as liveness, that cannot
be verified using simulation which requires using formal verification
techniques such as model checking" (paper, Section 4).

Safety properties are checked on the fly during exploration (the
``P_eval``/``P_value`` filter).  Liveness -- ``always (trigger ->
eventually! goal)`` -- needs the *graph*: the property fails iff from
some reachable trigger-state there is an infinite run (a reachable
cycle) or a dead end that never passes through a goal-state.  On the
finite FSM this reduces to reachability of a goal-free cycle or a
goal-free deadlock from a trigger state.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..asm.state import StateKey
from .fsm import Fsm, FsmTransition

#: Predicate over a state's key.
StatePredicate = Callable[[StateKey], bool]


@dataclass(frozen=True)
class LivenessViolation:
    """A lasso (stem + cycle) or dead end that never reaches the goal."""

    trigger_state: int
    stem: Tuple[FsmTransition, ...]
    cycle: Tuple[FsmTransition, ...]  # empty = deadlock witness

    @property
    def is_deadlock(self) -> bool:
        return not self.cycle

    def describe(self, fsm: Fsm) -> str:
        kind = "deadlock" if self.is_deadlock else "goal-free cycle"
        lines = [
            f"liveness violation from trigger state s{self.trigger_state} ({kind}):"
        ]
        for transition in self.stem:
            lines.append(f"  --{transition.label()}--> s{transition.target}")
        if self.cycle:
            lines.append("  cycle:")
            for transition in self.cycle:
                lines.append(f"    --{transition.label()}--> s{transition.target}")
        return "\n".join(lines)


@dataclass
class LivenessResult:
    name: str
    holds: bool
    triggers_checked: int
    violation: Optional[LivenessViolation] = None

    def summary(self) -> str:
        verdict = "PASS" if self.holds else "FAIL"
        return (
            f"[{verdict}] liveness {self.name!r}: "
            f"{self.triggers_checked} trigger states checked"
        )


def check_eventually(
    fsm: Fsm,
    trigger: StatePredicate,
    goal: StatePredicate,
    name: str = "eventually",
) -> LivenessResult:
    """Check ``always (trigger -> eventually! goal)`` on the FSM.

    Sound on the generated under-approximation: a reported violation is
    a real lasso/deadlock *of the explored fragment*; a PASS means the
    fragment contains no counterexample (the usual bounded guarantee).
    """
    goal_states = {s.index for s in fsm.states if goal(s.key)}
    trigger_states = [s.index for s in fsm.states if trigger(s.key)]

    for start in trigger_states:
        violation = _find_goal_free_lasso(fsm, start, goal_states)
        if violation is not None:
            return LivenessResult(
                name=name,
                holds=False,
                triggers_checked=len(trigger_states),
                violation=violation,
            )
    return LivenessResult(
        name=name, holds=True, triggers_checked=len(trigger_states)
    )


def _find_goal_free_lasso(
    fsm: Fsm, start: int, goal_states: set[int]
) -> Optional[LivenessViolation]:
    """Search the goal-free subgraph reachable from ``start`` for a
    cycle or a dead end."""
    if start in goal_states:
        return None

    # BFS over goal-free states, remembering parents for stem recovery.
    parents: dict[int, Optional[FsmTransition]] = {start: None}
    order: List[int] = [start]
    frontier = deque([start])
    while frontier:
        node = frontier.popleft()
        for transition in fsm.outgoing(node):
            if transition.target in goal_states:
                continue
            if transition.target not in parents:
                parents[transition.target] = transition
                order.append(transition.target)
                frontier.append(transition.target)

    reachable = set(parents)

    def stem_to(node: int) -> Tuple[FsmTransition, ...]:
        path: List[FsmTransition] = []
        cursor = node
        while parents[cursor] is not None:
            transition = parents[cursor]
            assert transition is not None
            path.append(transition)
            cursor = transition.source
        path.reverse()
        return tuple(path)

    # Dead end: a goal-free state with no outgoing transition at all.
    for node in order:
        if not fsm.outgoing(node):
            return LivenessViolation(
                trigger_state=start, stem=stem_to(node), cycle=()
            )

    # Cycle: any back edge within the goal-free reachable subgraph.
    cycle = _find_cycle(fsm, reachable, goal_states)
    if cycle is not None:
        entry = cycle[0].source
        return LivenessViolation(
            trigger_state=start, stem=stem_to(entry), cycle=tuple(cycle)
        )
    return None


def _find_cycle(
    fsm: Fsm, nodes: set[int], excluded: set[int]
) -> Optional[List[FsmTransition]]:
    """Iterative DFS cycle detection restricted to ``nodes``."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in nodes}
    on_path: dict[int, FsmTransition] = {}

    for root in nodes:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        color[root] = GREY
        while stack:
            node, edge_position = stack[-1]
            transitions = [
                t
                for t in fsm.outgoing(node)
                if t.target in nodes and t.target not in excluded
            ]
            if edge_position < len(transitions):
                stack[-1] = (node, edge_position + 1)
                transition = transitions[edge_position]
                successor = transition.target
                if color[successor] == GREY:
                    # Found a back edge: reconstruct the cycle.
                    cycle = [transition]
                    cursor = node
                    while cursor != successor:
                        incoming = on_path[cursor]
                        cycle.append(incoming)
                        cursor = incoming.source
                    cycle.reverse()
                    return cycle
                if color[successor] == WHITE:
                    color[successor] = GREY
                    on_path[successor] = transition
                    stack.append((successor, 0))
            else:
                color[node] = BLACK
                stack.pop()
    return None
