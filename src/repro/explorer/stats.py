"""Bookkeeping for one exploration run."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExplorationStats:
    """Counters reported next to the generated FSM (paper Tables 1-2)."""

    states: int = 0
    transitions: int = 0
    elapsed_seconds: float = 0.0

    #: candidate action calls attempted (enabled or not)
    calls_tried: int = 0
    #: calls whose ``require`` precondition held
    calls_enabled: int = 0
    #: states excluded from expansion by a filter
    filtered_states: int = 0
    #: property violations observed
    violations: int = 0
    #: maximum BFS/DFS depth reached
    max_depth_reached: int = 0

    hit_state_bound: bool = False
    hit_transition_bound: bool = False
    hit_depth_bound: bool = False
    hit_time_bound: bool = False
    stopped_on_violation: bool = False

    @property
    def completed(self) -> bool:
        """True when exploration exhausted the reachable (filtered) space."""
        return not (
            self.hit_state_bound
            or self.hit_transition_bound
            or self.hit_time_bound
            or self.stopped_on_violation
        )

    @property
    def enabled_ratio(self) -> float:
        if self.calls_tried == 0:
            return 0.0
        return self.calls_enabled / self.calls_tried

    def summary(self) -> str:
        flags = []
        if self.stopped_on_violation:
            flags.append("stopped-on-violation")
        if self.hit_state_bound:
            flags.append("state-bound")
        if self.hit_transition_bound:
            flags.append("transition-bound")
        if self.hit_depth_bound:
            flags.append("depth-bound")
        if self.hit_time_bound:
            flags.append("time-bound")
        status = ",".join(flags) if flags else "complete"
        return (
            f"{self.states} states, {self.transitions} transitions in "
            f"{self.elapsed_seconds:.2f}s ({status}; "
            f"{self.calls_enabled}/{self.calls_tried} calls enabled, "
            f"depth {self.max_depth_reached})"
        )
