"""Path planning over the generated FSM: residue -> directed goals.

The model checker reaches FSM states and transitions the monitored
simulation never exercises (the :class:`~repro.workbench.duv.CoverageResidue`).
This module turns that residue into *plans*: for every uncovered
transition, a BFS shortest path from the FSM's initial state through
the covered region to the uncovered edge.  A plan is an ordered list
of ASM action calls -- exactly the vocabulary a model's scenario
driver can lower into directed bus stimulus
(:mod:`repro.scenarios.directed`), which closes the formal->simulation
loop in the directed direction the ROADMAP asks for.

The inverse mapping lives here too: :func:`walk_fsm_events` replays a
reconstructed ASM call stream (what a scenario run *observably* did at
transaction level) against the FSM and reports exactly which edges it
exercised.  The walk is structural -- it follows labelled edges rather
than re-executing the model -- so property-monitor bits embedded in
the state keys are honoured for free, and credit stops at the first
step that has no unique matching edge (partial credit, never false
credit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..asm.machine import ActionCall
from .fsm import Fsm, FsmTransition


def residue_label(transition: FsmTransition) -> str:
    """The residue-side name of an FSM edge (matches
    :meth:`CoverageResidue.from_fsm` / ``SimCoverage.uncovered_transitions``)."""
    return f"s{transition.source} --{transition.label()}--> s{transition.target}"


@dataclass(frozen=True)
class PlannedGoal:
    """One directed sequence goal: an FSM path whose last edge is the
    uncovered transition the plan targets.  The path starts at the
    initial state unless ``origin_state`` names a covered frontier
    state (one a checkpointed run already reached) -- then it starts
    there, and the caller forks the scenario from that checkpoint
    instead of replaying the warm-up from reset."""

    index: int
    target_edge: str
    transitions: Tuple[FsmTransition, ...]
    #: FSM state the path starts from; None = the initial state
    origin_state: Optional[int] = None
    #: length of the from-initial path to the same edge (None when the
    #: edge is unreachable from reset); with ``origin_state`` set this
    #: is what the fork saves over -- callers prorate cycle budgets by
    #: ``len(transitions) / initial_steps``
    initial_steps: Optional[int] = None

    def calls(self) -> List[ActionCall]:
        """The ASM action calls along the path, in order."""
        return [t.call for t in self.transitions]

    def edge_labels(self) -> Tuple[str, ...]:
        """Residue labels of every edge on the path (dedup credit: a
        plan incidentally covers everything it walks through)."""
        return tuple(residue_label(t) for t in self.transitions)

    def describe(self) -> str:
        steps = " -> ".join(t.label() for t in self.transitions)
        origin = (
            "" if self.origin_state is None else f" from s{self.origin_state}"
        )
        return (
            f"goal#{self.index} [{len(self.transitions)} steps{origin}] "
            f"{steps}"
        )


class GoalPlanner:
    """Plans directed sequence goals for a set of uncovered transitions.

    Planning is deterministic: candidate edges are resolved in a stable
    order, paths come from the FSM's deterministic BFS, and the greedy
    dedup keeps the longest plans first so shorter residue edges ride
    along instead of spawning their own scenarios.
    """

    def __init__(self, fsm: Fsm):
        self.fsm = fsm
        self._by_label: Dict[str, FsmTransition] = {}
        for transition in fsm.transitions:
            # first writer wins: duplicate (source, label, target) edges
            # are the same goal
            self._by_label.setdefault(residue_label(transition), transition)
        initials = fsm.initial_states()
        self._initial: Optional[int] = initials[0].index if initials else None
        #: residue labels that named no known FSM edge in the last plan
        self.unknown_edges: Tuple[str, ...] = ()

    def path_to(
        self, transition: FsmTransition, source: Optional[int] = None
    ) -> Optional[List[FsmTransition]]:
        """Shortest path ending with ``transition``; starts at the
        initial state, or at ``source`` when given."""
        start = self._initial if source is None else source
        if start is None:
            return None
        prefix = self.fsm.shortest_path(start, transition.source)
        if prefix is None:
            return None
        return prefix + [transition]

    def _best_path(
        self, transition: FsmTransition, frontier: Sequence[int]
    ) -> Tuple[Optional[List[FsmTransition]], Optional[int], Optional[int]]:
        """The shortest path to an edge over all plannable origins.

        Origins are the initial state plus every frontier state; the
        initial state wins ties (a from-reset plan needs no checkpoint),
        and frontier ties resolve to the lowest state index so planning
        stays deterministic.  Returns ``(path, origin_state,
        initial_steps)``.
        """
        from_initial = self.path_to(transition)
        best = from_initial
        origin: Optional[int] = None
        for state in sorted(set(frontier)):
            candidate = self.path_to(transition, source=state)
            if candidate is None:
                continue
            if best is None or len(candidate) < len(best):
                best = candidate
                origin = state
        return (
            best,
            origin,
            len(from_initial) if from_initial is not None else None,
        )

    def plan(
        self, uncovered: Iterable[str], frontier: Sequence[int] = ()
    ) -> List[PlannedGoal]:
        """Plans for ``uncovered`` residue edge labels, longest first,
        greedily deduplicated: an edge already on an earlier plan's
        path does not get its own plan.  ``frontier`` lists covered FSM
        states that checkpointed runs already sit in; an edge strictly
        closer to a frontier state than to the initial state is planned
        from there (``origin_state`` set) so the caller can fork the
        checkpoint instead of re-walking the prefix.  Budget caps
        belong to the caller (the workbench counts *lowerable* plans
        against its ``max_goals``, which this layer cannot know)."""
        unknown: List[str] = []
        candidates: List[
            Tuple[str, List[FsmTransition], Optional[int], Optional[int]]
        ] = []
        seen_labels = set()
        for label in uncovered:
            if label in seen_labels:
                continue
            seen_labels.add(label)
            transition = self._by_label.get(label)
            if transition is None:
                unknown.append(label)
                continue
            path, origin, initial_steps = self._best_path(
                transition, frontier
            )
            if path is None:
                unknown.append(label)
                continue
            candidates.append((label, path, origin, initial_steps))
        self.unknown_edges = tuple(unknown)
        # longest plans first so their prefixes absorb short ones; the
        # label tiebreak keeps the order fully deterministic
        candidates.sort(key=lambda item: (-len(item[1]), item[0]))
        plans: List[PlannedGoal] = []
        covered: set = set()
        for label, path, origin, initial_steps in candidates:
            if label in covered:
                continue
            plan = PlannedGoal(
                index=len(plans),
                target_edge=label,
                transitions=tuple(path),
                origin_state=origin,
                initial_steps=initial_steps,
            )
            covered.update(plan.edge_labels())
            plans.append(plan)
        return plans

    def replan_from_initial(
        self, plan: PlannedGoal
    ) -> Optional[PlannedGoal]:
        """The same goal re-planned from the initial state.

        The caller's fallback when a frontier-origin path turns out not
        to be drivable (its lowering starts mid-pattern, e.g. a grant
        with no pending request): the edge still deserves its from-reset
        plan rather than dropping out of the round.
        """
        transition = self._by_label.get(plan.target_edge)
        if transition is None:
            return None
        path = self.path_to(transition)
        if path is None:
            return None
        return PlannedGoal(
            index=plan.index,
            target_edge=plan.target_edge,
            transitions=tuple(path),
            origin_state=None,
            initial_steps=len(path),
        )


@dataclass
class EventWalk:
    """What one reconstructed event stream exercised on the FSM."""

    exercised: Tuple[str, ...]          # residue labels of walked edges
    visited_states: Tuple[int, ...]
    steps_walked: int
    #: events left unwalked because a step had no unique matching edge
    #: (bounded exploration, ambiguous labels, off-plan behaviour)
    off_path: int
    #: state the walk stopped in (the run's coverage frontier); None
    #: only when the FSM has no initial state
    final_state: Optional[int] = None


def walk_fsm_events(
    fsm: Fsm,
    events: Sequence[Tuple[str, str, Tuple]],
) -> EventWalk:
    """Structurally replay ``(machine, action, args)`` events on the FSM.

    Starts at the initial state and follows the unique outgoing edge
    whose label matches each event in turn.  The first event with zero
    or several matching edges stops the walk: everything after it is
    counted as ``off_path`` rather than guessed at.
    """
    initials = fsm.initial_states()
    if not initials or not events:
        return EventWalk(
            (),
            (),
            0,
            len(events),
            final_state=initials[0].index if initials else None,
        )
    current = initials[0].index
    exercised: List[str] = []
    visited: List[int] = [current]
    steps = 0
    for machine, action, args in events:
        label = ActionCall(machine, action, tuple(args)).label()
        matches = [t for t in fsm.outgoing(current) if t.label() == label]
        if len(matches) != 1:
            break
        transition = matches[0]
        exercised.append(residue_label(transition))
        current = transition.target
        visited.append(current)
        steps += 1
    return EventWalk(
        exercised=tuple(exercised),
        visited_states=tuple(dict.fromkeys(visited)),
        steps_walked=steps,
        off_path=len(events) - steps,
        final_state=current,
    )
