"""Path planning over the generated FSM: residue -> directed goals.

The model checker reaches FSM states and transitions the monitored
simulation never exercises (the :class:`~repro.workbench.duv.CoverageResidue`).
This module turns that residue into *plans*: for every uncovered
transition, a BFS shortest path from the FSM's initial state through
the covered region to the uncovered edge.  A plan is an ordered list
of ASM action calls -- exactly the vocabulary a model's scenario
driver can lower into directed bus stimulus
(:mod:`repro.scenarios.directed`), which closes the formal->simulation
loop in the directed direction the ROADMAP asks for.

The inverse mapping lives here too: :func:`walk_fsm_events` replays a
reconstructed ASM call stream (what a scenario run *observably* did at
transaction level) against the FSM and reports exactly which edges it
exercised.  The walk is structural -- it follows labelled edges rather
than re-executing the model -- so property-monitor bits embedded in
the state keys are honoured for free, and credit stops at the first
step that has no unique matching edge (partial credit, never false
credit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..asm.machine import ActionCall
from .fsm import Fsm, FsmTransition


def residue_label(transition: FsmTransition) -> str:
    """The residue-side name of an FSM edge (matches
    :meth:`CoverageResidue.from_fsm` / ``SimCoverage.uncovered_transitions``)."""
    return f"s{transition.source} --{transition.label()}--> s{transition.target}"


@dataclass(frozen=True)
class PlannedGoal:
    """One directed sequence goal: an initial-state FSM path whose last
    edge is the uncovered transition the plan targets."""

    index: int
    target_edge: str
    transitions: Tuple[FsmTransition, ...]

    def calls(self) -> List[ActionCall]:
        """The ASM action calls along the path, in order."""
        return [t.call for t in self.transitions]

    def edge_labels(self) -> Tuple[str, ...]:
        """Residue labels of every edge on the path (dedup credit: a
        plan incidentally covers everything it walks through)."""
        return tuple(residue_label(t) for t in self.transitions)

    def describe(self) -> str:
        steps = " -> ".join(t.label() for t in self.transitions)
        return f"goal#{self.index} [{len(self.transitions)} steps] {steps}"


class GoalPlanner:
    """Plans directed sequence goals for a set of uncovered transitions.

    Planning is deterministic: candidate edges are resolved in a stable
    order, paths come from the FSM's deterministic BFS, and the greedy
    dedup keeps the longest plans first so shorter residue edges ride
    along instead of spawning their own scenarios.
    """

    def __init__(self, fsm: Fsm):
        self.fsm = fsm
        self._by_label: Dict[str, FsmTransition] = {}
        for transition in fsm.transitions:
            # first writer wins: duplicate (source, label, target) edges
            # are the same goal
            self._by_label.setdefault(residue_label(transition), transition)
        initials = fsm.initial_states()
        self._initial: Optional[int] = initials[0].index if initials else None
        #: residue labels that named no known FSM edge in the last plan
        self.unknown_edges: Tuple[str, ...] = ()

    def path_to(self, transition: FsmTransition) -> Optional[List[FsmTransition]]:
        """Shortest initial-state path ending with ``transition``."""
        if self._initial is None:
            return None
        prefix = self.fsm.shortest_path(self._initial, transition.source)
        if prefix is None:
            return None
        return prefix + [transition]

    def plan(self, uncovered: Iterable[str]) -> List[PlannedGoal]:
        """Plans for ``uncovered`` residue edge labels, longest first,
        greedily deduplicated: an edge already on an earlier plan's
        path does not get its own plan.  Budget caps belong to the
        caller (the workbench counts *lowerable* plans against its
        ``max_goals``, which this layer cannot know)."""
        unknown: List[str] = []
        candidates: List[Tuple[str, List[FsmTransition]]] = []
        seen_labels = set()
        for label in uncovered:
            if label in seen_labels:
                continue
            seen_labels.add(label)
            transition = self._by_label.get(label)
            if transition is None:
                unknown.append(label)
                continue
            path = self.path_to(transition)
            if path is None:
                unknown.append(label)
                continue
            candidates.append((label, path))
        self.unknown_edges = tuple(unknown)
        # longest plans first so their prefixes absorb short ones; the
        # label tiebreak keeps the order fully deterministic
        candidates.sort(key=lambda item: (-len(item[1]), item[0]))
        plans: List[PlannedGoal] = []
        covered: set = set()
        for label, path in candidates:
            if label in covered:
                continue
            plan = PlannedGoal(
                index=len(plans), target_edge=label, transitions=tuple(path)
            )
            covered.update(plan.edge_labels())
            plans.append(plan)
        return plans


@dataclass
class EventWalk:
    """What one reconstructed event stream exercised on the FSM."""

    exercised: Tuple[str, ...]          # residue labels of walked edges
    visited_states: Tuple[int, ...]
    steps_walked: int
    #: events left unwalked because a step had no unique matching edge
    #: (bounded exploration, ambiguous labels, off-plan behaviour)
    off_path: int


def walk_fsm_events(
    fsm: Fsm,
    events: Sequence[Tuple[str, str, Tuple]],
) -> EventWalk:
    """Structurally replay ``(machine, action, args)`` events on the FSM.

    Starts at the initial state and follows the unique outgoing edge
    whose label matches each event in turn.  The first event with zero
    or several matching edges stops the walk: everything after it is
    counted as ``off_path`` rather than guessed at.
    """
    initials = fsm.initial_states()
    if not initials or not events:
        return EventWalk((), (), 0, len(events))
    current = initials[0].index
    exercised: List[str] = []
    visited: List[int] = [current]
    steps = 0
    for machine, action, args in events:
        label = ActionCall(machine, action, tuple(args)).label()
        matches = [t for t in fsm.outgoing(current) if t.label() == label]
        if len(matches) != 1:
            break
        transition = matches[0]
        exercised.append(residue_label(transition))
        current = transition.target
        visited.append(current)
        steps += 1
    return EventWalk(
        exercised=tuple(exercised),
        visited_states=tuple(dict.fromkeys(visited)),
        steps_walked=steps,
        off_path=len(events) - steps,
    )
