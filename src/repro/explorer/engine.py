"""The FSM-generation (exploration) algorithm.

"The algorithm generates the FSM by executing the model program in a
special execution environment, keeping track of the actions it performs
and recording the states it visits.  This process is called
exploration." (paper, Section 2.2.1)

The engine:

1. seals the model (fixing the instance set, rule R1) and optionally
   runs the configured init action (rule R2),
2. repeatedly pops a frontier state, restores the model *and* every
   property monitor to it, applies the filters, and fires every enabled
   candidate call (actions x argument domains, rules R3/R4),
3. keys each reached state by the selected state variables plus the
   property monitors' ``P_eval``/``P_value`` bits and internal state
   (the paper's "property embedded in every state"),
4. stops at the first violation when ``stop_on_violation`` is set --
   the canonical filter of Section 3.1 -- and reconstructs the
   counterexample scenario from the predecessor map.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..asm.machine import ActionCall, AsmModel
from ..asm.state import FullState, Location, StateKey
from .config import ExplorationConfig, SearchOrder, StateProperty
from .counterexample import Counterexample, CounterexampleStep
from .fsm import Fsm
from .stats import ExplorationStats


@dataclass(frozen=True)
class Violation:
    """A property violation found during exploration."""

    property_name: str
    state_index: int
    message: str = ""

    def __str__(self) -> str:
        text = f"property {self.property_name!r} violated in state s{self.state_index}"
        if self.message:
            text += f": {self.message}"
        return text


@dataclass
class ExplorationResult:
    """Everything one exploration run produces."""

    fsm: Fsm
    stats: ExplorationStats
    violations: List[Violation] = field(default_factory=list)
    counterexample: Optional[Counterexample] = None
    selected_variables: Tuple[Location, ...] = ()

    @property
    def ok(self) -> bool:
        """True when no property was violated."""
        return not self.violations

    def summary(self) -> str:
        verdict = "PASS" if self.ok else "FAIL"
        lines = [f"[{verdict}] {self.fsm.name}: {self.stats.summary()}"]
        lines.extend(f"  {v}" for v in self.violations)
        return "\n".join(lines)


class _FrontierEntry:
    """Frontier bookkeeping: model state + monitor snapshots + depth."""

    __slots__ = ("key", "full_state", "monitor_snaps", "depth")

    def __init__(self, key, full_state, monitor_snaps, depth):
        self.key = key
        self.full_state = full_state
        self.monitor_snaps = monitor_snaps
        self.depth = depth


class Explorer:
    """Drives one model through one configuration."""

    def __init__(self, model: AsmModel, config: ExplorationConfig | None = None):
        self.model = model
        self.config = config or ExplorationConfig()

    def run(self, name: str | None = None) -> ExplorationResult:
        model, config = self.model, self.config
        stats = ExplorationStats()
        fsm = Fsm(name or f"{model.name}-fsm")
        started = time.perf_counter()

        if not model.sealed:
            model.seal()
        model.reset()

        if config.init_action is not None:
            machine_name, _, action_name = config.init_action.partition(".")
            model.execute(ActionCall(machine_name, action_name))

        properties = list(config.properties)
        for prop in properties:
            prop.reset()

        selected = tuple(
            config.state_variables
            if config.state_variables is not None
            else model.state_variables()
        )

        candidates = list(
            model.candidate_calls(
                actions=config.actions,
                extra_domains=config.domains,
                groups=config.action_groups,
            )
        )

        violations: List[Violation] = []
        parent: Dict[StateKey, Tuple[Optional[StateKey], Optional[ActionCall]]] = {}

        def observe_and_key() -> Tuple[StateKey, tuple, List[str]]:
            """Advance monitors on the model's current state; build the key.

            Properties exposing a shared ``extractor`` get their letter
            computed once per state instead of once per property.
            """
            bits: List[Tuple[Location, Any]] = []
            snaps = []
            violated: List[str] = []
            letters: Dict[int, Any] = {}
            for prop in properties:
                extractor = getattr(prop, "extractor", None)
                if extractor is not None and hasattr(prop, "observe_letter"):
                    token = id(extractor)
                    if token not in letters:
                        letters[token] = extractor(model)
                    can_eval, value = prop.observe_letter(letters[token])
                else:
                    can_eval, value = prop.observe(model)
                bits.append((Location(f"$prop:{prop.name}", "P_eval"), can_eval))
                bits.append((Location(f"$prop:{prop.name}", "P_value"), value))
                snap = prop.snapshot()
                bits.append((Location(f"$prop:{prop.name}", "state"), snap))
                snaps.append(snap)
                if can_eval and not value:
                    violated.append(prop.name)
            base = model.full_state().project(selected)
            key = StateKey(tuple(base.items()) + tuple(bits))
            return key, tuple(snaps), violated

        def restore(entry: _FrontierEntry) -> None:
            model.restore(entry.full_state)
            for prop, snap in zip(properties, entry.monitor_snaps):
                prop.restore(snap)

        def build_counterexample(property_name: str, key: StateKey) -> Counterexample:
            chain: List[CounterexampleStep] = []
            cursor: Optional[StateKey] = key
            while cursor is not None:
                prev, call = parent[cursor]
                chain.append(CounterexampleStep(call=call, state=cursor))
                cursor = prev
            chain.reverse()
            return Counterexample(property_name=property_name, steps=tuple(chain))

        # -- initial state -----------------------------------------------------
        initial_key, initial_snaps, violated = observe_and_key()
        initial = fsm.add_state(initial_key, is_initial=True)
        parent[initial_key] = (None, None)
        stats.states = 1

        if violated:
            for name_ in violated:
                violations.append(Violation(name_, initial.index, "violated initially"))
            stats.violations = len(violated)
            if config.stop_on_violation:
                fsm.mark_terminal(initial.index, "violation")
                stats.stopped_on_violation = True
                stats.elapsed_seconds = time.perf_counter() - started
                return ExplorationResult(
                    fsm=fsm,
                    stats=stats,
                    violations=violations,
                    counterexample=build_counterexample(violated[0], initial_key),
                    selected_variables=selected,
                )

        frontier: deque[_FrontierEntry] = deque(
            [_FrontierEntry(initial_key, model.full_state(), initial_snaps, 0)]
        )

        # -- main loop ------------------------------------------------------------
        while frontier:
            if config.max_seconds is not None:
                if time.perf_counter() - started > config.max_seconds:
                    stats.hit_time_bound = True
                    break
            if config.search_order is SearchOrder.BFS:
                entry = frontier.popleft()
            else:
                entry = frontier.pop()
            stats.max_depth_reached = max(stats.max_depth_reached, entry.depth)

            restore(entry)
            source_state = fsm.state_by_key(entry.key)
            assert source_state is not None

            blocked = next(
                (f for f in config.filters if not f.admits(model)), None
            )
            if blocked is not None:
                fsm.mark_terminal(source_state.index, f"filter:{blocked.name}")
                stats.filtered_states += 1
                continue

            if config.max_depth is not None and entry.depth >= config.max_depth:
                fsm.mark_terminal(source_state.index, "depth-bound")
                stats.hit_depth_bound = True
                continue

            for call in candidates:
                restore(entry)
                stats.calls_tried += 1
                enabled, _ = self.model.try_execute(call)
                if not enabled:
                    continue
                stats.calls_enabled += 1

                new_key, new_snaps, violated = observe_and_key()
                known = fsm.contains_key(new_key)
                target = fsm.add_state(new_key)
                if not known:
                    stats.states += 1
                    parent[new_key] = (entry.key, call)

                fsm.add_transition(source_state.index, target.index, call)
                stats.transitions += 1

                if violated and not known:
                    for name_ in violated:
                        violations.append(Violation(name_, target.index))
                    stats.violations += len(violated)
                    fsm.mark_terminal(target.index, "violation")
                    if config.stop_on_violation:
                        stats.stopped_on_violation = True
                        stats.elapsed_seconds = time.perf_counter() - started
                        return ExplorationResult(
                            fsm=fsm,
                            stats=stats,
                            violations=violations,
                            counterexample=build_counterexample(violated[0], new_key),
                            selected_variables=selected,
                        )
                    continue  # do not expand beyond a violation

                if stats.transitions >= config.max_transitions:
                    stats.hit_transition_bound = True
                    break

                if not known:
                    if stats.states >= config.max_states:
                        stats.hit_state_bound = True
                        fsm.mark_terminal(target.index, "state-bound")
                        break
                    frontier.append(
                        _FrontierEntry(
                            new_key, model.full_state(), new_snaps, entry.depth + 1
                        )
                    )

            if stats.hit_transition_bound or stats.hit_state_bound:
                break

        stats.elapsed_seconds = time.perf_counter() - started
        return ExplorationResult(
            fsm=fsm,
            stats=stats,
            violations=violations,
            counterexample=None,
            selected_variables=selected,
        )


def explore(
    model: AsmModel,
    config: ExplorationConfig | None = None,
    name: str | None = None,
) -> ExplorationResult:
    """Convenience wrapper: ``Explorer(model, config).run(name)``."""
    return Explorer(model, config).run(name)
