"""Exploration configuration.

"The FSM generation algorithm requires as input: domains, methods,
actions and variables (optional inputs are filters, action groups and
properties). ... it is a must to limit the number of states and
transitions that the tool explores" (paper, Section 2.2.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Optional, Protocol, Sequence, Tuple

from ..asm.domains import Domain
from ..asm.state import Location


class SearchOrder(enum.Enum):
    """Frontier discipline of the reachability algorithm."""

    BFS = "bfs"
    DFS = "dfs"


class StateProperty(Protocol):
    """A property evaluated in every explored state.

    The paper embeds each PSL property *in the design*, so the
    property's member variables are themselves model state; each
    property contributes two Boolean state variables, ``P_eval`` ("the
    property can be evaluated here") and ``P_value`` ("the property's
    value here"), and a violation is the pair ``(True, False)``.

    Because monitors are stateful (a SERE tracks its position), the
    explorer snapshots and restores the monitor alongside the model so
    that different exploration paths do not interfere --
    :mod:`repro.psl.asm_embedding` adapts PSL assertions to this
    protocol.
    """

    name: str

    def reset(self) -> None:
        """Return to the initial evaluation state (new exploration run)."""

    def observe(self, model: Any) -> Tuple[bool, bool]:
        """Advance the monitor by one observed state; return ``(P_eval, P_value)``."""

    def status(self) -> Tuple[bool, bool]:
        """The ``(P_eval, P_value)`` pair of the last observed state."""

    def snapshot(self) -> Any:
        """Hashable image of the monitor's internal state."""

    def restore(self, snap: Any) -> None:
        """Reinstall a state previously returned by :meth:`snapshot`."""


@dataclass
class Filter:
    """A named stopping condition.

    "Filters express stopping conditions that limit exploration (used to
    stop the FSM generation if a property fails, for e.g.)."  When
    ``predicate(model)`` returns False in a state, that state is kept in
    the FSM but not expanded further.
    """

    name: str
    predicate: Callable[[Any], bool]

    def admits(self, model: Any) -> bool:
        return bool(self.predicate(model))


@dataclass
class ExplorationConfig:
    """All knobs of the FSM-generation algorithm."""

    #: Locations whose values key the FSM states; None = every StateVar
    #: flagged ``state_variable`` (the model's default selection).
    state_variables: Optional[Sequence[Location]] = None

    #: Restrict exploration to these actions (``"machine.action"`` or
    #: bare action names); None = all registered actions.
    actions: Optional[Sequence[str]] = None

    #: Restrict to actions tagged with these ``@action(group=...)`` tags.
    action_groups: Optional[Sequence[str]] = None

    #: Argument domains supplied/overridden at exploration time, keyed
    #: ``"machine.action.param"``, ``"action.param"`` or ``"param"``.
    domains: Dict[str, Domain] = field(default_factory=dict)

    #: Stopping conditions; a state failing any filter is not expanded.
    filters: Sequence[Filter] = ()

    #: Properties checked in every state (P_eval / P_value encoding).
    properties: Sequence[StateProperty] = ()

    #: Stop the entire generation at the first property violation and
    #: report the explored fragment as a counterexample scenario.
    stop_on_violation: bool = True

    #: Optional action run once from the initial state before
    #: exploration -- the paper's rule R2 ("the firstly executed method
    #: ... must verify that all the objects were correctly instantiated").
    init_action: Optional[str] = None

    # -- bounds -------------------------------------------------------------
    max_states: int = 10_000
    max_transitions: int = 100_000
    max_depth: Optional[int] = None
    max_seconds: Optional[float] = None

    search_order: SearchOrder = SearchOrder.BFS

    #: Also record transitions that lead to already-filtered states.
    keep_filtered_states: bool = True

    def with_overrides(self, **changes: Any) -> "ExplorationConfig":
        """A copy of this config with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **changes)


def violation_filter(properties: Iterable[StateProperty]) -> Filter:
    """The paper's canonical filter: continue while no property is violated.

    "A violated property is detected once P_eval = true and P_value =
    false.  We set the previous condition as filter for the FSM
    generation algorithm. ... For multiple properties, the filter is set
    as conjunction of all the conditions for the separate properties."
    """
    bound = tuple(properties)

    def admits(model: Any) -> bool:
        for prop in bound:
            can_eval, value = prop.status()
            if can_eval and not value:
                return False
        return True

    names = ",".join(p.name for p in bound) or "none"
    return Filter(name=f"no-violation({names})", predicate=admits)
