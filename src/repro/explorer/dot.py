"""Graphviz DOT export of generated FSMs and counterexamples."""

from __future__ import annotations

from typing import Iterable, Optional

from .counterexample import Counterexample
from .fsm import Fsm


def fsm_to_dot(
    fsm: Fsm,
    *,
    highlight: Optional[Counterexample] = None,
    max_label: int = 60,
    rankdir: str = "LR",
) -> str:
    """Render an FSM as a DOT digraph.

    ``highlight`` marks a counterexample's states/edges in red so the
    violating scenario stands out inside the generated fragment.
    """
    hot_states: set = set()
    hot_edges: set = set()
    if highlight is not None:
        keys = [step.state for step in highlight.steps]
        hot_states = set(keys)
        hot_edges = {
            (prev, step.call.label(), cur)
            for prev, step, cur in zip(keys, highlight.steps[1:], keys[1:])
            if step.call is not None
        }

    lines = [f"digraph \"{fsm.name}\" {{", f"  rankdir={rankdir};", "  node [shape=ellipse, fontsize=10];"]
    for state in fsm.states:
        attrs = [f'label="s{state.index}\\n{_escape(state.key.label(max_label))}"']
        if state.is_initial:
            attrs.append("shape=doublecircle")
        if state.terminal_reason == "violation":
            attrs.append('color=red, style=filled, fillcolor="#ffdddd"')
        elif state.terminal_reason is not None:
            attrs.append('style=dashed')
        if state.key in hot_states:
            attrs.append("penwidth=2, color=red")
        lines.append(f"  s{state.index} [{', '.join(attrs)}];")
    for transition in fsm.transitions:
        src_key = fsm.states[transition.source].key
        dst_key = fsm.states[transition.target].key
        hot = (src_key, transition.label(), dst_key) in hot_edges
        attrs = [f'label="{_escape(transition.label())}"', "fontsize=9"]
        if hot:
            attrs.append("color=red, penwidth=2")
        lines.append(
            f"  s{transition.source} -> s{transition.target} [{', '.join(attrs)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def counterexample_to_dot(counterexample: Counterexample) -> str:
    """Render just the violating scenario as a linear DOT chain."""
    lines = [
        f'digraph "cex_{counterexample.property_name}" {{',
        "  rankdir=LR;",
        "  node [shape=box, fontsize=10];",
    ]
    for position, step in enumerate(counterexample.steps):
        color = ""
        if position == len(counterexample.steps) - 1:
            color = ', color=red, style=filled, fillcolor="#ffdddd"'
        lines.append(
            f'  n{position} [label="{_escape(step.state.label(60))}"{color}];'
        )
        if position > 0 and step.call is not None:
            lines.append(
                f'  n{position - 1} -> n{position} '
                f'[label="{_escape(step.call.label())}"];'
            )
    lines.append("}")
    return "\n".join(lines)


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')
