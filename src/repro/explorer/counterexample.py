"""Counterexample scenarios.

"An incorrect property detection stops the reachability algorithms and
outputs a sub-portion from the complete FSM which represents a complete
scenario for a counter-example" (paper, Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..asm.machine import ActionCall
from ..asm.state import StateKey


@dataclass(frozen=True)
class CounterexampleStep:
    """One step of the violating run: the call taken and the state reached."""

    call: Optional[ActionCall]  # None for the initial state
    state: StateKey

    def describe(self) -> str:
        if self.call is None:
            return f"  (initial) {self.state.label()}"
        return f"  --{self.call.label()}--> {self.state.label()}"


@dataclass(frozen=True)
class Counterexample:
    """A complete violating scenario from the initial state."""

    property_name: str
    steps: Tuple[CounterexampleStep, ...]

    @property
    def length(self) -> int:
        """Number of transitions in the scenario."""
        return max(len(self.steps) - 1, 0)

    def calls(self) -> List[ActionCall]:
        return [step.call for step in self.steps if step.call is not None]

    def final_state(self) -> StateKey:
        return self.steps[-1].state

    def describe(self) -> str:
        lines = [
            f"counterexample for property {self.property_name!r} "
            f"({self.length} steps):"
        ]
        lines.extend(step.describe() for step in self.steps)
        return "\n".join(lines)

    def replay(self, model) -> None:
        """Re-execute the scenario on a freshly reset model.

        Useful to hand the violating run to a debugger or to the
        simulation level: the calls are ordinary ASM actions.
        """
        model.reset()
        for call in self.calls():
            model.execute(call)

    def __str__(self) -> str:
        return self.describe()
