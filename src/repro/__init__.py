"""repro -- Design for Verification of SystemC Transaction Level Models.

A complete Python reproduction of Habibi & Tahar's DATE 2005 paper:

* :mod:`repro.uml` -- UML class/use-case diagrams and the paper's
  *modified sequence diagram* property notation,
* :mod:`repro.asm` -- an AsmL-flavoured Abstract State Machine
  framework (typed state, update-set semantics, guarded actions),
* :mod:`repro.explorer` -- FSM generation by bounded reachability with
  on-the-fly property checking, filters and counterexamples,
* :mod:`repro.psl` -- the Accellera PSL subset: Boolean layer, SEREs,
  FL formulas, four-valued finite-trace semantics, parser, and
  compiled assertion monitors,
* :mod:`repro.sysc` -- a SystemC-like discrete-event simulation kernel
  (delta cycles, signals, clocked threads, modules/ports),
* :mod:`repro.translate` -- the paper's ASM -> SystemC rules R1-R3 and
  PSL -> C# monitor generation, plus runnable translations,
* :mod:`repro.abv` -- runtime assertion-based verification,
* :mod:`repro.models` -- the two case studies: PCI (Table 1) and the
  generic Master/Slave bus (Table 2),
* :mod:`repro.workbench` -- the unified verification-session API:
  DUV registry, typed stages, pluggable engines, session reports,
* :mod:`repro.flow` -- the Figure 1 pipeline as a preset plan (the
  legacy ``DesignFlow`` entry point, deprecated),
* :mod:`repro.cli` -- the ``python -m repro`` command line.

Quickstart::

    from repro import Workbench, VerificationPlan

    report = Workbench("pci").run_plan(VerificationPlan.figure1())
    assert report.ok
    print(report.summary())          # one digest across all stages

Or stage by stage::

    wb = Workbench("master_slave")
    wb.explore()                     # model checking; exports residue
    wb.simulate_abv(cycles=5_000)    # monitors in simulation
    wb.regress(scenarios=40, bias=True)
"""

__version__ = "1.1.0"

#: workbench names re-exported at the top level, resolved lazily so
#: `import repro` stays light for subpackage-only consumers
_WORKBENCH_EXPORTS = (
    "Workbench",
    "VerificationPlan",
    "DUV",
    "SessionReport",
    "StageResult",
    "ModelRegistry",
    "default_registry",
)

__all__ = ["__version__", *_WORKBENCH_EXPORTS]


def __getattr__(name: str):
    if name in _WORKBENCH_EXPORTS:
        from . import workbench

        return getattr(workbench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
