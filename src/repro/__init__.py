"""repro -- Design for Verification of SystemC Transaction Level Models.

A complete Python reproduction of Habibi & Tahar's DATE 2005 paper:

* :mod:`repro.uml` -- UML class/use-case diagrams and the paper's
  *modified sequence diagram* property notation,
* :mod:`repro.asm` -- an AsmL-flavoured Abstract State Machine
  framework (typed state, update-set semantics, guarded actions),
* :mod:`repro.explorer` -- FSM generation by bounded reachability with
  on-the-fly property checking, filters and counterexamples,
* :mod:`repro.psl` -- the Accellera PSL subset: Boolean layer, SEREs,
  FL formulas, four-valued finite-trace semantics, parser, and
  compiled assertion monitors,
* :mod:`repro.sysc` -- a SystemC-like discrete-event simulation kernel
  (delta cycles, signals, clocked threads, modules/ports),
* :mod:`repro.translate` -- the paper's ASM -> SystemC rules R1-R3 and
  PSL -> C# monitor generation, plus runnable translations,
* :mod:`repro.abv` -- runtime assertion-based verification,
* :mod:`repro.models` -- the two case studies: PCI (Table 1) and the
  generic Master/Slave bus (Table 2),
* :mod:`repro.flow` -- the end-to-end Figure 1 pipeline.

Quickstart::

    from repro.flow import DesignFlow
    from repro.models.pci import (
        build_pci_model, pci_domains, pci_init_call,
        pci_letter_from_model,
    )
    from repro.models.pci.properties import pci_invariant_properties
    from repro.explorer import ExplorationConfig

    flow = DesignFlow(
        model_factory=lambda: build_pci_model(2, 2),
        directives=pci_invariant_properties(2, 2),
        extractor=pci_letter_from_model,
        exploration=ExplorationConfig(
            domains=pci_domains(2), init_action=pci_init_call()
        ),
    )
    print(flow.model_check().summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
