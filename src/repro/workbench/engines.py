"""Pluggable execution engines.

An :class:`Engine` is the seam between "what work a stage fans out"
and "where that work runs".  Three implementations are registered:
in-process serial, local ``multiprocessing``, and the sharded
subprocess-host dispatcher (:class:`ShardedEngine`, the ROADMAP's
cross-host scaling tier) -- the scenario regression runner executes
through any of them without changing stage code.

The contract mirrors ``multiprocessing.Pool.imap_unordered``:
``imap(fn, items)`` yields one result per item, in *any* order, as
they complete.  Callers that need a canonical order re-sort (the
regression report already does, which is what keeps its digest
worker-count invariant).  Closing the generator early (e.g. a
fail-fast break) must release the engine's resources.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Iterable, Iterator, Optional, Protocol, TypeVar, runtime_checkable

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")


@runtime_checkable
class Engine(Protocol):
    """Where stage work units run."""

    #: human-readable engine kind ("serial", "multiprocessing", ...)
    name: str
    #: degree of parallelism the engine will use
    workers: int

    def imap(
        self, fn: Callable[[_Item], _Result], items: Iterable[_Item]
    ) -> Iterator[_Result]:
        """Yield ``fn(item)`` for every item, unordered, as completed."""
        ...


class SerialEngine:
    """Runs every work unit inline, in submission order."""

    name = "serial"
    workers = 1

    def imap(
        self, fn: Callable[[_Item], _Result], items: Iterable[_Item]
    ) -> Iterator[_Result]:
        """Apply ``fn`` to each item inline; order is submission order."""
        for item in items:
            yield fn(item)

    def __repr__(self) -> str:
        return "SerialEngine()"


class MultiprocessingEngine:
    """Fans work units across a local process pool.

    ``fn`` and the items must be picklable (scenario specs are).  Small
    batches (one item, or one worker) degrade to inline execution so a
    pool is never spawned for nothing.
    """

    name = "multiprocessing"

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        if workers is None:
            workers = min(multiprocessing.cpu_count(), 8)
        self.workers = max(workers, 1)
        self.start_method = start_method

    def imap(
        self, fn: Callable[[_Item], _Result], items: Iterable[_Item]
    ) -> Iterator[_Result]:
        """Yield ``fn(item)`` from the pool as results complete."""
        pending = list(items)
        if self.workers == 1 or len(pending) <= 1:
            for item in pending:
                yield fn(item)
            return
        context = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else multiprocessing.get_context()
        )
        pool = context.Pool(processes=self.workers)
        try:
            yield from pool.imap_unordered(fn, pending)
        finally:
            # terminate() (not close()) so an early generator close --
            # the fail-fast path -- kills in-flight workers too
            pool.terminate()
            pool.join()

    def __repr__(self) -> str:
        return f"MultiprocessingEngine(workers={self.workers})"


class ShardedEngine:
    """Fans scenario specs across shard hosts (subprocess or HTTP).

    The cross-host scaling tier behind the same :class:`Engine` seam:
    ``imap`` partitions the items with the deterministic shard planner,
    hands shards to :class:`~repro.dispatch.Host`\\ s under the
    dispatcher's work-stealing schedule (default hosts: one ``python -m
    repro.scenarios --shard`` subprocess per shard; pass a pool of
    :class:`~repro.dispatch.HttpHost` for remote ``python -m
    repro.dispatch.worker`` daemons), and yields the merged verdicts.
    Because shard reports cross the host boundary as JSON, the work
    units must be :class:`~repro.scenarios.regression.ScenarioSpec` run
    through ``run_scenario`` -- the one fan-out whose results have a
    wire form.  Anything else raises ``TypeError``.

    The last dispatch's bookkeeping (per-shard hosts, retries,
    duplicate completions) is kept on :attr:`last_outcome` for
    reporting layers.
    """

    name = "sharded"

    def __init__(
        self,
        shards: int = 2,
        hosts: Optional[Any] = None,
        max_attempts: Optional[int] = None,
        workers_per_shard: Optional[int] = None,
        schedule: str = "stealing",
    ):
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        self.shards = shards
        self.workers = shards
        self.hosts = hosts
        self.max_attempts = max_attempts
        self.workers_per_shard = workers_per_shard
        self.schedule = schedule
        self.last_outcome: Optional[Any] = None

    def imap(
        self, fn: Callable[[_Item], _Result], items: Iterable[_Item]
    ) -> Iterator[_Result]:
        """Dispatch the specs across shard hosts; yield merged verdicts."""
        # imported lazily: repro.dispatch builds on repro.scenarios,
        # which imports this module at its top level
        from ..dispatch import ShardDispatcher
        from ..scenarios.regression import ScenarioSpec, run_scenario

        specs = list(items)
        if fn is not run_scenario or not all(
            isinstance(item, ScenarioSpec) for item in specs
        ):
            raise TypeError(
                "ShardedEngine only runs scenario regressions "
                "(run_scenario over ScenarioSpec items); other fan-outs "
                "have no cross-host wire form"
            )
        dispatcher = ShardDispatcher(
            specs,
            shards=self.shards,
            hosts=self.hosts,
            max_attempts=self.max_attempts,
            workers_per_shard=self.workers_per_shard,
            schedule=self.schedule,
        )
        outcome = dispatcher.run()
        self.last_outcome = outcome
        yield from outcome.report.verdicts

    def __repr__(self) -> str:
        return f"ShardedEngine(shards={self.shards})"


def _coordinator_engine(**options: Any) -> Engine:
    """Factory for the coordinator-fleet engine, imported lazily.

    :mod:`repro.coordinator.client` imports the regression wire forms,
    which import this module at their top level -- the same cycle
    :class:`ShardedEngine` breaks by importing inside ``imap``.
    """
    from ..coordinator.client import CoordinatorEngine

    return CoordinatorEngine(**options)


#: The registered engine kinds, by name (the CLI / config seam).
ENGINES: dict = {
    "serial": SerialEngine,
    "multiprocessing": MultiprocessingEngine,
    "sharded": ShardedEngine,
    "coordinator": _coordinator_engine,
}


def engine_from_name(name: str, **options: Any) -> Engine:
    """Instantiate a registered engine by name with its options."""
    try:
        factory = ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r} (registered: {', '.join(sorted(ENGINES))})"
        ) from None
    return factory(**options)


def resolve_engine(
    workers: Optional[int],
    n_items: int,
    start_method: Optional[str] = None,
) -> Engine:
    """The default engine choice for a fan-out of ``n_items``.

    Mirrors the historical ``RegressionRunner`` heuristic: at most 8
    processes, never more workers than items, serial when one worker
    suffices.
    """
    if workers is None:
        workers = min(multiprocessing.cpu_count(), 8, max(n_items, 1))
    workers = max(workers, 1)
    if workers == 1:
        return SerialEngine()
    return MultiprocessingEngine(workers, start_method=start_method)
