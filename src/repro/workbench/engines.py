"""Pluggable execution engines.

An :class:`Engine` is the seam between "what work a stage fans out"
and "where that work runs".  Today there are two implementations --
in-process serial and local ``multiprocessing`` -- and the scenario
regression runner executes through them; a future cross-host
dispatcher (the ROADMAP's sharded-regression item) plugs in here
without touching any stage code.

The contract mirrors ``multiprocessing.Pool.imap_unordered``:
``imap(fn, items)`` yields one result per item, in *any* order, as
they complete.  Callers that need a canonical order re-sort (the
regression report already does, which is what keeps its digest
worker-count invariant).  Closing the generator early (e.g. a
fail-fast break) must release the engine's resources.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Iterable, Iterator, Optional, Protocol, TypeVar, runtime_checkable

_Item = TypeVar("_Item")
_Result = TypeVar("_Result")


@runtime_checkable
class Engine(Protocol):
    """Where stage work units run."""

    #: human-readable engine kind ("serial", "multiprocessing", ...)
    name: str
    #: degree of parallelism the engine will use
    workers: int

    def imap(
        self, fn: Callable[[_Item], _Result], items: Iterable[_Item]
    ) -> Iterator[_Result]:
        """Yield ``fn(item)`` for every item, unordered, as completed."""
        ...


class SerialEngine:
    """Runs every work unit inline, in submission order."""

    name = "serial"
    workers = 1

    def imap(
        self, fn: Callable[[_Item], _Result], items: Iterable[_Item]
    ) -> Iterator[_Result]:
        for item in items:
            yield fn(item)

    def __repr__(self) -> str:
        return "SerialEngine()"


class MultiprocessingEngine:
    """Fans work units across a local process pool.

    ``fn`` and the items must be picklable (scenario specs are).  Small
    batches (one item, or one worker) degrade to inline execution so a
    pool is never spawned for nothing.
    """

    name = "multiprocessing"

    def __init__(
        self,
        workers: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        if workers is None:
            workers = min(multiprocessing.cpu_count(), 8)
        self.workers = max(workers, 1)
        self.start_method = start_method

    def imap(
        self, fn: Callable[[_Item], _Result], items: Iterable[_Item]
    ) -> Iterator[_Result]:
        pending = list(items)
        if self.workers == 1 or len(pending) <= 1:
            for item in pending:
                yield fn(item)
            return
        context = (
            multiprocessing.get_context(self.start_method)
            if self.start_method
            else multiprocessing.get_context()
        )
        pool = context.Pool(processes=self.workers)
        try:
            yield from pool.imap_unordered(fn, pending)
        finally:
            # terminate() (not close()) so an early generator close --
            # the fail-fast path -- kills in-flight workers too
            pool.terminate()
            pool.join()

    def __repr__(self) -> str:
        return f"MultiprocessingEngine(workers={self.workers})"


def resolve_engine(
    workers: Optional[int],
    n_items: int,
    start_method: Optional[str] = None,
) -> Engine:
    """The default engine choice for a fan-out of ``n_items``.

    Mirrors the historical ``RegressionRunner`` heuristic: at most 8
    processes, never more workers than items, serial when one worker
    suffices.
    """
    if workers is None:
        workers = min(multiprocessing.cpu_count(), 8, max(n_items, 1))
    workers = max(workers, 1)
    if workers == 1:
        return SerialEngine()
    return MultiprocessingEngine(workers, start_method=start_method)
