"""The design-under-verification bundle.

A :class:`DUV` captures, once, everything the Figure 1 flow needs to
know about one design: the ASM model factory (the formal leg), the PSL
property suite, the SystemC-level simulation factory (the ABV leg) and
the scenario-regression binding.  A :class:`~.session.Workbench` then
composes verification *stages* over the bundle without the caller
re-plumbing factories into every entry point.

Case studies register their bundles with the
:class:`~.registry.ModelRegistry` (see ``repro.models.*.duv``); ad-hoc
designs -- the deprecated :class:`repro.flow.DesignFlow` path, tests,
notebooks -- build a :class:`DUV` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple

from ..asm.machine import AsmModel
from ..explorer.config import ExplorationConfig
from ..explorer.fsm import Fsm
from ..explorer.sim_coverage import SimCoverage
from ..psl.ast_nodes import Directive, DirectiveKind, Property


@dataclass
class LivenessCheck:
    """One liveness obligation checked on the generated FSM."""

    name: str
    trigger: Callable[..., bool]
    goal: Callable[..., bool]


@dataclass(frozen=True)
class CoverageResidue:
    """FSM states/transitions hit only by the model checker.

    Right after :meth:`~.session.Workbench.explore` the residue is the
    whole FSM (nothing has simulated yet); once a simulation's coverage
    is folded in, the residue shrinks to the formal leg's added value.
    :meth:`~.session.Workbench.regress` accepts it as a bias input --
    the first directional step of the formal<->simulation loop.
    """

    states_total: int
    transitions_total: int
    uncovered_states: Tuple[int, ...]
    uncovered_transitions: Tuple[str, ...]
    #: simulation samples folded in so far (0 = model checker only)
    samples: int = 0

    @property
    def state_coverage(self) -> float:
        if self.states_total == 0:
            return 1.0
        return 1.0 - len(self.uncovered_states) / self.states_total

    @property
    def transition_coverage(self) -> float:
        if self.transitions_total == 0:
            return 1.0
        return 1.0 - len(self.uncovered_transitions) / self.transitions_total

    @classmethod
    def from_fsm(cls, fsm: Fsm) -> "CoverageResidue":
        """The residue before any simulation: the entire FSM."""
        return cls(
            states_total=fsm.state_count(),
            transitions_total=fsm.transition_count(),
            uncovered_states=tuple(s.index for s in fsm.states),
            uncovered_transitions=tuple(
                f"s{t.source} --{t.label()}--> s{t.target}" for t in fsm.transitions
            ),
        )

    @classmethod
    def from_sim_coverage(cls, coverage: SimCoverage) -> "CoverageResidue":
        """The residue after observing a simulation run."""
        return cls(
            states_total=coverage.fsm.state_count(),
            transitions_total=coverage.fsm.transition_count(),
            uncovered_states=tuple(coverage.uncovered_states()),
            uncovered_transitions=tuple(coverage.uncovered_transitions()),
            samples=coverage.samples,
        )

    def to_json(self) -> dict:
        return {
            "states_total": self.states_total,
            "transitions_total": self.transitions_total,
            "uncovered_states": len(self.uncovered_states),
            "uncovered_transitions": len(self.uncovered_transitions),
            "state_coverage": round(self.state_coverage, 4),
            "transition_coverage": round(self.transition_coverage, 4),
            "samples": self.samples,
        }

    def summary(self) -> str:
        return (
            f"residue: {len(self.uncovered_states)}/{self.states_total} states, "
            f"{len(self.uncovered_transitions)}/{self.transitions_total} "
            f"transitions reached only by the model checker"
        )


def _as_directives(
    directives: Sequence[Directive | Property],
) -> Tuple[Directive, ...]:
    """Bare properties become ASSERT directives (DesignFlow's rule)."""
    return tuple(
        d if isinstance(d, Directive) else Directive(DirectiveKind.ASSERT, d)
        for d in directives
    )


@dataclass
class DUV:
    """One design-under-verification, registered once, staged many times.

    ``systemc_factory`` (``seed -> system``) builds the hand-written
    SystemC-level model for ABV simulation; the system must expose
    ``simulator``, ``clock``, ``letter`` and ``run_cycles`` (both case
    studies' ``*SystemModel`` classes do).  When it is None the
    workbench falls back to the generic ASM->SystemC runtime
    translation (:func:`repro.translate.runtime.build_runtime`), which
    is what ad-hoc/toy designs use.

    ``scenario_model`` is the key the scenario-regression layer knows
    the design by (``"master_slave"`` / ``"pci"``); None disables the
    ``regress`` stage unless explicit specs are passed.
    """

    name: str
    model_factory: Callable[[], AsmModel]
    description: str = ""
    directives: Sequence[Directive | Property] = ()
    extractor: Optional[Callable[[AsmModel], Mapping[str, Any]]] = None
    exploration: ExplorationConfig = field(default_factory=ExplorationConfig)
    liveness_checks: Sequence[LivenessCheck] = ()
    systemc_factory: Optional[Callable[[int], Any]] = None
    #: monitor suite bound in simulation; None = the explored directives
    simulation_directives: Optional[Sequence[Directive | Property]] = None
    scenario_model: Optional[str] = None
    clock_period_ps: int = 30_000
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.directives = _as_directives(self.directives)
        if self.simulation_directives is not None:
            self.simulation_directives = _as_directives(self.simulation_directives)
        self.liveness_checks = tuple(self.liveness_checks)

    def assert_directives(self) -> List[Directive]:
        """The directives explored formally (ASSERT kind only)."""
        return [d for d in self.directives if d.kind == DirectiveKind.ASSERT]

    def monitor_directives(self) -> List[Directive]:
        """The directives bound as runtime monitors in simulation."""
        if self.simulation_directives is not None:
            return list(self.simulation_directives)
        return list(self.directives)
