"""The verification-session facade.

A :class:`Workbench` binds one :class:`~.duv.DUV` (by object or by
registered name) and composes verification stages over it::

    from repro.workbench import Workbench, VerificationPlan

    wb = Workbench("master_slave")
    wb.explore()                 # FSM generation + on-the-fly checking
    wb.check_liveness()          # lasso/deadlock search on the FSM
    wb.simulate_abv(cycles=5000) # SystemC simulation with PSL monitors
    wb.regress(scenarios=40)     # constrained-random scoreboarded fan-out
    wb.close_coverage()          # directed goals for the formal-only residue
    print(wb.report().summary())

or runs a declarative plan end to end::

    report = Workbench("pci").run_plan(VerificationPlan.figure1())

Every stage returns a typed :class:`~.stages.StageResult`; the
session's :class:`~.stages.SessionReport` digest is byte-identical for
the same DUV, seeds and options at any worker count.  Stage fan-out
executes through a pluggable :class:`~.engines.Engine`.
"""

from __future__ import annotations

import hashlib
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..abv.harness import AbvHarness, FailureAction
from ..obs.runtime import OBS
from ..explorer.engine import ExplorationResult, explore as run_exploration
from ..explorer.fsm import Fsm
from ..explorer.liveness import check_eventually
from ..explorer.rules import check_rules
from ..explorer.sim_coverage import CoverageTracker
from ..psl.asm_embedding import AssertionProperty, state_extractor
from ..psl.compiled import compile_properties
from ..psl.monitor import Monitor
from ..translate.class_rules import translate_class
from ..translate.csharp_gen import render_monitor_suite
from ..translate.runtime import build_runtime
from ..translate.systemc_gen import render_translation_unit
from .duv import DUV, CoverageResidue
from .engines import Engine, ShardedEngine, engine_from_name, resolve_engine
from .plan import STAGE_NAMES, VerificationPlan
from .registry import ModelRegistry, default_registry
from .stages import (
    SessionReport,
    SimulationReport,
    StageResult,
    StageStatus,
)

#: transition-coverage ratio below which a residue bias re-weights the
#: regression toward pressure profiles (most of the FSM was reached
#: only formally -> the random traffic is too tame)
RESIDUE_BIAS_THRESHOLD = 0.75

#: profiles a residue bias steers toward: long low-idle bursts plus
#: boundary-length traffic, the shapes that reach corner interleavings
RESIDUE_BIAS_PROFILES: Tuple[str, ...] = ("bursty", "edges")


def _fsm_digest(fsm: Fsm) -> str:
    """Stable fingerprint of a generated FSM (topology, not key bits)."""
    lines = sorted(
        f"s{t.source} --{t.label()}--> s{t.target}" for t in fsm.transitions
    )
    body = f"states:{fsm.state_count()}\n" + "\n".join(lines)
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


class Workbench:
    """One verification session over one registered design."""

    def __init__(
        self,
        duv: Union[DUV, str],
        engine: Optional[Engine] = None,
        registry: Optional[ModelRegistry] = None,
        seed: int = 2005,
        **duv_params: Any,
    ):
        if isinstance(duv, str):
            duv = (registry or default_registry()).get(duv, **duv_params)
        elif duv_params:
            raise TypeError("duv_params only apply when resolving a DUV by name")
        self.duv = duv
        self.engine = engine
        self.seed = seed
        self._stages: List[StageResult] = []
        self._exploration: Optional[ExplorationResult] = None
        self._residue: Optional[CoverageResidue] = None
        #: per-stage fleet /metrics aggregates (observability only,
        #: never digested); populated by dispatching stages when the
        #: engine's hosts expose a metrics endpoint
        self._fleet_metrics: List[Dict[str, Any]] = []

    # -- session state ---------------------------------------------------------

    @property
    def residue(self) -> Optional[CoverageResidue]:
        """The current formal-only coverage residue (None before explore)."""
        return self._residue

    def report(self) -> SessionReport:
        """The session so far: every stage result, one stable digest.

        When observability is enabled the report also carries a
        non-digested ``observability`` section: the session's metrics
        registry plus any per-stage fleet ``/metrics`` aggregates --
        pure telemetry, guaranteed absent from the digest.
        """
        observability: Dict[str, Any] = {}
        if OBS.metrics.enabled:
            observability["metrics"] = OBS.metrics.to_json()
        if self._fleet_metrics:
            observability["fleet_metrics"] = list(self._fleet_metrics)
        return SessionReport(
            duv=self.duv.name,
            stages=list(self._stages),
            observability=observability,
        )

    # -- stage plumbing ---------------------------------------------------------

    def _execute(
        self,
        stage: str,
        impl: Callable[..., StageResult],
        kwargs: Dict[str, Any],
    ) -> StageResult:
        started = time.perf_counter()
        try:
            if OBS.enabled:
                with OBS.tracer.span(
                    f"workbench.{stage}", "workbench", duv=self.duv.name
                ):
                    result = impl(**kwargs)
            else:
                result = impl(**kwargs)
        except Exception as exc:  # noqa: BLE001 -- stages never raise; plans skip
            result = StageResult(
                stage=stage,
                status=StageStatus.ERROR,
                error=f"{type(exc).__name__}: {exc}",
                exception=exc,
                data={"exception": type(exc).__name__},
            )
            result.metrics["traceback"] = traceback.format_exc(limit=8)
        result.metrics.setdefault(
            "wall_seconds", round(time.perf_counter() - started, 6)
        )
        self._stages.append(result)
        return result

    def _skip(self, stage: str, reason: str) -> StageResult:
        result = StageResult(
            stage=stage,
            status=StageStatus.SKIPPED,
            summary=reason,
            data={"reason": reason},
        )
        self._stages.append(result)
        return result

    # -- stage: analyze (static analysis: races + property lint) ----------------

    def analyze(
        self, witness: bool = False, witness_cycles: Optional[int] = None
    ) -> StageResult:
        """Static analysis of the DUV: delta-cycle race detection over
        the SystemC sources plus a property lint of the directive set;
        ``witness=True`` cross-checks with a witnessed kernel run.

        Findings (with their suppressions) land in digested ``data``;
        witness statistics are run facts and stay in ``metrics`` so
        the session digest is identical with the witness on or off for
        a clean model.
        """
        return self._execute(
            "analyze",
            self._analyze_impl,
            {"witness": witness, "witness_cycles": witness_cycles},
        )

    def _analyze_impl(
        self, witness: bool = False, witness_cycles: Optional[int] = None
    ) -> StageResult:
        # Imported lazily: repro.analyze imports workbench submodules,
        # so a module-level import here would be circular.
        from ..analyze.runner import DEFAULT_WITNESS_CYCLES, analyze_duv

        report = analyze_duv(
            self.duv,
            witness=witness,
            witness_cycles=(
                DEFAULT_WITNESS_CYCLES if witness_cycles is None
                else witness_cycles
            ),
            seed=self.seed,
        )
        unsuppressed = report.unsuppressed()
        return StageResult(
            stage="analyze",
            status=StageStatus.PASSED if report.ok else StageStatus.FAILED,
            summary=report.summary(),
            data={
                "findings": [f.to_json() for f in report.findings],
                "findings_digest": report.digest(),
                "rules": report.rule_counts(),
                "unsuppressed": len(unsuppressed),
            },
            metrics={"facts": report.facts},
            payload=report,
        )

    # -- stage: explore (FSM-generation model checking) -------------------------

    def explore(self, **overrides: Any) -> StageResult:
        """Model check by FSM generation; exports the coverage residue.

        ``overrides`` are :class:`ExplorationConfig` field replacements
        (``max_states=...``, ``stop_on_violation=...``, ...).
        """
        return self._execute("explore", self._explore_impl, overrides)

    def _explore_impl(self, **overrides: Any) -> StageResult:
        duv = self.duv
        model = duv.model_factory()
        extractor = duv.extractor or state_extractor
        properties = [
            AssertionProperty(d.prop, extractor=extractor, name=d.prop.name)
            for d in duv.assert_directives()
        ]
        config = duv.exploration.with_overrides(properties=properties, **overrides)
        findings = check_rules(model, config)
        result = run_exploration(model, config)
        self._exploration = result
        residue = CoverageResidue.from_fsm(result.fsm)
        self._residue = residue
        status = StageStatus.PASSED if result.ok else StageStatus.FAILED
        return StageResult(
            stage="explore",
            status=status,
            summary=result.summary().splitlines()[0],
            data={
                "states": result.fsm.state_count(),
                "transitions": result.fsm.transition_count(),
                "completed": result.stats.completed,
                "violations": [
                    {"property": v.property_name, "state": v.state_index}
                    for v in result.violations
                ],
                "properties": [d.prop.name for d in duv.assert_directives()],
                "rule_warnings": sum(1 for f in findings if f.level == "warning"),
                "fsm_digest": _fsm_digest(result.fsm),
                "residue": residue.to_json(),
            },
            metrics={"explore_seconds": round(result.stats.elapsed_seconds, 6)},
            payload={
                "exploration": result,
                "rule_findings": findings,
                "residue": residue,
            },
        )

    # -- stage: liveness on the generated FSM -----------------------------------

    def check_liveness(self) -> StageResult:
        """Check every registered liveness obligation on the FSM."""
        return self._execute("check_liveness", self._check_liveness_impl, {})

    def _check_liveness_impl(self) -> StageResult:
        if self._exploration is None:
            self.explore()
        assert self._exploration is not None
        checks = list(self.duv.liveness_checks)
        results = [
            check_eventually(self._exploration.fsm, c.trigger, c.goal, c.name)
            for c in checks
        ]
        holds = all(r.holds for r in results)
        summary = (
            "; ".join(r.summary() for r in results)
            if results
            else "no liveness checks registered"
        )
        return StageResult(
            stage="check_liveness",
            status=StageStatus.PASSED if holds else StageStatus.FAILED,
            summary=summary,
            data={
                "checks": [
                    {
                        "name": r.name,
                        "holds": r.holds,
                        "triggers_checked": r.triggers_checked,
                    }
                    for r in results
                ]
            },
            payload={"results": results},
        )

    # -- stage: translation artifacts (rules R1-R3 + C# monitors) ---------------

    def translate(self, clock_period: Optional[int] = None) -> StageResult:
        """Render the SystemC translation unit and the C# monitor suite."""
        return self._execute(
            "translate", self._translate_impl, {"clock_period": clock_period}
        )

    def _translate_impl(self, clock_period: Optional[int] = None) -> StageResult:
        duv = self.duv
        period = clock_period or duv.clock_period_ps
        model = duv.model_factory()
        machine_classes = sorted(
            {type(m) for m in model.machines.values()}, key=lambda c: c.__name__
        )
        specs = [translate_class(cls) for cls in machine_classes]
        instances = [
            (name, type(machine).__name__)
            for name, machine in sorted(model.machines.items())
        ]
        cpp = render_translation_unit(specs, instances, period // 1000)
        csharp = render_monitor_suite(list(duv.directives))
        return StageResult(
            stage="translate",
            status=StageStatus.PASSED,
            summary=(
                f"{len(specs)} SC_MODULEs ({len(cpp.splitlines())} lines C++), "
                f"{len(duv.directives)} monitors "
                f"({len(csharp.splitlines())} lines C#)"
            ),
            data={
                "modules": [s.name for s in specs],
                "systemc_sha": hashlib.sha256(cpp.encode()).hexdigest()[:16],
                "csharp_sha": hashlib.sha256(csharp.encode()).hexdigest()[:16],
                "clock_period_ps": period,
            },
            payload={"systemc": cpp, "csharp": csharp},
        )

    # -- stage: ABV simulation ---------------------------------------------------

    def simulate_abv(
        self,
        cycles: int = 2_000,
        seed: Optional[int] = None,
        stop_on_failure: bool = False,
        clock_period: Optional[int] = None,
        policy: Any = None,
    ) -> StageResult:
        """Simulate with the PSL monitor suite bound (paper Section 3.2).

        On the generic ASM-runtime path the run's FSM coverage is
        folded back into the session residue; the hand-written SystemC
        models (both registered case studies) do not expose their ASM
        action stream, so there the residue keeps its post-``explore``
        value -- the whole formally explored FSM (``residue_updated``
        in the stage data says which case applied).
        """
        return self._execute(
            "simulate_abv",
            self._simulate_impl,
            {
                "cycles": cycles,
                "seed": seed,
                "stop_on_failure": stop_on_failure,
                "clock_period": clock_period,
                "policy": policy,
            },
        )

    def _simulate_impl(
        self,
        cycles: int,
        seed: Optional[int],
        stop_on_failure: bool,
        clock_period: Optional[int],
        policy: Any,
    ) -> StageResult:
        duv = self.duv
        seed = self.seed if seed is None else seed
        actions = (
            (FailureAction.REPORT, FailureAction.STOP)
            if stop_on_failure
            else (FailureAction.REPORT,)
        )
        directives = duv.monitor_directives()
        monitors: List[Monitor] = compile_properties(directives)
        residue_json: Optional[dict] = None

        if duv.systemc_factory is not None:
            system = duv.systemc_factory(seed)
            harness = AbvHarness(system.simulator, system.clock, system.letter)
            for monitor in monitors:
                harness.add_monitor(monitor, actions)
            started = time.perf_counter()
            system.run_cycles(cycles)
            wall = time.perf_counter() - started
            harness.finish()
        else:
            model = duv.model_factory()
            period = clock_period or duv.clock_period_ps
            simulator, clock, module = build_runtime(
                model, clock_period=period, policy=policy
            )
            harness = AbvHarness(simulator, clock, module.letter)
            for monitor in monitors:
                harness.add_monitor(monitor, actions)
            started = time.perf_counter()
            simulator.run(period * cycles)
            wall = time.perf_counter() - started
            harness.finish()
            if self._exploration is not None:
                # fold the run's FSM coverage back into the residue --
                # what remains is the model checker's added value
                tracker = CoverageTracker(
                    self._exploration.fsm,
                    module.asm_model,
                    selected=self._exploration.selected_variables,
                )
                coverage = tracker.observe_run(module)
                self._residue = CoverageResidue.from_sim_coverage(coverage)
                residue_json = self._residue.to_json()

        report = SimulationReport(
            cycles=harness.cycles_observed,
            wall_seconds=wall,
            harness_summary=harness.summary(),
            failed_assertions=[b.monitor.name for b in harness.failed],
            monitor_verdicts={m.name: m.verdict().value for m in monitors},
        )
        data: Dict[str, Any] = {
            "cycles": report.cycles,
            "seed": seed,
            "monitors": len(monitors),
            "failed_assertions": report.failed_assertions,
            "monitor_verdicts": report.monitor_verdicts,
            # False on the hand-written SystemC path: those models do
            # not expose their ASM action stream, so FSM coverage is
            # not folded back and the residue stays the explored whole
            "residue_updated": residue_json is not None,
        }
        if residue_json is not None:
            data["residue"] = residue_json
        return StageResult(
            stage="simulate_abv",
            status=StageStatus.PASSED if report.ok else StageStatus.FAILED,
            summary=report.summary(),
            data=data,
            metrics={
                "sim_wall_seconds": round(wall, 6),
                "delta_ns_per_cycle": round(report.delta_ns_per_cycle, 3),
            },
            payload={"report": report, "harness": harness},
        )

    def _dispatch_engine(
        self,
        workers: Optional[int],
        shards: Optional[int],
        hosts: Optional[Sequence[Any]],
        n_specs: int,
        coordinator: Optional[str] = None,
        token: Optional[str] = None,
    ) -> Engine:
        """Engine for a scenario fan-out sized by the stage arguments.

        ``coordinator`` (a daemon URL) wins over everything local: the
        whole fan-out ships to the elastic fleet as one job, with
        ``token`` as the fleet's shared bearer secret.  ``hosts`` (a
        pool of :class:`~repro.dispatch.Host`\\ s, e.g. from
        :func:`repro.dispatch.parse_hosts`) selects cross-host
        dispatch with ``shards`` defaulting to the planner's
        oversubscription so work stealing has a tail to rebalance;
        plain ``shards=N`` fans over N local subprocess hosts; neither
        falls back to the local serial/multiprocessing heuristic.
        """
        if coordinator:
            return engine_from_name("coordinator", url=coordinator, token=token)
        if hosts:
            from ..dispatch import shards_for_hosts

            hosts = list(hosts)
            return ShardedEngine(
                shards or shards_for_hosts(len(hosts), n_specs),
                hosts=hosts,
                workers_per_shard=workers,
            )
        if shards is not None:
            # ``workers`` keeps its meaning inside each shard host
            return ShardedEngine(shards, workers_per_shard=workers)
        return resolve_engine(workers, n_specs)

    def _dispatch_facts(self, outcome: Any, stage: str) -> Dict[str, Any]:
        """Run facts for one finished dispatch (metrics-side only).

        Everything here -- schedule, per-host loads, the per-host
        failure-kind counters, duplicate completions -- describes *how*
        the fan-out ran, never *what* it verified, so it rides in stage
        ``metrics`` and stays outside the session digest.  When the
        outcome carries fleet ``/metrics`` documents they are folded
        into the session's ``observability`` section as well.
        """
        facts: Dict[str, Any] = {
            "shards": len(outcome.runs),
            "hosts": list(outcome.hosts),
            "retries": outcome.retries,
            "schedule": outcome.schedule,
            "duplicates": outcome.duplicates,
            "host_loads": outcome.host_loads(),
            "failures": outcome.failure_counts(),
        }
        host_metrics = getattr(outcome, "host_metrics", None)
        if host_metrics:
            from ..obs.metrics import merge_metric_docs

            self._fleet_metrics.append(
                {
                    "stage": stage,
                    "hosts": host_metrics,
                    "aggregate": merge_metric_docs(host_metrics.values()),
                }
            )
        return facts

    def _coordinator_facts(self, job: Dict[str, Any]) -> Dict[str, Any]:
        """Run facts for one coordinator job (metrics-side only).

        The job document minus the report itself: the merged verdicts
        already flowed through the engine and the full report would
        duplicate them inside stage metrics.  Like ``_dispatch_facts``
        this rides outside the session digest.
        """
        return {
            "job": job.get("job"),
            "fingerprint": job.get("fingerprint"),
            "from_cache": job.get("from_cache", False),
            "dispatch": job.get("dispatch", {}),
        }

    # -- stage: scenario regression ----------------------------------------------

    def regress(
        self,
        scenarios: int = 24,
        cycles: int = 300,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        hosts: Optional[Sequence[Any]] = None,
        coordinator: Optional[str] = None,
        token: Optional[str] = None,
        seed: Optional[int] = None,
        specs: Optional[Sequence[Any]] = None,
        bias: Union[CoverageResidue, bool, None] = None,
        fail_fast: bool = False,
        with_monitors: bool = False,
        profiles: Optional[Sequence[str]] = None,
    ) -> StageResult:
        """Fan seeded, scoreboarded scenarios over the session engine.

        ``bias`` closes the formal->simulation loop: pass a
        :class:`CoverageResidue` (or ``True`` for the session's own)
        and, when most of the FSM was reached only by the model
        checker, spec construction re-weights toward pressure traffic
        profiles.  Explicit ``specs`` bypass spec construction, so a
        bias never applies to them.

        ``workers`` sizes the default local engine; ``shards=N``
        selects the sharded dispatcher instead (N subprocess shard
        hosts); ``hosts`` -- a pool of
        :class:`~repro.dispatch.Host`\\ s, e.g.
        ``parse_hosts("h1:8421,h2:8421")`` -- dispatches to remote
        worker daemons under the work-stealing schedule, with
        ``shards`` (default: two per host) sizing the queue;
        ``coordinator`` (a ``python -m repro.coordinator`` URL, with
        ``token`` as the fleet secret) ships the whole fan-out to the
        elastic coordinator fleet as one job instead.  In every case
        the merged digest is identical to a serial run.  An engine
        injected at construction always wins over all of them.
        """
        return self._execute(
            "regress",
            self._regress_impl,
            {
                "scenarios": scenarios,
                "cycles": cycles,
                "workers": workers,
                "shards": shards,
                "hosts": hosts,
                "coordinator": coordinator,
                "token": token,
                "seed": seed,
                "specs": specs,
                "bias": bias,
                "fail_fast": fail_fast,
                "with_monitors": with_monitors,
                "profiles": profiles,
            },
        )

    def _regress_impl(
        self,
        scenarios: int,
        cycles: int,
        workers: Optional[int],
        shards: Optional[int],
        hosts: Optional[Sequence[Any]],
        coordinator: Optional[str],
        token: Optional[str],
        seed: Optional[int],
        specs: Optional[Sequence[Any]],
        bias: Union[CoverageResidue, bool, None],
        fail_fast: bool,
        with_monitors: bool,
        profiles: Optional[Sequence[str]],
    ) -> StageResult:
        # imported lazily: scenarios.regression itself imports the
        # engine layer, and eager cross-imports would cycle
        from ..scenarios.regression import RegressionRunner, build_specs

        residue = self._residue if bias is True else bias or None
        bias_applied = False
        if specs is None:
            if self.duv.scenario_model is None:
                raise ValueError(
                    f"DUV {self.duv.name!r} has no scenario binding; "
                    "pass explicit specs to regress()"
                )
            if (
                profiles is None
                and isinstance(residue, CoverageResidue)
                and residue.transition_coverage < RESIDUE_BIAS_THRESHOLD
            ):
                profiles = RESIDUE_BIAS_PROFILES
                bias_applied = True
            specs = build_specs(
                models=[self.duv.scenario_model],
                count=scenarios,
                base_seed=self.seed if seed is None else seed,
                cycles=cycles,
                with_monitors=with_monitors,
                profiles=profiles,
            )
        else:
            # explicit specs bypass spec construction entirely -- a
            # bias cannot apply to them, so never report one
            profiles = None
        specs = list(specs)
        # an engine injected at construction is the session's choice of
        # execution seam and always wins; ``workers``/``shards``/``hosts``
        # only size the default engine
        engine = self.engine
        if engine is None:
            engine = self._dispatch_engine(
                workers, shards, hosts, len(specs),
                coordinator=coordinator, token=token,
            )
        runner = RegressionRunner(specs, engine=engine, fail_fast=fail_fast)
        report = runner.run()
        data: Dict[str, Any] = {
            "scenarios": len(report.verdicts),
            "passed": len(report.verdicts) - len(report.failed),
            "failed": [v.spec.label for v in report.failed],
            "transactions": report.transactions,
            "words": report.words,
            "stimulus_bins": len(report.bin_totals()),
            "regression_digest": report.digest(),
            "bias": {
                "applied": bias_applied,
                "profiles": sorted(profiles) if profiles else [],
                "transition_coverage": (
                    round(residue.transition_coverage, 4)
                    if isinstance(residue, CoverageResidue)
                    else None
                ),
            },
        }
        metrics: Dict[str, Any] = {
            "workers": report.workers,
            "engine": engine.name,
            "regress_wall_seconds": round(report.wall_seconds, 6),
            "throughput_txn_per_s": round(report.throughput, 1),
            "stopped_early": report.stopped_early,
        }
        outcome = getattr(engine, "last_outcome", None)
        if outcome is not None:
            # run facts, not results: which hosts served which shards
            # (and how many retries it took) must not perturb the
            # engine-invariant session digest, so this lives in metrics
            metrics["dispatch"] = self._dispatch_facts(outcome, "regress")
        job = getattr(engine, "last_job", None)
        if job is not None:
            metrics["coordinator"] = self._coordinator_facts(job)
        return StageResult(
            stage="regress",
            status=StageStatus.PASSED if report.ok else StageStatus.FAILED,
            summary=report.summary().splitlines()[1],
            data=data,
            metrics=metrics,
            payload={"report": report},
        )

    # -- stage: directed coverage closure ------------------------------------------

    def close_coverage(
        self,
        rounds: int = 3,
        cycles: int = 160,
        max_goals: Optional[int] = None,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        hosts: Optional[Sequence[Any]] = None,
        coordinator: Optional[str] = None,
        token: Optional[str] = None,
        seed: Optional[int] = None,
        frontier: bool = True,
    ) -> StageResult:
        """Close the formal-only residue with directed sequence goals.

        The other leg of the formal<->simulation loop (``regress(bias=...)``
        re-weights randomness; this stage *directs* it): plan a BFS path
        over the explored FSM from the initial state to every residue
        transition, lower each path into per-master transaction goals,
        fan the directed scenarios through the session engine, and fold
        the transitions the runs demonstrably exercised back into the
        residue -- re-planning until the residue stops shrinking or
        ``rounds`` is spent.  Residue transitions the SystemC
        implementation cannot reach at transaction level (the model
        checker's true added value) remain and are reported as such.

        The directed goals travel on the same ``ScenarioSpec`` wire
        form as random specs (``goals`` + ``track_fsm`` fields), so
        ``shards=N`` fans each round across N local subprocess hosts,
        ``hosts=[...]`` across remote HTTP workers, and
        ``coordinator=URL`` submits each round as one job to the
        elastic coordinator fleet -- in each case the per-round
        regression digest matches a serial run.

        With ``frontier=True`` (the default) every directed run
        snapshots its end state into the checkpoint registry, keyed by
        the FSM state its event walk stopped in.  The next round's
        planner treats those covered frontier states as extra path
        origins: a residue edge strictly closer to a frontier state
        than to reset is planned from there, and its scenario *forks*
        the cached checkpoint (``resume_from``) instead of re-walking
        the warm-up -- same achieved-edge accounting, measurably fewer
        simulated cycles per round (each round reports
        ``cycles_simulated`` and ``cycles_saved``).
        """
        return self._execute(
            "close_coverage",
            self._close_coverage_impl,
            {
                "rounds": rounds,
                "cycles": cycles,
                "max_goals": max_goals,
                "workers": workers,
                "shards": shards,
                "hosts": hosts,
                "coordinator": coordinator,
                "token": token,
                "seed": seed,
                "frontier": frontier,
            },
        )

    def _close_coverage_impl(
        self,
        rounds: int,
        cycles: int,
        max_goals: Optional[int],
        workers: Optional[int],
        shards: Optional[int],
        hosts: Optional[Sequence[Any]],
        coordinator: Optional[str],
        token: Optional[str],
        seed: Optional[int],
        frontier: bool,
    ) -> StageResult:
        # imported lazily for the same reason as regress: the scenario
        # layer imports the engine layer
        from ..explorer.goal_planner import GoalPlanner, walk_fsm_events
        from ..scenarios.directed import DirectedClosureLoop, lower_path_for_model
        from ..scenarios.random_ import derive_seed
        from ..scenarios.regression import RegressionRunner, ScenarioSpec

        if self._exploration is None:
            self.explore()
        assert self._exploration is not None and self._residue is not None
        duv = self.duv
        if duv.scenario_model is None:
            raise ValueError(
                f"DUV {duv.name!r} has no scenario binding; "
                "directed closure needs a driver to lower goals onto"
            )
        topology = tuple(duv.metadata.get("topology", ()))
        if not topology:
            raise ValueError(
                f"DUV {duv.name!r} metadata carries no topology; "
                "directed closure cannot size the scenario system"
            )
        fsm = self._exploration.fsm
        residue_before = self._residue
        base_seed = self.seed if seed is None else seed
        planner = GoalPlanner(fsm)

        round_data: List[Dict[str, Any]] = []
        visited_states: set = set()
        unlowerable: set = set()
        dispatch_metrics: List[Dict[str, Any]] = []
        coordinator_metrics: List[Dict[str, Any]] = []

        use_frontier = bool(frontier)
        checkpoint_registry = None
        if use_frontier:
            # imported lazily like the rest of the scenario layer; the
            # spill dir makes subprocess-captured checkpoints resolvable
            # here when a later round forks them
            from ..checkpoint import ensure_spill_dir, global_registry

            ensure_spill_dir()
            checkpoint_registry = global_registry()
        #: covered FSM state -> (checkpoint digest, cycles run, seed) of
        #: the directed run whose event walk stopped there
        frontier_checkpoints: Dict[int, Tuple[str, int, int]] = {}
        fork_facts: Dict[int, Dict[str, int]] = {}

        def plan_round(edges: Tuple[str, ...], round_index: int) -> List[Any]:
            planned = []
            available = (
                sorted(
                    state
                    for state, (digest, _, _) in frontier_checkpoints.items()
                    if digest in checkpoint_registry
                )
                if use_frontier
                else []
            )
            facts = fork_facts.setdefault(
                round_index,
                {"forked_goals": 0, "cycles_saved": 0, "cycles_simulated": 0},
            )
            # the cap counts *lowerable from-reset* plans: paths the
            # drivers cannot realize (e.g. PCI STOP# edges) must not use
            # up the budget, and neither do frontier forks -- they skip
            # the warm-up, so they ride along as cheap extras
            from_reset_planned = 0
            for plan in planner.plan(edges, frontier=available):
                goals = lower_path_for_model(
                    duv.scenario_model, plan.calls(), topology
                )
                if not goals and plan.origin_state is not None:
                    # the frontier path is not drivable from an idle
                    # system (it starts mid-pattern); fall back to the
                    # from-reset plan rather than dropping the edge
                    fallback = planner.replan_from_initial(plan)
                    if fallback is not None:
                        plan = fallback
                        goals = lower_path_for_model(
                            duv.scenario_model, plan.calls(), topology
                        )
                if not goals:
                    unlowerable.add(plan.target_edge)
                    continue
                if plan.origin_state is not None:
                    # fork the frontier checkpoint: the restored system
                    # already sits in origin_state, so the spec carries
                    # only the path onward -- a strictly shorter goal
                    # list -- and gets a budget prorated to it (never
                    # more than a from-reset run would have spent)
                    digest, cp_cycles, cp_seed = frontier_checkpoints[
                        plan.origin_state
                    ]
                    if plan.initial_steps:
                        extra = -(
                            -cycles * len(plan.transitions)
                            // plan.initial_steps
                        )
                        extra = min(cycles, max(extra, 16))
                    else:
                        extra = cycles
                    spec = ScenarioSpec(
                        model=duv.scenario_model,
                        seed=cp_seed,    # restore pins the seed
                        topology=topology,
                        profile="directed",
                        cycles=cp_cycles + extra,
                        goals=tuple(goals),
                        track_fsm=True,
                        resume_from=digest,
                        checkpoint_at=cp_cycles + extra,
                    )
                    facts["forked_goals"] += 1
                    facts["cycles_saved"] += cycles - extra
                    facts["cycles_simulated"] += extra
                else:
                    if (
                        max_goals is not None
                        and from_reset_planned >= max_goals
                    ):
                        continue
                    from_reset_planned += 1
                    spec_seed = derive_seed(
                        base_seed, f"close/round{round_index}/goal{plan.index}"
                    ) % (2**31)
                    spec = ScenarioSpec(
                        model=duv.scenario_model,
                        seed=spec_seed,
                        topology=topology,
                        profile="directed",
                        cycles=cycles,
                        goals=tuple(goals),
                        track_fsm=True,
                        checkpoint_at=cycles if use_frontier else None,
                    )
                    facts["cycles_simulated"] += cycles
                planned.append((plan, spec))
            return planned

        def run_round(planned: List[Any], round_index: int) -> List[str]:
            specs = [spec for _, spec in planned]
            engine = self.engine
            if engine is None:
                engine = self._dispatch_engine(
                    workers, shards, hosts, len(specs),
                    coordinator=coordinator, token=token,
                )
            report = RegressionRunner(specs, engine=engine).run()
            achieved: set = set()
            off_path = 0
            for verdict in report.verdicts:
                walk = walk_fsm_events(fsm, verdict.fsm_events)
                achieved.update(walk.exercised)
                visited_states.update(walk.visited_states)
                off_path += walk.off_path
                if (
                    use_frontier
                    and verdict.frontier_digest
                    and walk.final_state is not None
                    and walk.final_state not in frontier_checkpoints
                ):
                    frontier_checkpoints[walk.final_state] = (
                        verdict.frontier_digest,
                        verdict.spec.cycles,
                        verdict.spec.seed,
                    )
            facts = fork_facts.get(round_index, {})
            round_data.append(
                {
                    "round": round_index,
                    "goals": len(planned),
                    "scenarios": len(report.verdicts),
                    "scenarios_failed": [v.spec.label for v in report.failed],
                    "transactions": report.transactions,
                    "off_path_events": off_path,
                    "regression_digest": report.digest(),
                    "forked_goals": facts.get("forked_goals", 0),
                    "cycles_saved": facts.get("cycles_saved", 0),
                    "cycles_simulated": facts.get("cycles_simulated", 0),
                }
            )
            outcome = getattr(engine, "last_outcome", None)
            if outcome is not None:
                facts = self._dispatch_facts(outcome, "close_coverage")
                facts["round"] = round_index
                dispatch_metrics.append(facts)
            job = getattr(engine, "last_job", None)
            if job is not None:
                facts = self._coordinator_facts(job)
                facts["round"] = round_index
                coordinator_metrics.append(facts)
            return sorted(achieved)

        loop = DirectedClosureLoop(
            residue_before.uncovered_transitions,
            plan_round,
            run_round,
            max_rounds=rounds,
        )
        closure_rounds = loop.run()

        closed = tuple(
            sorted(
                set(residue_before.uncovered_transitions) - set(loop.remaining)
            )
        )
        residue_after = CoverageResidue(
            states_total=residue_before.states_total,
            transitions_total=residue_before.transitions_total,
            uncovered_states=tuple(
                s
                for s in residue_before.uncovered_states
                if s not in visited_states
            ),
            uncovered_transitions=loop.remaining,
            samples=residue_before.samples + 1,
        )
        self._residue = residue_after

        had_residue = bool(residue_before.uncovered_transitions)
        status = (
            StageStatus.PASSED if closed or not had_residue else StageStatus.FAILED
        )
        summary = (
            f"directed closure: {len(closed)}/"
            f"{len(residue_before.uncovered_transitions)} residue transitions "
            f"exercised in {len(closure_rounds)} round(s); "
            f"{len(loop.remaining)} remain"
        )
        if loop.remaining and loop.went_dry:
            summary += " (closure went dry: remainder is formal-only at this budget)"
        return StageResult(
            stage="close_coverage",
            status=status,
            summary=summary,
            data={
                "rounds": [
                    {
                        "round": r.index,
                        "goals_planned": r.goals_planned,
                        "edges_closed": len(r.achieved_edges),
                        "residue_before": r.residue_before,
                        "residue_after": r.residue_after,
                    }
                    for r in closure_rounds
                ],
                "run": round_data,
                "closed_transitions": list(closed),
                "achieved": len(closed),
                "went_dry": loop.went_dry,
                "unlowerable_edges": sorted(unlowerable),
                "frontier": use_frontier,
                "frontier_states": sorted(frontier_checkpoints),
                "forked_goals": sum(
                    f.get("forked_goals", 0) for f in fork_facts.values()
                ),
                "cycles_saved": sum(
                    f.get("cycles_saved", 0) for f in fork_facts.values()
                ),
                "cycles_simulated": sum(
                    f.get("cycles_simulated", 0) for f in fork_facts.values()
                ),
                "residue_before": residue_before.to_json(),
                "residue": residue_after.to_json(),
            },
            metrics={
                key: value
                for key, value in (
                    ("dispatch", dispatch_metrics),
                    ("coordinator", coordinator_metrics),
                )
                if value
            },
            payload={
                "loop": loop,
                "residue_before": residue_before,
                "residue": residue_after,
            },
        )

    # -- plan execution ------------------------------------------------------------

    def run_plan(self, plan: VerificationPlan) -> SessionReport:
        """Execute every planned stage in order; failures skip the rest."""
        failed = False
        for call in plan.stages:
            if failed and not plan.continue_on_failure:
                self._skip(call.stage, "skipped: earlier stage failed")
                continue
            if call.stage not in STAGE_NAMES:
                # VerificationPlan validates on construction; this guards
                # hand-built plans that bypassed it
                self._skip(call.stage, f"skipped: unknown stage {call.stage!r}")
                failed = True
                continue
            result = getattr(self, call.stage)(**call.kwargs())
            if result.status in (StageStatus.FAILED, StageStatus.ERROR):
                failed = True
        return self.report()
