"""The unified verification-session API.

One facade over the whole Figure 1 flow: register a design-under-
verification once (a :class:`DUV` bundle -- ASM model, properties,
SystemC factory, scenario binding), then compose typed stages --
``explore()``, ``check_liveness()``, ``translate()``,
``simulate_abv()``, ``regress()`` -- on a :class:`Workbench` session,
or run a declarative :class:`VerificationPlan` end to end.  Stages fan
out through a pluggable :class:`Engine`; every session folds into one
:class:`SessionReport` with a worker-count-invariant digest.

Quickstart::

    from repro.workbench import Workbench, VerificationPlan

    report = Workbench("master_slave").run_plan(VerificationPlan.figure1())
    assert report.ok
    print(report.summary())

The two case studies (``"master_slave"``, ``"pci"``) are discoverable
by name through the :class:`ModelRegistry`; ``python -m repro`` is the
CLI over this API.
"""

from .duv import DUV, CoverageResidue, LivenessCheck
from .engines import (
    ENGINES,
    Engine,
    MultiprocessingEngine,
    SerialEngine,
    ShardedEngine,
    engine_from_name,
    resolve_engine,
)
from .plan import STAGE_NAMES, StageCall, VerificationPlan
from .registry import (
    ModelRegistry,
    UnknownModelError,
    default_registry,
    register_model,
)
from .session import Workbench
from .stages import (
    ModelCheckingReport,
    SessionReport,
    SimulationReport,
    StageResult,
    StageStatus,
)

__all__ = [
    "DUV",
    "CoverageResidue",
    "LivenessCheck",
    "ENGINES",
    "Engine",
    "MultiprocessingEngine",
    "SerialEngine",
    "ShardedEngine",
    "engine_from_name",
    "resolve_engine",
    "STAGE_NAMES",
    "StageCall",
    "VerificationPlan",
    "ModelRegistry",
    "UnknownModelError",
    "default_registry",
    "register_model",
    "Workbench",
    "ModelCheckingReport",
    "SessionReport",
    "SimulationReport",
    "StageResult",
    "StageStatus",
]
