"""Named discovery of registered designs-under-verification.

Case studies register a *builder* (``**params -> DUV``) under a stable
name; the CLI and the workbench resolve designs by that name.  The two
paper case studies are known lazily -- asking for ``"pci"`` imports
``repro.models.pci``, whose ``__init__`` registers its builder -- so
``import repro.workbench`` stays cheap and worker processes that only
ever touch one model never import the other.
"""

from __future__ import annotations

import importlib
from typing import Callable, Dict, List, Optional

from .duv import DUV

DuvBuilder = Callable[..., DUV]

#: name -> module whose import registers the builder
_BUILTIN_MODULES: Dict[str, str] = {
    "master_slave": "repro.models.master_slave",
    "pci": "repro.models.pci",
}


class UnknownModelError(KeyError):
    """Asked for a model name nobody registered."""


class ModelRegistry:
    """name -> DUV builder, with lazy loading of the built-in models."""

    def __init__(self, builtins: Optional[Dict[str, str]] = None):
        self._builders: Dict[str, DuvBuilder] = {}
        self._lazy = dict(_BUILTIN_MODULES if builtins is None else builtins)

    def register(
        self, name: str, builder: DuvBuilder, replace: bool = False
    ) -> None:
        if not replace and name in self._builders:
            raise ValueError(f"model {name!r} is already registered")
        self._builders[name] = builder

    def _load(self, name: str) -> None:
        module = self._lazy.get(name)
        if module is None or name in self._builders:
            return
        importlib.import_module(module)  # registers itself on import
        if name not in self._builders:
            # built-in modules register into the *default* registry;
            # mirror the builder into this instance so non-default
            # registries resolve the built-ins too
            shared = default_registry()._builders.get(name)
            if shared is None:
                raise UnknownModelError(
                    f"module {module!r} did not register model {name!r}"
                )
            self._builders[name] = shared

    def names(self) -> List[str]:
        """Every registered (or registerable) model name, sorted."""
        for name in list(self._lazy):
            try:
                self._load(name)
            except ImportError:
                continue
        return sorted(self._builders)

    def __contains__(self, name: str) -> bool:
        try:
            self._load(name)
        except (ImportError, UnknownModelError):
            return False
        return name in self._builders

    def get(self, name: str, *args, **params) -> DUV:
        """Build the named DUV (builder params pass through, e.g. a
        topology: ``get("pci", 2, 2)`` or ``get("pci", n_masters=2)``)."""
        self._load(name)
        try:
            builder = self._builders[name]
        except KeyError:
            known = ", ".join(self.names()) or "none"
            raise UnknownModelError(
                f"unknown model {name!r} (registered: {known})"
            ) from None
        return builder(*args, **params)

    def describe(self, name: str) -> str:
        """The model's one-line description (builds a default DUV)."""
        return self.get(name).description


_DEFAULT: Optional[ModelRegistry] = None


def default_registry() -> ModelRegistry:
    """The process-wide registry the CLI and models register into."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = ModelRegistry()
    return _DEFAULT


def register_model(name: str, builder: DuvBuilder, replace: bool = True) -> None:
    """Register a builder on the default registry (idempotent on re-import)."""
    default_registry().register(name, builder, replace=replace)
