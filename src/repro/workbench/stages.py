"""Typed stage results and the unified session report.

Every :class:`~.session.Workbench` stage returns a :class:`StageResult`
whose deterministic content (``data``) is digestable; wall-clock and
fan-out facts live in ``metrics`` and never enter a digest.  A
:class:`SessionReport` folds the stage digests, in order, into one
stable session digest -- byte-identical for the same DUV, seeds and
stage options regardless of worker count or machine speed.

The legacy flow-report dataclasses (:class:`ModelCheckingReport`,
:class:`SimulationReport`) now live here; ``repro.flow.pipeline``
re-exports them unchanged.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..explorer.engine import ExplorationResult
from ..explorer.liveness import LivenessResult
from ..explorer.rules import RuleFinding


class StageStatus(enum.Enum):
    """Outcome class of one stage run."""

    PASSED = "passed"
    FAILED = "failed"      # the stage ran; the design did not verify
    ERROR = "error"        # the stage itself blew up
    SKIPPED = "skipped"    # an earlier plan stage failed


def _canonical(data: Any) -> str:
    return json.dumps(data, sort_keys=True, separators=(",", ":"), default=str)


@dataclass
class StageResult:
    """What one stage produced.

    ``data`` is JSON-safe and fully determined by (DUV, seeds, stage
    options); ``metrics`` holds run facts (wall seconds, worker count,
    throughput) that may differ between otherwise identical runs;
    ``payload`` carries the rich in-process objects (exploration
    results, regression reports, rendered sources) for callers that
    compose stages programmatically.
    """

    stage: str
    status: StageStatus
    summary: str = ""
    data: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    payload: Any = None
    error: str = ""
    #: the original exception for ERROR results (never serialized)
    exception: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.status is StageStatus.PASSED

    def digest(self) -> str:
        """Deterministic fingerprint of the stage's verifiable content."""
        body = _canonical(
            {"stage": self.stage, "status": self.status.value, "data": self.data}
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]

    def to_json(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "stage": self.stage,
            "status": self.status.value,
            "ok": self.ok,
            "summary": self.summary,
            "digest": self.digest(),
            "data": self.data,
            "metrics": self.metrics,
        }
        if self.error:
            doc["error"] = self.error
        return doc


@dataclass
class SessionReport:
    """Everything one verification session produced, stage by stage.

    ``observability`` carries run telemetry (the session's metrics
    registry, per-stage fleet ``/metrics`` aggregates) and is strictly
    outside :meth:`digest` -- two sessions that verified identically
    keep identical digests no matter what was traced or measured.
    """

    duv: str
    stages: List[StageResult] = field(default_factory=list)
    #: non-digested telemetry (populated only when observability is on)
    observability: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return bool(self.stages) and all(
            s.status not in (StageStatus.FAILED, StageStatus.ERROR)
            for s in self.stages
        )

    def stage(self, name: str) -> Optional[StageResult]:
        """The most recent result of the named stage (None if never run)."""
        for result in reversed(self.stages):
            if result.stage == name:
                return result
        return None

    def digest(self) -> str:
        """One stable digest over the ordered stage digests."""
        lines = [f"{s.stage}:{s.digest()}" for s in self.stages]
        body = f"duv:{self.duv}\n" + "\n".join(lines)
        return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]

    def summary(self) -> str:
        verdict = "VERIFIED" if self.ok else "FAILED"
        lines = [f"=== workbench session: {self.duv} ==="]
        for result in self.stages:
            status = result.status.value.upper()
            head = f"[{status}] {result.stage}"
            if result.summary:
                head += f": {result.summary.splitlines()[0]}"
            elif result.error:
                head += f": {result.error.splitlines()[0]}"
            lines.append(head)
        lines.append(f"=== overall: {verdict} (digest {self.digest()}) ===")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        doc = {
            "duv": self.duv,
            "ok": self.ok,
            "digest": self.digest(),
            "stages": [s.to_json() for s in self.stages],
        }
        if self.observability:
            doc["observability"] = self.observability
        return doc


# -- legacy flow-report dataclasses (re-exported by repro.flow) -----------------


@dataclass
class ModelCheckingReport:
    """Outcome of the flow's formal leg."""

    exploration: ExplorationResult
    rule_findings: List[RuleFinding] = field(default_factory=list)
    liveness: List[LivenessResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.exploration.ok and all(l.holds for l in self.liveness)

    def summary(self) -> str:
        lines = [self.exploration.summary()]
        lines.extend(l.summary() for l in self.liveness)
        warnings = [f for f in self.rule_findings if f.level == "warning"]
        if warnings:
            lines.append(f"  ({len(warnings)} modelling-rule warnings)")
        return "\n".join(lines)


@dataclass
class SimulationReport:
    """Outcome of the flow's ABV leg."""

    cycles: int
    wall_seconds: float
    harness_summary: str
    failed_assertions: List[str]
    monitor_verdicts: Dict[str, str]

    @property
    def ok(self) -> bool:
        return not self.failed_assertions

    @property
    def delta_ns_per_cycle(self) -> float:
        """The paper's delta: average wall time per simulated cycle."""
        if self.cycles == 0:
            return 0.0
        return self.wall_seconds * 1e9 / self.cycles

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"[{status}] simulation: {self.cycles} cycles in "
            f"{self.wall_seconds:.2f}s (delta = {self.delta_ns_per_cycle:.0f} "
            f"ns/cycle); {self.harness_summary}"
        )
