"""Declarative verification plans.

A :class:`VerificationPlan` is a sequence of named stage invocations
that a :class:`~.session.Workbench` executes in order.  A stage that
FAILs or ERRORs marks the plan failed and every later stage is
recorded as SKIPPED (unless ``continue_on_failure`` is set) -- the
session report always accounts for every planned stage.

:meth:`VerificationPlan.figure1` is the paper's whole flow -- explore
-> liveness -> translate -> ABV simulation -> scenario regression --
and is what ``python -m repro flow`` runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Stage names a plan may reference, in their canonical order.
STAGE_NAMES: Tuple[str, ...] = (
    "analyze",
    "explore",
    "check_liveness",
    "translate",
    "simulate_abv",
    "regress",
    "close_coverage",
)


@dataclass(frozen=True)
class StageCall:
    """One planned stage invocation: a name plus keyword options."""

    stage: str
    options: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, stage: str, **options: Any) -> "StageCall":
        return cls(stage=stage, options=tuple(sorted(options.items())))

    def kwargs(self) -> Dict[str, Any]:
        return dict(self.options)


@dataclass(frozen=True)
class VerificationPlan:
    """An ordered, declarative list of stage calls."""

    name: str
    stages: Tuple[StageCall, ...]
    #: keep running later stages after a FAILED/ERROR stage
    continue_on_failure: bool = False

    def __post_init__(self) -> None:
        unknown = [c.stage for c in self.stages if c.stage not in STAGE_NAMES]
        if unknown:
            raise ValueError(
                f"unknown plan stage(s) {unknown!r}; valid: {', '.join(STAGE_NAMES)}"
            )

    @classmethod
    def figure1(
        cls,
        cycles: int = 2_000,
        scenarios: int = 24,
        scenario_cycles: int = 300,
        workers: Optional[int] = None,
        seed: Optional[int] = None,
        bias_residue: bool = False,
        fail_fast: bool = False,
    ) -> "VerificationPlan":
        """The paper's Figure 1 flow as one preset plan."""
        regress_options: Dict[str, Any] = {
            "scenarios": scenarios,
            "cycles": scenario_cycles,
            "workers": workers,
            "fail_fast": fail_fast,
        }
        if seed is not None:
            regress_options["seed"] = seed
        if bias_residue:
            regress_options["bias"] = True
        simulate_options: Dict[str, Any] = {"cycles": cycles}
        if seed is not None:
            simulate_options["seed"] = seed
        return cls(
            name="figure1",
            stages=(
                StageCall.of("explore"),
                StageCall.of("check_liveness"),
                StageCall.of("translate"),
                StageCall.of("simulate_abv", **simulate_options),
                StageCall.of("regress", **regress_options),
            ),
        )
