"""Shared command-line plumbing for the ``repro`` CLIs.

Both entry points (``python -m repro`` and ``python -m repro.scenarios``)
speak the same dispatch vocabulary -- ``--shards N`` fans a regression
over local subprocess hosts, ``--hosts host:port,...`` over remote
``python -m repro.dispatch.worker`` daemons, ``--shard K/N`` runs one
deterministic shard for manual cross-host dispatch, ``--merge`` folds
per-shard JSON reports back together -- so the argument parsing and
the stdout/stderr hygiene live here once.

The JSON-mode contract: **stdout is the report and nothing else**.
Dispatchers and CI pipe ``--json`` output straight into a parser, so
every diagnostic -- including :class:`DeprecationWarning` from the
``DesignFlow``/``RegressionRunner`` shims -- must land on stderr.
:func:`route_warnings_to_stderr` pins that down regardless of what a
caller (or an embedding process) did to ``warnings.showwarning``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import warnings
from typing import Iterator, List, Sequence, Tuple


def positive_int(text: str) -> int:
    """argparse type: a strictly positive integer."""
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def shard_coordinate(text: str) -> Tuple[int, int]:
    """argparse type for ``--shard K/N``: 1-based shard K of N.

    Returns the zero-based ``(index, of)`` pair the planner uses.
    """
    try:
        k_text, n_text = text.split("/", 1)
        k, n = int(k_text), int(n_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shard must look like K/N (e.g. 2/3), got {text!r}"
        ) from None
    if n < 1 or not 1 <= k <= n:
        raise argparse.ArgumentTypeError(
            f"shard K/N needs 1 <= K <= N, got {text!r}"
        )
    return k - 1, n


def host_list(text: str) -> List:
    """argparse type for ``--hosts``: ``host:port,host:port`` to a pool
    of :class:`~repro.dispatch.HttpHost` worker clients."""
    # imported lazily: the dispatch layer builds on the scenario layer
    from .dispatch import parse_hosts

    try:
        return parse_hosts(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def add_hosts_argument(parser: argparse.ArgumentParser) -> None:
    """The shared ``--hosts`` flag, worded identically on both CLIs."""
    parser.add_argument(
        "--hosts",
        type=host_list,
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="dispatch shards to remote `python -m repro.dispatch.worker` "
        "daemons under the work-stealing schedule (merged digest "
        "identical to a serial run; --shards sizes the queue, "
        "default two shards per host)",
    )


def add_coordinator_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--coordinator`` / ``--token`` fleet flags."""
    parser.add_argument(
        "--coordinator",
        default=None,
        metavar="URL",
        help="submit the whole regression as one job to a "
        "`python -m repro.coordinator` daemon and poll for the merged "
        "report (elastic worker fleet; digest identical to a serial "
        "run; repeat submissions answered from its result store)",
    )
    parser.add_argument(
        "--token",
        default=None,
        metavar="SECRET",
        help="shared fleet bearer secret, presented to --coordinator "
        "and to --hosts worker daemons started with --token",
    )


def reject_hosts_conflict(
    parser: argparse.ArgumentParser, options: argparse.Namespace
) -> None:
    """Shared cross-flag validation for the dispatch selectors.

    ``--hosts`` drives a whole dispatch, so a single-shard
    (``--shard``) or merge-only (``--merge``) invocation has no host
    pool to drive; ``--coordinator`` likewise owns the whole dispatch
    and additionally excludes ``--hosts``/``--shards`` (the
    coordinator's own pool and planner take over).  Both CLIs get the
    same ``parser.error`` behaviour (exit 2 plus usage).  As a side
    effect a ``--token`` is applied to every parsed ``--hosts`` entry,
    since the argparse type callback cannot see sibling flags.
    """
    if getattr(options, "hosts", None) and (
        getattr(options, "shard", None) is not None
        or getattr(options, "merge", None) is not None
    ):
        parser.error("--hosts cannot be combined with --shard or --merge")
    if getattr(options, "coordinator", None) and (
        getattr(options, "hosts", None)
        or getattr(options, "shards", None) is not None
        or getattr(options, "shard", None) is not None
        or getattr(options, "merge", None) is not None
    ):
        parser.error(
            "--coordinator cannot be combined with --hosts, --shards, "
            "--shard or --merge"
        )
    token = getattr(options, "token", None)
    if token:
        for host in getattr(options, "hosts", None) or ():
            host.token = token


def load_shard_reports(paths: Sequence[str]) -> List:
    """Read per-shard ``--json`` report files for a ``--merge``."""
    # imported lazily: scenarios.regression imports this module
    from .scenarios.regression import RegressionReport

    reports = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as handle:
            reports.append(RegressionReport.from_json(json.load(handle)))
    return reports


def emit_regression_report(report, as_json: bool) -> int:
    """Print a RegressionReport to stdout; exit status by its verdict."""
    if as_json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared ``--trace`` / ``--metrics`` flags (both CLIs).

    Neither flag may change any report digest; traces land in the named
    file and the metrics summary on stderr, so ``--json`` stdout stays
    a single parseable report (see ``docs/observability.md``).
    """
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="record spans (delta-cycle to dispatch) and write them to "
        "FILE as JSON lines; fold with tools/trace_report.py",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="collect counters/histograms and print a summary to stderr "
        "(and into the session report's observability section)",
    )


@contextlib.contextmanager
def observability_scope(options: argparse.Namespace) -> Iterator[None]:
    """Enable tracing/metrics for one CLI invocation, then export.

    On exit the trace file is written (with a stderr note) and the
    metrics summary rendered to stderr; the global observability state
    is always restored to disabled so in-process callers (tests, the
    workbench embedding a CLI) never leak collectors between runs.
    No-op when neither ``--trace`` nor ``--metrics`` was given.
    """
    # imported lazily: obs is dependency-free but keep CLI import light
    from .obs import runtime
    from .obs.metrics import render_metrics

    trace_path = getattr(options, "trace", None)
    want_metrics = getattr(options, "metrics", False)
    if not trace_path and not want_metrics:
        yield
        return
    if trace_path:
        runtime.enable_tracing()
    if want_metrics:
        runtime.enable_metrics()
    try:
        yield
        if trace_path:
            count = runtime.OBS.tracer.dump(trace_path)
            print(
                f"trace: {count} spans written to {trace_path}",
                file=sys.stderr,
            )
        if want_metrics:
            rendered = render_metrics(runtime.OBS.metrics.to_json())
            print("=== metrics ===", file=sys.stderr)
            if rendered:
                print(rendered, file=sys.stderr)
    finally:
        runtime.disable()


def route_warnings_to_stderr() -> None:
    """Force every ``warnings.warn`` to stderr for the process lifetime.

    Python's default ``showwarning`` already targets stderr, but it
    honours whatever ``file=`` it is handed and third-party code (or a
    previous in-process CLI invocation under test) may have rebound it.
    CLI mains call this before producing output so a ``--json`` stream
    stays parseable end to end.
    """

    def _show(message, category, filename, lineno, file=None, line=None):
        sys.stderr.write(
            warnings.formatwarning(message, category, filename, lineno, line)
        )

    warnings.showwarning = _show
