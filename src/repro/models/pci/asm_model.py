"""The PCI bus as an ASM model program (rules R1-R4 compliant).

The model follows the paper's modeling style (Section 2.2.1): a fixed
list of machine instances (rule R1), an init action that checks the
instantiation (rule R2, ``PciSystem.init``), ``require`` preconditions
on every action (rule R3), and restricted argument domains (rule R4).

:class:`PciArbiter` transcribes Figure 4: the guarded
``update_m_req`` action selects ``min id | id in Masters_Range where
MASTERS(id).m_req = true`` under the precondition ``SystemInit = true
and me.m_gnt = false and me.m_req = false``.  *Hidden arbitration* --
"bus arbitration can take place while another master is still in
control of the bus" -- falls out naturally: neither ``update_m_req``
nor ``grant`` requires the bus to be idle.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...asm.domains import Domain
from ...asm.machine import (
    ActionCall,
    AsmMachine,
    AsmModel,
    StateVar,
    action,
    choose_min,
    require,
)
from .protocol import (
    MAX_BURST_LENGTH,
    MasterState,
    TargetResponse,
    TargetState,
)

#: Shared-global key for Figure 4's ``SystemInit``.
SYSTEM_INIT = "system_init"


class PciSystem(AsmMachine):
    """Rule R2's init machine: "the firstly executed method in the design
    must verify that all the objects from the class domains were
    correctly instantiated"."""

    m_initialized = StateVar(False)

    @action
    def init(self):
        require(not self.m_initialized, "already initialized")
        model = self.model
        masters = model.machines_of(PciMaster)
        targets = model.machines_of(PciTarget)
        arbiters = model.machines_of(PciArbiter)
        buses = model.machines_of(PciBus)
        require(masters, "no PCI masters instantiated")
        require(targets, "no PCI targets instantiated")
        require(len(arbiters) == 1, "exactly one arbiter required")
        require(len(buses) == 1, "exactly one bus required")
        self.m_initialized = True
        model.set_global(SYSTEM_INIT, True)


class PciBus(AsmMachine):
    """Shared bus lines (the AD/FRAME#/IRDY# group at transaction level)."""

    m_frame = StateVar(False, doc="FRAME#: a transaction is in progress")
    m_irdy = StateVar(False, doc="IRDY#: initiator ready to move data")
    m_owner = StateVar(-1, doc="index of the transaction's initiator")
    m_addr = StateVar(-1, doc="decoded target index of the current address")


class PciMaster(AsmMachine):
    """A PCI initiator."""

    m_state = StateVar(MasterState.IDLE)
    m_req = StateVar(False, doc="REQ# (dedicated line to the arbiter)")
    m_target = StateVar(-1, doc="decoded target of the running transaction")
    m_words_left = StateVar(0, doc="data phases remaining in the burst")
    m_retries = StateVar(0, state_variable=False, doc="retry statistics")

    def __init__(self, index: int, name: str | None = None, model=None):
        super().__init__(name=name or f"master{index}", model=model)
        self.index = index

    # -- REQ# ------------------------------------------------------------------

    @action
    def request(self):
        """Assert REQ# to the arbiter."""
        require(self.model.get_global(SYSTEM_INIT), "system not initialized")
        require(self.m_state is MasterState.IDLE)
        self.m_req = True
        self.m_state = MasterState.REQUESTING

    # -- FRAME# ------------------------------------------------------------------

    @action
    def start_transaction(self, target: int, burst: int):
        """Address phase: drive FRAME# and the address once granted and
        the bus is idle (GNT# + idle check, PCI protocol)."""
        require(self.model.get_global(SYSTEM_INIT), "system not initialized")
        require(self.m_state is MasterState.REQUESTING)
        arbiter = self.model.machines_of(PciArbiter)[0]
        require(
            arbiter.m_gnt and arbiter.m_ActiveMaster == self.index,
            "GNT# not asserted for this master",
        )
        bus = self.model.machines_of(PciBus)[0]
        require(not bus.m_frame and bus.m_owner == -1, "bus busy")
        targets = self.model.machines_of(PciTarget)
        require(0 <= target < len(targets), "unmapped address")
        bus.m_frame = True
        bus.m_owner = self.index
        bus.m_addr = target
        self.m_req = False
        self.m_target = target
        self.m_words_left = burst
        self.m_state = MasterState.ADDR_PHASE
        # FRAME# assertion consumes the grant: the central arbiter
        # deasserts GNT# once the transaction starts, so a master
        # cannot reuse a stale grant for back-to-back transactions
        # (found by the FSM liveness check: the stale grant starved
        # every other master).
        arbiter.m_gnt = False
        arbiter.m_req = False
        arbiter.m_ActiveMaster = -1

    @action
    def assert_irdy(self):
        """Enter the data phase: IRDY# asserted after the address phase."""
        require(self.m_state is MasterState.ADDR_PHASE)
        bus = self.model.machines_of(PciBus)[0]
        require(bus.m_owner == self.index)
        bus.m_irdy = True
        self.m_state = MasterState.DATA_PHASE

    @action
    def data_phase(self):
        """Move one word (requires the target's TRDY#)."""
        require(self.m_state is MasterState.DATA_PHASE)
        require(self.m_words_left > 0)
        bus = self.model.machines_of(PciBus)[0]
        require(bus.m_owner == self.index and bus.m_irdy)
        target = self.model.machines_of(PciTarget)[self.m_target]
        require(target.m_state is TargetState.TRANSFER, "TRDY# not asserted")
        remaining = self.m_words_left - 1
        self.m_words_left = remaining
        if remaining == 0:
            # Last data phase: FRAME# deasserts (PCI signals the final
            # word by dropping FRAME# while IRDY# stays).
            bus.m_frame = False
            self.m_state = MasterState.TURNAROUND

    @action
    def finish(self):
        """Turnaround: release IRDY# and the bus."""
        require(self.m_state is MasterState.TURNAROUND)
        bus = self.model.machines_of(PciBus)[0]
        require(bus.m_owner == self.index)
        bus.m_irdy = False
        bus.m_owner = -1
        bus.m_addr = -1
        self.m_target = -1
        self.m_state = MasterState.IDLE

    @action(group="coarse")
    def run_data_phases(self):
        """Coarse-granularity action: IRDY#, all data phases and the
        release fused into one atomic step.

        "Working carefully the domains and the set of actions is the
        very critical path in the FSM generation process" (Section
        2.2.1) -- restricting exploration to the coarse action set
        reproduces the paper's FSM sizes; the fine-grained actions
        above model the same transaction cycle-by-cycle.
        """
        require(self.m_state is MasterState.ADDR_PHASE)
        bus = self.model.machines_of(PciBus)[0]
        require(bus.m_owner == self.index)
        target = self.model.machines_of(PciTarget)[self.m_target]
        require(target.m_state is TargetState.TRANSFER, "TRDY# not asserted")
        bus.m_irdy = False
        bus.m_frame = False
        bus.m_owner = -1
        bus.m_addr = -1
        self.m_words_left = 0
        self.m_target = -1
        self.m_state = MasterState.IDLE

    @action
    def handle_stop(self):
        """Target asserted STOP#: abort and retry later ("PCI ... allows
        stopping transactions")."""
        require(self.m_state in (MasterState.ADDR_PHASE, MasterState.DATA_PHASE))
        bus = self.model.machines_of(PciBus)[0]
        require(bus.m_owner == self.index)
        targets = self.model.machines_of(PciTarget)
        require(self.m_target >= 0)
        target = targets[self.m_target]
        require(target.m_state is TargetState.STOPPED, "no STOP# pending")
        bus.m_frame = False
        bus.m_irdy = False
        bus.m_owner = -1
        bus.m_addr = -1
        # The target stays in STOPPED until it deasserts STOP# itself
        # (clear_stop) -- the initiator only backs off.
        self.m_target = -1
        self.m_words_left = 0
        self.m_retries = self.m_retries + 1
        self.m_state = MasterState.IDLE


class PciTarget(AsmMachine):
    """A PCI target (bus slave)."""

    m_state = StateVar(TargetState.IDLE)
    m_devsel = StateVar(False, doc="DEVSEL#: target claimed the address")
    m_trdy = StateVar(False, doc="TRDY#: target ready to move data")
    m_stop = StateVar(False, doc="STOP#: target requests transaction stop")

    def __init__(self, index: int, name: str | None = None, model=None):
        super().__init__(name=name or f"target{index}", model=model)
        self.index = index

    @action
    def claim(self):
        """Positive address decode: assert DEVSEL#."""
        require(self.model.get_global(SYSTEM_INIT), "system not initialized")
        require(self.m_state is TargetState.IDLE)
        bus = self.model.machines_of(PciBus)[0]
        require(bus.m_frame and bus.m_addr == self.index, "address not ours")
        self.m_devsel = True
        self.m_state = TargetState.SELECTED

    @action
    def ready(self):
        """Assert TRDY#: data can move."""
        require(self.m_state is TargetState.SELECTED)
        self.m_trdy = True
        self.m_state = TargetState.TRANSFER

    @action(group="coarse")
    def respond(self):
        """Coarse-granularity action: DEVSEL# and TRDY# in one step."""
        require(self.model.get_global(SYSTEM_INIT), "system not initialized")
        require(self.m_state is TargetState.IDLE)
        bus = self.model.machines_of(PciBus)[0]
        require(bus.m_frame and bus.m_addr == self.index, "address not ours")
        self.m_devsel = True
        self.m_trdy = True
        self.m_state = TargetState.TRANSFER

    @action
    def stop_transaction(self):
        """Assert STOP# (retry/disconnect)."""
        require(self.m_state in (TargetState.SELECTED, TargetState.TRANSFER))
        self.m_devsel = False
        self.m_trdy = False
        self.m_stop = True
        self.m_state = TargetState.STOPPED

    @action
    def clear_stop(self):
        """Deassert STOP# once the initiator backed off."""
        require(self.m_state is TargetState.STOPPED)
        bus = self.model.machines_of(PciBus)[0]
        require(not bus.m_frame, "initiator still driving FRAME#")
        self.m_stop = False
        self.m_state = TargetState.IDLE

    @action
    def complete(self):
        """Transaction done: release DEVSEL#/TRDY#."""
        require(self.m_state is TargetState.TRANSFER)
        bus = self.model.machines_of(PciBus)[0]
        require(not bus.m_frame and bus.m_owner == -1, "transaction still running")
        self.m_devsel = False
        self.m_trdy = False
        self.m_state = TargetState.IDLE


class PciArbiter(AsmMachine):
    """Figure 4's ``PCI_Arbiter``, completed with grant/reclaim."""

    m_ActiveMaster = StateVar(-1)
    m_req = StateVar(False)
    m_gnt = StateVar(False)

    @action
    def update_m_req(self):
        """Figure 4: latch the lowest-id requesting master.

        ``require (SystemInit = true) and me.m_gnt = false and
        me.m_req = false``; then ``me.m_ActiveMaster := min id | id in
        Masters_Range where (MASTERS(id).m_req = true)``.
        """
        require(self.model.get_global(SYSTEM_INIT), "SystemInit = false")
        require(self.m_gnt is False and self.m_req is False)
        masters = self.model.machines_of(PciMaster)
        masters_range = range(len(masters))
        require(
            any(masters[i].m_req for i in masters_range), "no REQ# pending"
        )
        self.m_ActiveMaster = choose_min(
            masters_range, where=lambda i: masters[i].m_req
        )
        self.m_req = True

    @action
    def grant(self):
        """Assert GNT# to the latched master.  No bus-idle requirement:
        hidden arbitration overlaps the running transaction."""
        require(self.m_req and not self.m_gnt)
        masters = self.model.machines_of(PciMaster)
        # The latched master may have aborted (STOP#) meanwhile.
        require(
            0 <= self.m_ActiveMaster < len(masters)
            and masters[self.m_ActiveMaster].m_req,
            "latched master no longer requesting",
        )
        self.m_gnt = True

    @action
    def reclaim(self):
        """Drop GNT# once the granted master owns the bus (its REQ# fell)."""
        require(self.m_gnt)
        masters = self.model.machines_of(PciMaster)
        require(
            not (0 <= self.m_ActiveMaster < len(masters))
            or not masters[self.m_ActiveMaster].m_req,
            "granted master still requesting",
        )
        self.m_ActiveMaster = -1
        self.m_req = False
        self.m_gnt = False


def build_pci_model(
    n_masters: int,
    n_targets: int,
    max_burst: int = MAX_BURST_LENGTH,
) -> AsmModel:
    """Assemble and seal a PCI ASM model (rule R1's instance list)."""
    model = AsmModel(f"pci_{n_masters}m_{n_targets}s")
    PciSystem(model=model, name="system")
    PciBus(model=model, name="bus")
    for index in range(n_masters):
        PciMaster(index, model=model)
    for index in range(n_targets):
        PciTarget(index, model=model)
    PciArbiter(model=model, name="arbiter")
    model.seal()
    return model


def pci_domains(n_targets: int, max_burst: int = MAX_BURST_LENGTH) -> Dict[str, Domain]:
    """Rule R4: the argument domains for exploration."""
    return {
        "start_transaction.target": Domain.int_range("targets", 0, n_targets - 1),
        "start_transaction.burst": Domain.int_range("burst", 1, max_burst),
    }


def pci_init_call() -> str:
    """The rule-R2 init action, in ``machine.action`` form."""
    return "system.init"


def pci_coarse_actions(n_masters: int, n_targets: int) -> list[str]:
    """The paper-scale action whitelist (transaction-level granularity).

    Restricting exploration to this set -- the paper's "set of actions"
    lever -- makes a whole data transfer one transition and yields FSM
    sizes in Table 1's range while preserving arbitration/transaction
    interleavings (requests, hidden arbitration, target stops).
    """
    actions = ["system.init"]
    for index in range(n_masters):
        actions += [
            f"master{index}.request",
            f"master{index}.start_transaction",
            f"master{index}.run_data_phases",
            f"master{index}.handle_stop",
        ]
    for index in range(n_targets):
        actions += [
            f"target{index}.respond",
            f"target{index}.stop_transaction",
            f"target{index}.clear_stop",
            f"target{index}.complete",
        ]
    actions += ["arbiter.update_m_req", "arbiter.grant", "arbiter.reclaim"]
    return actions
