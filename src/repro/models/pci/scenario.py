"""Scenario driving for the PCI bus.

Sequence-driven stimulus and scoreboard binding for the Table 1 model:

* :class:`PciSequenceMaster` -- an initiator executing
  :class:`~repro.scenarios.sequences.SequenceItem` stimulus through
  the full REQ#/GNT#/FRAME#/IRDY# protocol, including STOP# back-off
  and retry.  The payload the item carries is what the master reports
  having moved, so the scoreboard can check payload integrity end to
  end; a ``corrupt-read`` fault models a data-path defect between the
  bus and the master's completion record.
* :class:`PciScenarioSystem` -- clock + arbiter + sequence masters +
  the unmodified :class:`~.systemc_model.PciTargetModule` targets,
  exposing the canonical property namespace for assertion monitors.
* :class:`PciReferenceAdapter` -- replays each completed transaction
  on the verified PCI ASM model: request, hidden arbitration
  (update_m_req/grant), address phase, target response, all data
  phases, and the turnaround.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ...scenarios.random_ import ScenarioRng
from ...scenarios.scoreboard import (
    DivergenceKind,
    FaultPlan,
    Mismatch,
    ReferenceAdapter,
    ScenarioSystem,
)
from ...scenarios.sequences import Sequence, SequenceItem, StimulusContext
from ...sysc.bus import BusMode, BusStatus, Transaction, TxnIdAllocator
from ...sysc.clock import Clock
from ...sysc.kernel import Simulator
from ...sysc.module import Module
from ...sysc.signal import Signal
from .asm_model import build_pci_model
from .protocol import MAX_BURST_LENGTH, PCI_CLOCK_PERIOD_PS, PciCommand
from .systemc_model import PciArbiterModule, PciSignals, PciTargetModule


class PciSequenceMaster(Module):
    """A PCI initiator executing a sequence of items."""

    def __init__(
        self,
        index: int,
        sim: Simulator,
        clock: Clock,
        wires: PciSignals,
        n_targets: int,
        items: Iterator[SequenceItem],
        txn_ids: TxnIdAllocator,
        fault: Optional[FaultPlan] = None,
    ):
        super().__init__(f"master{index}", sim)
        self.index = index
        self.clock = clock
        self._posedge = clock.posedge_event
        self.wires = wires
        self.n_targets = n_targets
        self.items = items
        self.txn_ids = txn_ids
        self.fault = fault
        self.records: List[Tuple[Transaction, SequenceItem]] = []
        self.issued = 0
        self.completed = 0
        self.reads_completed = 0
        self.in_flight = False
        self.done = False
        self.retries = 0
        self.words_moved = 0
        self.data_flag = Signal(False, f"master{index}_data", sim)
        self.idle_flag = Signal(True, f"master{index}_idle", sim)
        self.thread(self.run)

    def _next_item(self) -> Optional[SequenceItem]:
        try:
            return next(self.items)
        except StopIteration:
            return None

    def run(self):
        while True:
            item = self._next_item()
            if item is None:
                self.done = True
                return  # sequence exhausted: the initiator parks
            for _ in range(item.idle):
                yield self._posedge
            target = item.target % self.n_targets
            burst = max(1, min(item.burst, MAX_BURST_LENGTH))
            command = (
                PciCommand.MEM_WRITE if item.is_write else PciCommand.MEM_READ
            )
            payload = tuple(item.payload[:burst])
            while len(payload) < burst:
                payload += (0,)
            transaction = Transaction(
                master=self.name,
                address=0x1000 * (target + 1) + item.address_offset,
                is_write=item.is_write,
                data=payload,
                mode=BusMode.BLOCKING,
                start_cycle=self.clock.cycle_count,
                txn_id=self.txn_ids.allocate(),
            )
            self.issued += 1
            self.in_flight = True
            completed = False
            while not completed:
                completed = yield from self._attempt(target, burst, command)
                if not completed:
                    self.retries += 1
                    yield self._posedge
                    yield self._posedge
            transaction.end_cycle = self.clock.cycle_count
            transaction.status = BusStatus.OK
            self.completed += 1
            if not item.is_write:
                self.reads_completed += 1
            self.in_flight = False
            # corrupt-read matches the MS fault contract: the data path
            # flips a bit on reads from the nth one onward
            corrupt = (
                not item.is_write
                and self.fault is not None
                and self.fault.kind == "corrupt-read"
                and self.fault.unit == self.index
                and self.reads_completed >= self.fault.nth
            )
            if corrupt:
                transaction.data = (payload[0] ^ 0x1,) + payload[1:]
            dropped = (
                self.fault is not None
                and self.fault.kind == "drop"
                and self.fault.unit == self.index
                and self.completed == self.fault.nth
            )
            if not dropped:
                self.records.append((transaction, item))

    def _attempt(self, target: int, burst: int, command: PciCommand):
        """One transaction attempt; returns False when STOP#-ed.

        Same signal discipline as the free-running
        :class:`~.systemc_model.PciMasterModule`, so the Table 1
        property suite binds to scenario runs unchanged.
        """
        wires = self.wires
        posedge = self._posedge
        frame = wires.frame
        owner = wires.owner
        gnt = wires.gnt[self.index]
        stop = wires.stop[target]
        trdy = wires.trdy[target]
        self.idle_flag.write(False)
        wires.req[self.index].write(True)
        while not gnt.read():
            yield posedge
        while frame.read() or owner.read() != -1 or stop.read():
            yield posedge
        wires.req[self.index].write(False)
        frame.write(True)
        owner.write(self.index)
        wires.addr.write(target)
        wires.command.write(command)
        yield posedge
        wires.irdy.write(True)
        self.data_flag.write(True)
        words_left = burst
        cycles_waited = 0
        while words_left > 0:
            yield posedge
            if stop.read():
                yield from self._release()
                return False
            if trdy.read():
                words_left -= 1
                self.words_moved += 1
                cycles_waited = 0
                if words_left == 0:
                    frame.write(False)
            else:
                cycles_waited += 1
                if cycles_waited > 16:  # defensive: no livelock
                    yield from self._release()
                    return False
        yield posedge
        yield from self._release()
        return True

    def _release(self):
        wires = self.wires
        wires.frame.write(False)
        wires.irdy.write(False)
        wires.owner.write(-1)
        wires.addr.write(-1)
        self.data_flag.write(False)
        self.idle_flag.write(True)
        yield self._posedge


class PciScenarioSystem(ScenarioSystem):
    """Top level for one seeded PCI scenario."""

    def __init__(
        self,
        n_masters: int,
        n_targets: int,
        sequence: Sequence,
        seed: int,
        fault: Optional[FaultPlan] = None,
        clock_period: int = PCI_CLOCK_PERIOD_PS,
        stop_probability: float = 0.05,
        address_span: int = 16,
    ):
        self.n_masters = n_masters
        self.n_targets = n_targets
        self.fault = fault
        self.simulator = Simulator(
            f"pci_scenario_{n_masters}m_{n_targets}s_seed{seed}"
        )
        self.clock = Clock("pci_clk", clock_period, self.simulator)
        self.wires = PciSignals(self.simulator, n_masters, n_targets)
        self.txn_ids = TxnIdAllocator()
        self.arbiter = PciArbiterModule(
            "arbiter", self.simulator, self.clock, self.wires
        )
        root = ScenarioRng(seed, "pci")
        ctx = StimulusContext(
            n_targets=n_targets,
            min_burst=1,
            max_burst=MAX_BURST_LENGTH,
            address_span=address_span,
        )
        self.masters = [
            PciSequenceMaster(
                i, self.simulator, self.clock, self.wires, n_targets,
                sequence.for_unit(i).items(root.derive(f"master{i}"), ctx),
                self.txn_ids, fault=fault,
            )
            for i in range(n_masters)
        ]
        self.targets = [
            PciTargetModule(
                j,
                self.simulator,
                self.clock,
                self.wires,
                seed + 100 + j,
                decode_latency=1 + (j % 3),
                stop_probability=stop_probability,
            )
            for j in range(n_targets)
        ]

    def letter(self) -> Dict[str, Any]:
        wires = self.wires
        addressed = wires.addr.read()
        letter: Dict[str, Any] = {
            "frame": wires.frame.read(),
            "irdy": wires.irdy.read(),
            "bus_idle": (not wires.frame.read()) and wires.owner.read() == -1,
            "devsel": any(s.read() for s in wires.devsel),
            "trdy": any(s.read() for s in wires.trdy),
            "stop_any": any(s.read() for s in wires.stop),
            "stop_addressed": bool(
                0 <= addressed < self.n_targets
                and wires.stop[addressed].read()
            ),
        }
        for i in range(self.n_masters):
            letter[f"req{i}"] = wires.req[i].read()
            letter[f"gnt{i}"] = wires.gnt[i].read()
            letter[f"owner{i}"] = wires.owner.read() == i
            letter[f"master{i}_idle"] = self.masters[i].idle_flag.read()
            letter[f"master{i}_data"] = self.masters[i].data_flag.read()
        for j in range(self.n_targets):
            letter[f"devsel{j}"] = wires.devsel[j].read()
            letter[f"trdy{j}"] = wires.trdy[j].read()
            letter[f"stop{j}"] = wires.stop[j].read()
        return letter

    # -- scoreboard plumbing (generic parts on ScenarioSystem) --------------

    def reference_adapter(self) -> "PciReferenceAdapter":
        return PciReferenceAdapter(self.n_masters, self.n_targets)

    def coverage_context(self):
        # PCI maps target t at page t+1 (protocol.target_address)
        ctx = StimulusContext(
            n_targets=self.n_targets, min_burst=1, max_burst=MAX_BURST_LENGTH
        )
        return ctx, 0x1000, 1

    def fsm_events(self) -> List[Tuple[str, str, tuple]]:
        """The run as coarse ASM events, one full transaction script per
        completed record: request (overlap-aware, see
        :meth:`ScenarioSystem._serialized_fsm_events` for the soundness
        rule -- ``update_m_req``'s lowest-index latch matches it),
        hidden arbitration, the address phase, the target's fused
        response, all data phases fused, and the target release.
        STOP#-ed attempts leave no completed record and therefore no
        events -- conservative, never false credit.
        """

        def transaction_events(txn, owner):
            target = txn.address // 0x1000 - 1
            return [
                ("arbiter", "update_m_req", ()),
                ("arbiter", "grant", ()),
                (
                    f"master{owner}",
                    "start_transaction",
                    (target, txn.burst_length),
                ),
                (f"target{target}", "respond", ()),
                (f"master{owner}", "run_data_phases", ()),
                (f"target{target}", "complete", ()),
            ]

        return self._serialized_fsm_events(transaction_events)


def lower_path_to_goals(
    calls, n_masters: int, n_targets: int
) -> Optional[List["TransactionGoal"]]:
    """Lower a planned coarse-action PCI FSM path to directed goals.

    ``master{i}.start_transaction(target, burst)`` names its initiator
    explicitly, so attribution is direct; arbitration and target
    bookkeeping actions (``update_m_req``/``grant``/``reclaim``,
    ``respond``/``complete``, ``run_data_phases``) are implied by the
    goal and skipped.  Paths that need target-initiated behaviour
    (``stop_transaction``/``handle_stop``/``clear_stop``) are not
    expressible as transaction goals -> None.  Transfer direction is
    not part of the PCI FSM vocabulary, so goals alternate write/read
    deterministically.
    """
    from ...scenarios.directed import TransactionGoal

    goals: List[TransactionGoal] = []
    pending: List[int] = []
    request_idle: Dict[int, int] = {}
    requests_seen = 0
    for call in calls:
        if call.machine.startswith("master"):
            master = int(call.machine[len("master"):])
            if master >= n_masters:
                return None
            if call.action == "request":
                if master in pending:
                    return None
                pending.append(master)
                # ascending same-cycle requests resolve in index order;
                # a later position only needs a later posting
                request_idle[master] = (
                    0 if pending == sorted(pending) else requests_seen
                )
                requests_seen += 1
            elif call.action == "start_transaction":
                target, burst = call.args
                if master not in pending or not 0 <= target < n_targets:
                    return None
                pending.remove(master)
                goals.append(
                    TransactionGoal(
                        unit=master,
                        target=target,
                        is_write=len(goals) % 2 == 0,
                        burst=max(1, min(burst, MAX_BURST_LENGTH)),
                        idle=request_idle.pop(master, 0),
                    )
                )
            elif call.action == "run_data_phases":
                continue
            else:
                return None  # handle_stop & fine-grained actions
        elif call.machine == "arbiter" and call.action in (
            "update_m_req",
            "grant",
            "reclaim",
        ):
            continue
        elif call.machine.startswith("target") and call.action in (
            "respond",
            "complete",
        ):
            continue
        elif call.machine == "system":
            continue
        else:
            return None
    for master in pending:
        goals.append(
            TransactionGoal(
                unit=master,
                target=0,
                is_write=False,
                burst=1,
                idle=request_idle.get(master, 0),
            )
        )
    return goals


class PciReferenceAdapter(ReferenceAdapter):
    """ASM-lockstep golden reference for the PCI bus."""

    def __init__(self, n_masters: int, n_targets: int):
        self.n_masters = n_masters
        self.n_targets = n_targets
        self._scripts: Dict[tuple, list] = {}

    def build_reference(self):
        return build_pci_model(self.n_masters, self.n_targets)

    def observe(self, txn: Transaction, item: SequenceItem) -> Iterable[Mismatch]:
        assert self.lockstep is not None, "begin() not called"
        master_index = int(txn.master.replace("master", ""))
        target_index = txn.address // 0x1000 - 1
        burst = txn.burst_length
        # replay scripts depend only on (master, target, burst) --
        # memoize so the hot check loop skips rebuilding them
        script_key = (master_index, target_index, burst)
        script = self._scripts.get(script_key)
        if script is None:
            master = f"master{master_index}"
            target = f"target{target_index}"
            script = (
                [
                    (master, "request", ()),
                    ("arbiter", "update_m_req", ()),
                    ("arbiter", "grant", ()),
                    (master, "start_transaction", (target_index, burst)),
                    (target, "respond", ()),
                    (master, "assert_irdy", ()),
                ]
                + [(master, "data_phase", ())] * burst
                + [
                    (master, "finish", ()),
                    (target, "complete", ()),
                ]
            )
            self._scripts[script_key] = script
        for machine, act, args in script:
            error = self.lockstep.call(machine, act, *args)
            if error is not None:
                state = self.lockstep.state_dump()
                self._reset_reference()
                yield Mismatch(
                    kind=DivergenceKind.PROTOCOL,
                    master=txn.master,
                    txn_id=txn.txn_id,
                    detail=f"ASM reference rejected replay of {txn.describe()}",
                    expected="action enabled in the verified design",
                    observed=error,
                    reference_state=state,
                )
                return
        expected = tuple(item.payload[:burst])
        while len(expected) < burst:
            expected += (0,)
        if txn.data != expected:
            yield Mismatch(
                kind=DivergenceKind.DATA,
                master=txn.master,
                txn_id=txn.txn_id,
                detail=(
                    f"reported payload diverged from the driven stimulus "
                    f"({txn.describe()})"
                ),
                expected=repr(expected),
                observed=repr(txn.data),
                reference_state=self.lockstep.state_dump(),
            )

    # finish() inherited: the default dropped-transaction accounting
    # is the whole end-of-run story for PCI (no target-side memory)
