"""Scenario driving for the PCI bus.

Sequence-driven stimulus and scoreboard binding for the Table 1 model:

* :class:`PciSequenceMaster` -- an initiator executing
  :class:`~repro.scenarios.sequences.SequenceItem` stimulus through
  the full REQ#/GNT#/FRAME#/IRDY# protocol, including STOP# back-off
  and retry.  The payload the item carries is what the master reports
  having moved, so the scoreboard can check payload integrity end to
  end; a ``corrupt-read`` fault models a data-path defect between the
  bus and the master's completion record.
* :class:`PciScenarioSystem` -- clock + arbiter + sequence masters +
  the unmodified :class:`~.systemc_model.PciTargetModule` targets,
  exposing the canonical property namespace for assertion monitors.
* :class:`PciReferenceAdapter` -- replays each completed transaction
  on the verified PCI ASM model: request, hidden arbitration
  (update_m_req/grant), address phase, target response, all data
  phases, and the turnaround.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from ...scenarios.random_ import ScenarioRng
from ...scenarios.scoreboard import (
    DivergenceKind,
    FaultPlan,
    Mismatch,
    ReferenceAdapter,
    ScenarioSystem,
)
from ...scenarios.sequences import Sequence, SequenceItem, StimulusContext
from ...sysc.bus import BusMode, BusStatus, Transaction, TxnIdAllocator
from ...sysc.clock import Clock
from ...sysc.kernel import Simulator
from ...sysc.module import Module
from ...sysc.signal import Signal
from .asm_model import build_pci_model
from .protocol import MAX_BURST_LENGTH, PCI_CLOCK_PERIOD_PS, PciCommand
from .systemc_model import PciArbiterModule, PciSignals, PciTargetModule


class PciSequenceMaster(Module):
    """A PCI initiator executing a sequence of items.

    Like :class:`~repro.models.master_slave.scenario.MsSequenceMaster`
    the protocol is an explicit phase machine rather than a nest of
    loops inside a generator: each posedge wake dispatches handlers
    keyed by ``self._phase`` until one consumes the cycle, so the whole
    suspended protocol (including mid-burst data phases and STOP#
    back-off) lives in attributes and can be snapshotted/restored via
    :meth:`checkpoint_state` / :meth:`restore_state`.
    """

    def __init__(
        self,
        index: int,
        sim: Simulator,
        clock: Clock,
        wires: PciSignals,
        n_targets: int,
        items: Iterator[SequenceItem],
        txn_ids: TxnIdAllocator,
        fault: Optional[FaultPlan] = None,
    ):
        super().__init__(f"master{index}", sim)
        self.index = index
        self.clock = clock
        self._posedge = clock.posedge_event
        self.wires = wires
        self.n_targets = n_targets
        self.items = items
        self.txn_ids = txn_ids
        self.fault = fault
        self.records: List[Tuple[Transaction, SequenceItem]] = []
        self.issued = 0
        self.completed = 0
        self.reads_completed = 0
        self.in_flight = False
        self.done = False
        self.retries = 0
        self.words_moved = 0
        self.data_flag = Signal(False, f"master{index}_data", sim)
        self.idle_flag = Signal(True, f"master{index}_idle", sim)
        # phase-machine registers (the whole suspended-protocol state)
        self._phase = "fetch"
        self._item: Optional[SequenceItem] = None
        self._txn: Optional[Transaction] = None
        self._idle_left = 0
        self._target = 0
        self._burst = 0
        self._payload: Tuple[int, ...] = ()
        self._words_left = 0
        self._waited = 0
        self._backoff_left = 0
        self.items_consumed = 0
        self.thread(self.run)

    def _next_item(self) -> Optional[SequenceItem]:
        try:
            item = next(self.items)
        except StopIteration:
            return None
        self.items_consumed += 1
        return item

    def rebind_items(self, items: Iterator[SequenceItem]) -> None:
        """Graft a fresh item stream onto a (possibly exhausted) master.

        Checkpoint forks call this after restore: records and counters
        stay (the scoreboard and FSM replay still see the whole run),
        only the stimulus source is swapped.  A master parked in the
        ``done`` phase wakes back into ``fetch`` on its next posedge.
        """
        self.items = items
        self.items_consumed = 0
        if self._phase == "done":
            self.done = False
            self._phase = "fetch"

    def run(self):
        self._dispatch()
        posedge = self._posedge
        while True:
            yield posedge
            self._dispatch()

    def _dispatch(self) -> None:
        """Run phase handlers until one consumes the wake."""
        handlers = self._PHASES
        while handlers[self._phase](self) is None:
            pass

    def _phase_fetch(self) -> Optional[bool]:
        item = self._next_item()
        if item is None:
            self.done = True
            self._phase = "done"
            return None
        self._item = item
        self._idle_left = item.idle
        self._phase = "idle" if item.idle else "build"
        return None

    def _phase_idle(self) -> Optional[bool]:
        if self._idle_left > 0:
            self._idle_left -= 1
            return True
        self._phase = "build"
        return None

    def _phase_build(self) -> Optional[bool]:
        item = self._item
        assert item is not None
        self._target = item.target % self.n_targets
        burst = max(1, min(item.burst, MAX_BURST_LENGTH))
        self._burst = burst
        payload = tuple(item.payload[:burst])
        while len(payload) < burst:
            payload += (0,)
        self._payload = payload
        self._txn = Transaction(
            master=self.name,
            address=0x1000 * (self._target + 1) + item.address_offset,
            is_write=item.is_write,
            data=payload,
            mode=BusMode.BLOCKING,
            start_cycle=self.clock.cycle_count,
            txn_id=self.txn_ids.allocate(),
        )
        self.issued += 1
        self.in_flight = True
        self._phase = "req"
        return None

    def _phase_req(self) -> Optional[bool]:
        """Start one attempt: same signal discipline as the free-running
        :class:`~.systemc_model.PciMasterModule`, so the Table 1
        property suite binds to scenario runs unchanged."""
        self.idle_flag.write(False)
        self.wires.req[self.index].write(True)
        self._phase = "gnt"
        return None

    def _phase_gnt(self) -> Optional[bool]:
        if not self.wires.gnt[self.index].read():
            return True
        self._phase = "bus_wait"
        return None

    def _phase_bus_wait(self) -> Optional[bool]:
        wires = self.wires
        if (
            wires.frame.read()
            or wires.owner.read() != -1
            or wires.stop[self._target].read()
        ):
            return True
        wires.req[self.index].write(False)
        wires.frame.write(True)
        wires.owner.write(self.index)
        wires.addr.write(self._target)
        wires.command.write(
            PciCommand.MEM_WRITE if self._item.is_write else PciCommand.MEM_READ
        )
        self._phase = "data_start"
        return True

    def _phase_data_start(self) -> Optional[bool]:
        self.wires.irdy.write(True)
        self.data_flag.write(True)
        self._words_left = self._burst
        self._waited = 0
        self._phase = "data"
        return True

    def _phase_data(self) -> Optional[bool]:
        wires = self.wires
        if wires.stop[self._target].read():
            self._release_writes()
            self._backoff_left = 2
            self._phase = "backoff"
            return True  # STOP#-ed: this wake is the release cycle
        if wires.trdy[self._target].read():
            self._words_left -= 1
            self.words_moved += 1
            self._waited = 0
            if self._words_left == 0:
                wires.frame.write(False)
                self._phase = "turnaround"
            return True
        self._waited += 1
        if self._waited > 16:  # defensive: no livelock
            self._release_writes()
            self._backoff_left = 2
            self._phase = "backoff"
        return True

    def _phase_backoff(self) -> Optional[bool]:
        if self._backoff_left == 2:
            self.retries += 1
        if self._backoff_left > 0:
            self._backoff_left -= 1
            return True
        self._phase = "req"
        return None

    def _phase_turnaround(self) -> Optional[bool]:
        self._release_writes()
        self._phase = "complete"
        return True

    def _phase_complete(self) -> Optional[bool]:
        item = self._item
        txn = self._txn
        assert item is not None and txn is not None
        txn.end_cycle = self.clock.cycle_count
        txn.status = BusStatus.OK
        self.completed += 1
        if not item.is_write:
            self.reads_completed += 1
        self.in_flight = False
        # corrupt-read matches the MS fault contract: the data path
        # flips a bit on reads from the nth one onward
        corrupt = (
            not item.is_write
            and self.fault is not None
            and self.fault.kind == "corrupt-read"
            and self.fault.unit == self.index
            and self.reads_completed >= self.fault.nth
        )
        if corrupt:
            txn.data = (self._payload[0] ^ 0x1,) + self._payload[1:]
        dropped = (
            self.fault is not None
            and self.fault.kind == "drop"
            and self.fault.unit == self.index
            and self.completed == self.fault.nth
        )
        if not dropped:
            self.records.append((txn, item))
        self._phase = "fetch"
        return None

    def _phase_done(self) -> Optional[bool]:
        # sequence exhausted: the initiator idles but stays alive, so a
        # checkpoint fork can graft a fresh item stream and restart it
        return True

    def _release_writes(self) -> None:
        wires = self.wires
        wires.frame.write(False)
        wires.irdy.write(False)
        wires.owner.write(-1)
        wires.addr.write(-1)
        self.data_flag.write(False)
        self.idle_flag.write(True)

    _PHASES = {
        "fetch": _phase_fetch,
        "idle": _phase_idle,
        "build": _phase_build,
        "req": _phase_req,
        "gnt": _phase_gnt,
        "bus_wait": _phase_bus_wait,
        "data_start": _phase_data_start,
        "data": _phase_data,
        "backoff": _phase_backoff,
        "turnaround": _phase_turnaround,
        "complete": _phase_complete,
        "done": _phase_done,
    }

    # -- checkpoint protocol ------------------------------------------------

    def checkpoint_state(self) -> Dict[str, Any]:
        """Everything a fresh initiator needs to resume mid-protocol."""
        return {
            "phase": self._phase,
            "item": self._item.to_json() if self._item is not None else None,
            "txn": self._txn.to_json() if self._txn is not None else None,
            "idle_left": self._idle_left,
            "target": self._target,
            "burst": self._burst,
            "payload": list(self._payload),
            "words_left": self._words_left,
            "waited": self._waited,
            "backoff_left": self._backoff_left,
            "items_consumed": self.items_consumed,
            "issued": self.issued,
            "completed": self.completed,
            "reads_completed": self.reads_completed,
            "in_flight": self.in_flight,
            "done": self.done,
            "retries": self.retries,
            "words_moved": self.words_moved,
            "records": [
                [txn.to_json(), item.to_json()] for txn, item in self.records
            ],
        }

    def restore_state(self, doc: Dict[str, Any]) -> None:
        """Adopt a :meth:`checkpoint_state` document (see the MS twin)."""
        while self.items_consumed < doc["items_consumed"]:
            if self._next_item() is None:
                break
        self._phase = doc["phase"]
        self._item = (
            SequenceItem.from_json(doc["item"]) if doc["item"] else None
        )
        self._txn = Transaction.from_json(doc["txn"]) if doc["txn"] else None
        self._idle_left = doc["idle_left"]
        self._target = doc["target"]
        self._burst = doc["burst"]
        self._payload = tuple(doc["payload"])
        self._words_left = doc["words_left"]
        self._waited = doc["waited"]
        self._backoff_left = doc["backoff_left"]
        self.issued = doc["issued"]
        self.completed = doc["completed"]
        self.reads_completed = doc["reads_completed"]
        self.in_flight = doc["in_flight"]
        self.done = doc["done"]
        self.retries = doc["retries"]
        self.words_moved = doc["words_moved"]
        self.records = [
            (Transaction.from_json(txn), SequenceItem.from_json(item))
            for txn, item in doc["records"]
        ]


class PciScenarioSystem(ScenarioSystem):
    """Top level for one seeded PCI scenario."""

    def __init__(
        self,
        n_masters: int,
        n_targets: int,
        sequence: Sequence,
        seed: int,
        fault: Optional[FaultPlan] = None,
        clock_period: int = PCI_CLOCK_PERIOD_PS,
        stop_probability: float = 0.05,
        address_span: int = 16,
    ):
        self.n_masters = n_masters
        self.n_targets = n_targets
        self.fault = fault
        self.seed = seed
        self.address_span = address_span
        self.simulator = Simulator(
            f"pci_scenario_{n_masters}m_{n_targets}s_seed{seed}"
        )
        self.clock = Clock("pci_clk", clock_period, self.simulator)
        self.wires = PciSignals(self.simulator, n_masters, n_targets)
        self.txn_ids = TxnIdAllocator()
        self.arbiter = PciArbiterModule(
            "arbiter", self.simulator, self.clock, self.wires
        )
        root = ScenarioRng(seed, "pci")
        ctx = StimulusContext(
            n_targets=n_targets,
            min_burst=1,
            max_burst=MAX_BURST_LENGTH,
            address_span=address_span,
        )
        self.masters = [
            PciSequenceMaster(
                i, self.simulator, self.clock, self.wires, n_targets,
                sequence.for_unit(i).items(root.derive(f"master{i}"), ctx),
                self.txn_ids, fault=fault,
            )
            for i in range(n_masters)
        ]
        self.targets = [
            PciTargetModule(
                j,
                self.simulator,
                self.clock,
                self.wires,
                seed + 100 + j,
                decode_latency=1 + (j % 3),
                stop_probability=stop_probability,
            )
            for j in range(n_targets)
        ]

    def rebind_sequence(self, sequence: Sequence) -> None:
        """Swap every master's stimulus source for a new sequence.

        The checkpoint fork path: a restored system keeps its bus,
        memory and scoreboard history but plays a *different* goal set
        from here on.  Item streams re-derive from the system seed under
        a distinct rng scope so forks are deterministic yet uncorrelated
        with the original run's draws.
        """
        root = ScenarioRng(self.seed, "pci-fork")
        ctx = StimulusContext(
            n_targets=self.n_targets,
            min_burst=1,
            max_burst=MAX_BURST_LENGTH,
            address_span=self.address_span,
        )
        for index, master in enumerate(self.masters):
            master.rebind_items(
                sequence.for_unit(index).items(root.derive(f"master{index}"), ctx)
            )

    def letter(self) -> Dict[str, Any]:
        wires = self.wires
        addressed = wires.addr.read()
        letter: Dict[str, Any] = {
            "frame": wires.frame.read(),
            "irdy": wires.irdy.read(),
            "bus_idle": (not wires.frame.read()) and wires.owner.read() == -1,
            "devsel": any(s.read() for s in wires.devsel),
            "trdy": any(s.read() for s in wires.trdy),
            "stop_any": any(s.read() for s in wires.stop),
            "stop_addressed": bool(
                0 <= addressed < self.n_targets
                and wires.stop[addressed].read()
            ),
        }
        for i in range(self.n_masters):
            letter[f"req{i}"] = wires.req[i].read()
            letter[f"gnt{i}"] = wires.gnt[i].read()
            letter[f"owner{i}"] = wires.owner.read() == i
            letter[f"master{i}_idle"] = self.masters[i].idle_flag.read()
            letter[f"master{i}_data"] = self.masters[i].data_flag.read()
        for j in range(self.n_targets):
            letter[f"devsel{j}"] = wires.devsel[j].read()
            letter[f"trdy{j}"] = wires.trdy[j].read()
            letter[f"stop{j}"] = wires.stop[j].read()
        return letter

    # -- scoreboard plumbing (generic parts on ScenarioSystem) --------------

    def reference_adapter(self) -> "PciReferenceAdapter":
        return PciReferenceAdapter(self.n_masters, self.n_targets)

    def coverage_context(self):
        # PCI maps target t at page t+1 (protocol.target_address)
        ctx = StimulusContext(
            n_targets=self.n_targets, min_burst=1, max_burst=MAX_BURST_LENGTH
        )
        return ctx, 0x1000, 1

    def fsm_events(self) -> List[Tuple[str, str, tuple]]:
        """The run as coarse ASM events, one full transaction script per
        completed record: request (overlap-aware, see
        :meth:`ScenarioSystem._serialized_fsm_events` for the soundness
        rule -- ``update_m_req``'s lowest-index latch matches it),
        hidden arbitration, the address phase, the target's fused
        response, all data phases fused, and the target release.
        STOP#-ed attempts leave no completed record and therefore no
        events -- conservative, never false credit.
        """

        def transaction_events(txn, owner):
            target = txn.address // 0x1000 - 1
            return [
                ("arbiter", "update_m_req", ()),
                ("arbiter", "grant", ()),
                (
                    f"master{owner}",
                    "start_transaction",
                    (target, txn.burst_length),
                ),
                (f"target{target}", "respond", ()),
                (f"master{owner}", "run_data_phases", ()),
                (f"target{target}", "complete", ()),
            ]

        return self._serialized_fsm_events(transaction_events)


def lower_path_to_goals(
    calls, n_masters: int, n_targets: int
) -> Optional[List["TransactionGoal"]]:
    """Lower a planned coarse-action PCI FSM path to directed goals.

    ``master{i}.start_transaction(target, burst)`` names its initiator
    explicitly, so attribution is direct; arbitration and target
    bookkeeping actions (``update_m_req``/``grant``/``reclaim``,
    ``respond``/``complete``, ``run_data_phases``) are implied by the
    goal and skipped.  Paths that need target-initiated behaviour
    (``stop_transaction``/``handle_stop``/``clear_stop``) are not
    expressible as transaction goals -> None.  Transfer direction is
    not part of the PCI FSM vocabulary, so goals alternate write/read
    deterministically.
    """
    from ...scenarios.directed import TransactionGoal

    goals: List[TransactionGoal] = []
    pending: List[int] = []
    request_idle: Dict[int, int] = {}
    requests_seen = 0
    for call in calls:
        if call.machine.startswith("master"):
            master = int(call.machine[len("master"):])
            if master >= n_masters:
                return None
            if call.action == "request":
                if master in pending:
                    return None
                pending.append(master)
                # ascending same-cycle requests resolve in index order;
                # a later position only needs a later posting
                request_idle[master] = (
                    0 if pending == sorted(pending) else requests_seen
                )
                requests_seen += 1
            elif call.action == "start_transaction":
                target, burst = call.args
                if master not in pending or not 0 <= target < n_targets:
                    return None
                pending.remove(master)
                goals.append(
                    TransactionGoal(
                        unit=master,
                        target=target,
                        is_write=len(goals) % 2 == 0,
                        burst=max(1, min(burst, MAX_BURST_LENGTH)),
                        idle=request_idle.pop(master, 0),
                    )
                )
            elif call.action == "run_data_phases":
                continue
            else:
                return None  # handle_stop & fine-grained actions
        elif call.machine == "arbiter" and call.action in (
            "update_m_req",
            "grant",
            "reclaim",
        ):
            continue
        elif call.machine.startswith("target") and call.action in (
            "respond",
            "complete",
        ):
            continue
        elif call.machine == "system":
            continue
        else:
            return None
    for master in pending:
        goals.append(
            TransactionGoal(
                unit=master,
                target=0,
                is_write=False,
                burst=1,
                idle=request_idle.get(master, 0),
            )
        )
    return goals


class PciReferenceAdapter(ReferenceAdapter):
    """ASM-lockstep golden reference for the PCI bus."""

    def __init__(self, n_masters: int, n_targets: int):
        self.n_masters = n_masters
        self.n_targets = n_targets
        self._scripts: Dict[tuple, list] = {}

    def build_reference(self):
        return build_pci_model(self.n_masters, self.n_targets)

    def observe(self, txn: Transaction, item: SequenceItem) -> Iterable[Mismatch]:
        assert self.lockstep is not None, "begin() not called"
        master_index = int(txn.master.replace("master", ""))
        target_index = txn.address // 0x1000 - 1
        burst = txn.burst_length
        # replay scripts depend only on (master, target, burst) --
        # memoize so the hot check loop skips rebuilding them
        script_key = (master_index, target_index, burst)
        script = self._scripts.get(script_key)
        if script is None:
            master = f"master{master_index}"
            target = f"target{target_index}"
            script = (
                [
                    (master, "request", ()),
                    ("arbiter", "update_m_req", ()),
                    ("arbiter", "grant", ()),
                    (master, "start_transaction", (target_index, burst)),
                    (target, "respond", ()),
                    (master, "assert_irdy", ()),
                ]
                + [(master, "data_phase", ())] * burst
                + [
                    (master, "finish", ()),
                    (target, "complete", ()),
                ]
            )
            self._scripts[script_key] = script
        for machine, act, args in script:
            error = self.lockstep.call(machine, act, *args)
            if error is not None:
                state = self.lockstep.state_dump()
                self._reset_reference()
                yield Mismatch(
                    kind=DivergenceKind.PROTOCOL,
                    master=txn.master,
                    txn_id=txn.txn_id,
                    detail=f"ASM reference rejected replay of {txn.describe()}",
                    expected="action enabled in the verified design",
                    observed=error,
                    reference_state=state,
                )
                return
        expected = tuple(item.payload[:burst])
        while len(expected) < burst:
            expected += (0,)
        if txn.data != expected:
            yield Mismatch(
                kind=DivergenceKind.DATA,
                master=txn.master,
                txn_id=txn.txn_id,
                detail=(
                    f"reported payload diverged from the driven stimulus "
                    f"({txn.describe()})"
                ),
                expected=repr(expected),
                observed=repr(txn.data),
                reference_state=self.lockstep.state_dump(),
            )

    # finish() inherited: the default dropped-transaction accounting
    # is the whole end-of-run story for PCI (no target-side memory)
