"""The PCI Local Bus case study (paper Section 4, Table 1)."""

from .asm_model import (
    PciArbiter,
    PciBus,
    PciMaster,
    PciSystem,
    PciTarget,
    build_pci_model,
    pci_domains,
    pci_init_call,
    pci_coarse_actions,
)
from .properties import (
    grant_goal,
    pci_cover_properties,
    pci_letter_from_model,
    pci_safety_properties,
    request_trigger,
    transaction_goal,
)
from .protocol import (
    DEVSEL_TIMEOUT_CYCLES,
    MAX_BURST_LENGTH,
    PCI_CLOCK_PERIOD_PS,
    MasterState,
    PciCommand,
    TargetResponse,
    TargetState,
    decode_target,
    target_address,
)

__all__ = [
    "PciArbiter", "PciBus", "PciMaster", "PciSystem", "PciTarget",
    "build_pci_model", "pci_domains", "pci_init_call", "pci_coarse_actions",
    "grant_goal", "pci_cover_properties", "pci_letter_from_model",
    "pci_safety_properties", "request_trigger", "transaction_goal",
    "DEVSEL_TIMEOUT_CYCLES", "MAX_BURST_LENGTH", "PCI_CLOCK_PERIOD_PS",
    "MasterState", "PciCommand", "TargetResponse", "TargetState",
    "decode_target", "target_address",
]

from .systemc_model import (
    PciArbiterModule,
    PciMasterModule,
    PciSignals,
    PciSystemModel,
    PciTargetModule,
)

__all__ += [
    "PciArbiterModule",
    "PciMasterModule",
    "PciSignals",
    "PciSystemModel",
    "PciTargetModule",
]

from .scenario import (
    PciReferenceAdapter,
    PciScenarioSystem,
    PciSequenceMaster,
)

__all__ += [
    "PciReferenceAdapter",
    "PciScenarioSystem",
    "PciSequenceMaster",
]

from .duv import build_duv
from ...workbench.registry import register_model

#: the Workbench knows this case study as "pci"
register_model("pci", build_duv)

__all__ += ["build_duv"]
