"""The PCI Local Bus as a registered design-under-verification."""

from __future__ import annotations

from ...explorer.config import ExplorationConfig
from ...workbench.duv import DUV, LivenessCheck
from .asm_model import (
    build_pci_model,
    pci_coarse_actions,
    pci_domains,
    pci_init_call,
)
from .properties import (
    grant_goal,
    pci_invariant_properties,
    pci_letter_from_model,
    pci_safety_properties,
    request_trigger,
    transaction_goal,
)
from .protocol import PCI_CLOCK_PERIOD_PS
from .systemc_model import PciSystemModel


def build_duv(
    n_masters: int = 2,
    n_targets: int = 2,
    max_states: int = 50_000,
    max_transitions: int = 500_000,
) -> DUV:
    """The Table 1 case study as one Workbench bundle."""
    return DUV(
        name="pci",
        description=(
            f"PCI Local Bus, {n_masters} masters, {n_targets} targets "
            "(paper Table 1)"
        ),
        model_factory=lambda: build_pci_model(n_masters, n_targets),
        directives=pci_invariant_properties(n_masters, n_targets),
        extractor=pci_letter_from_model,
        exploration=ExplorationConfig(
            domains=pci_domains(n_targets),
            init_action=pci_init_call(),
            actions=pci_coarse_actions(n_masters, n_targets),
            max_states=max_states,
            max_transitions=max_transitions,
        ),
        liveness_checks=(
            LivenessCheck("grant0", request_trigger(0), grant_goal(0)),
            LivenessCheck("transaction0", request_trigger(0), transaction_goal(0)),
        ),
        systemc_factory=lambda seed: PciSystemModel(
            n_masters, n_targets, seed=seed
        ),
        simulation_directives=pci_safety_properties(n_masters, n_targets),
        scenario_model="pci",
        clock_period_ps=PCI_CLOCK_PERIOD_PS,
        metadata={"topology": (n_masters, n_targets)},
    )
