"""PCI Local Bus protocol vocabulary.

"PCI boasts a 32-bit datapath, 33MHz clock speed and a maximum data
transfer rate of 132MB/sec.  Each PCI master has a pair of arbitration
lines that connect it directly to the PCI bus arbiter.  In the PCI
environment, bus arbitration can take place while another master is
still in control of the bus [hidden arbitration].  Data is transferred
between an initiator which is the bus master, and a target, which is
the bus slave.  PCI supports several masters and slaves and allows
stopping transactions."  (paper, Section 4.1)

This module centralises the protocol constants shared by the ASM model,
the SystemC model and the property suite.
"""

from __future__ import annotations

import enum

#: 33 MHz -> 30 ns period (the paper's clock), in kernel picoseconds.
PCI_CLOCK_PERIOD_PS = 30_000

#: 32-bit datapath, 132 MB/s peak (30ns x 4 bytes per data phase).
PCI_DATA_WIDTH_BITS = 32
PCI_PEAK_MBPS = 132

#: DEVSEL# must assert within this many cycles of FRAME# (fast=1,
#: medium=2, slow=3, subtractive=4).
DEVSEL_TIMEOUT_CYCLES = 4

#: Maximum burst length modeled at the transaction level.
MAX_BURST_LENGTH = 2


class PciCommand(enum.Enum):
    """Bus command (driven on C/BE# during the address phase)."""

    MEM_READ = 0b0110
    MEM_WRITE = 0b0111
    IO_READ = 0b0010
    IO_WRITE = 0b0011
    CONFIG_READ = 0b1010
    CONFIG_WRITE = 0b1011

    @property
    def is_write(self) -> bool:
        return self in (
            PciCommand.MEM_WRITE,
            PciCommand.IO_WRITE,
            PciCommand.CONFIG_WRITE,
        )


class MasterState(enum.Enum):
    """Initiator-side transaction FSM."""

    IDLE = "idle"
    REQUESTING = "requesting"  # REQ# asserted, waiting for GNT#
    GRANTED = "granted"        # GNT# seen, waiting for bus idle
    ADDR_PHASE = "addr"        # FRAME# asserted, address on AD
    DATA_PHASE = "data"        # IRDY# asserted, moving words
    TURNAROUND = "turnaround"  # FRAME# deasserted, last data word


class TargetState(enum.Enum):
    """Target-side FSM."""

    IDLE = "idle"
    SELECTED = "selected"      # address decoded, DEVSEL# asserted
    TRANSFER = "transfer"      # TRDY# asserted, moving words
    STOPPED = "stopped"        # STOP# asserted (retry/disconnect)


class TargetResponse(enum.Enum):
    """How a target finishes a transaction ("PCI allows stopping
    transactions")."""

    COMPLETE = "complete"
    RETRY = "retry"            # STOP# before any data
    DISCONNECT = "disconnect"  # STOP# after some data


def target_address(target_index: int) -> int:
    """The base address decoded by target ``target_index``.

    One address page per target keeps the rule-R4 address domain
    minimal while still exercising address decode.
    """
    return 0x1000 * (target_index + 1)


def decode_target(address: int, target_count: int) -> int | None:
    """Inverse of :func:`target_address`; None when unmapped."""
    page = address // 0x1000 - 1
    if 0 <= page < target_count:
        return page
    return None
