"""The PCI bus as a clocked SystemC simulation model.

The hand-translated counterpart of :mod:`.asm_model` (the paper
translates the verified ASM design to SystemC through rules R1-R3 and
then simulates it with the compiled assertion monitors).  Modules:

* :class:`PciArbiterModule` -- REQ#/GNT# pairs per master, lowest-index
  priority, *hidden arbitration* (re-arbitrates while a transaction is
  still running),
* :class:`PciMasterModule`  -- issues memory read/write transactions
  with seeded pseudo-random idle gaps, burst lengths and addresses;
  honours STOP# by backing off and retrying,
* :class:`PciTargetModule`  -- positive address decode (DEVSEL# within
  its configured decode latency), data phases (TRDY#), and seeded
  random retry injection (STOP#),
* :class:`PciSystemModel`   -- wires everything, exposes the canonical
  signal namespace of :mod:`.properties` for the assertion monitors.

The model is cycle-based: every module owns one thread clocked on the
shared 33 MHz clock's posedge; monitors sample on the negedge.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from ...sysc.bus import BusStatistics, Transaction, BusMode, BusStatus, TxnIdAllocator
from ...sysc.clock import Clock
from ...sysc.kernel import Simulator
from ...sysc.module import Module
from ...sysc.signal import Signal
from .protocol import (
    DEVSEL_TIMEOUT_CYCLES,
    MAX_BURST_LENGTH,
    PCI_CLOCK_PERIOD_PS,
    PciCommand,
)


class PciSignals:
    """The shared bus wires (active-high in this model for readability)."""

    def __init__(self, simulator: Simulator, n_masters: int, n_targets: int):
        self.req = [Signal(False, f"req{i}", simulator) for i in range(n_masters)]
        self.gnt = [Signal(False, f"gnt{i}", simulator) for i in range(n_masters)]
        # repro: allow[race.multi-driver] FRAME# is driven only by the GNT# holder; arbitration serializes masters
        self.frame = Signal(False, "frame", simulator)
        # repro: allow[race.multi-driver] IRDY# is driven only by the GNT# holder; arbitration serializes masters
        self.irdy = Signal(False, "irdy", simulator)
        self.devsel = [
            Signal(False, f"devsel{j}", simulator) for j in range(n_targets)
        ]
        self.trdy = [Signal(False, f"trdy{j}", simulator) for j in range(n_targets)]
        self.stop = [Signal(False, f"stop{j}", simulator) for j in range(n_targets)]
        # repro: allow[race.multi-driver] AD is driven only by the GNT# holder during the address phase
        self.addr = Signal(-1, "addr", simulator)  # decoded target index
        # repro: allow[race.multi-driver] ownership bookkeeping is written only by the master the arbiter granted
        self.owner = Signal(-1, "owner", simulator)
        # repro: allow[race.multi-driver] C/BE# is driven only by the GNT# holder during the address phase
        self.command = Signal(PciCommand.MEM_READ, "command", simulator)


class PciArbiterModule(Module):
    """Lowest-index-priority arbiter with bus parking and hidden
    arbitration."""

    def __init__(self, name: str, sim: Simulator, clock: Clock, wires: PciSignals):
        super().__init__(name, sim)
        self.clock = clock
        self._posedge = clock.posedge_event
        self.wires = wires
        self.grants_issued = 0
        #: index currently holding GNT# (kept in an attribute, not a
        #: generator local, so the arbiter is checkpointable)
        self._grant: Optional[int] = None
        self.thread(self.arbitrate)

    def arbitrate(self):
        posedge = self._posedge
        while True:
            yield posedge
            self._arbitrate_once()

    def _arbitrate_once(self) -> None:
        req = self.wires.req
        gnt = self.wires.gnt
        current = self._grant
        if current is not None and not req[current].read():
            # The granted master started its transaction (REQ# fell):
            # drop GNT# so the next arbitration can proceed even while
            # the transaction still runs (hidden arbitration).
            gnt[current].write(False)
            self._grant = current = None
        if current is None:
            # Lowest-index priority; reads see pre-delta values, so
            # scanning after the GNT# drop is equivalent to the old
            # snapshot-then-drop ordering.
            for index, requesting in enumerate(req):
                if requesting.read():
                    self._grant = index
                    gnt[index].write(True)
                    self.grants_issued += 1
                    break

    def checkpoint_state(self) -> dict:
        """Snapshot of the arbiter's inter-cycle state."""
        return {"grant": self._grant, "grants_issued": self.grants_issued}

    def restore_state(self, doc: dict) -> None:
        """Adopt a :meth:`checkpoint_state` document."""
        self._grant = doc["grant"]
        self.grants_issued = doc["grants_issued"]


class PciMasterModule(Module):
    """A PCI initiator issuing pseudo-random transactions."""

    def __init__(
        self,
        index: int,
        sim: Simulator,
        clock: Clock,
        wires: PciSignals,
        n_targets: int,
        seed: int,
        max_idle: int = 3,
        txn_ids: TxnIdAllocator | None = None,
    ):
        super().__init__(f"master{index}", sim)
        self.index = index
        self.clock = clock
        self._posedge = clock.posedge_event
        self.wires = wires
        self.n_targets = n_targets
        self.random = random.Random(seed)
        self.max_idle = max_idle
        self.txn_ids = txn_ids or TxnIdAllocator()
        self.transactions: List[Transaction] = []
        self.retries = 0
        self.words_moved = 0
        #: canonical "in data phase" flag for the monitors
        self.data_flag = Signal(False, f"master{index}_data", sim)
        self.idle_flag = Signal(True, f"master{index}_idle", sim)
        self.thread(self.run)

    def run(self):
        wires = self.wires
        while True:
            # idle gap
            for _ in range(self.random.randrange(1, self.max_idle + 1)):
                yield self._posedge
            target = self.random.randrange(self.n_targets)
            burst = self.random.randint(1, MAX_BURST_LENGTH)
            command = (
                PciCommand.MEM_WRITE
                if self.random.random() < 0.5
                else PciCommand.MEM_READ
            )
            transaction = Transaction(
                master=self.name,
                address=0x1000 * (target + 1),
                is_write=command.is_write,
                data=tuple(range(burst)),
                mode=BusMode.BLOCKING,
                start_cycle=self.clock.cycle_count,
                txn_id=self.txn_ids.allocate(),
            )
            completed = False
            while not completed:
                completed = yield from self._attempt(target, burst, command)
                if not completed:
                    self.retries += 1
                    # back off a little before retrying
                    for _ in range(self.random.randrange(1, 3)):
                        yield self._posedge
            transaction.end_cycle = self.clock.cycle_count
            transaction.status = BusStatus.OK
            self.transactions.append(transaction)

    def _attempt(self, target: int, burst: int, command: PciCommand):
        """One transaction attempt; returns False when STOP#-ed."""
        wires = self.wires
        self.idle_flag.write(False)
        # REQ# until granted
        wires.req[self.index].write(True)
        while not wires.gnt[self.index].read():
            yield self._posedge
        # wait for bus idle -- and for any draining STOP# of the chosen
        # target (its STOP# belongs to the previous transaction; a new
        # address phase must start clean)
        while (
            wires.frame.read()
            or wires.owner.read() != -1
            or wires.stop[target].read()
        ):
            yield self._posedge
        # address phase
        wires.req[self.index].write(False)
        wires.frame.write(True)
        wires.owner.write(self.index)
        wires.addr.write(target)
        wires.command.write(command)
        yield self._posedge
        # IRDY# and data phases
        wires.irdy.write(True)
        self.data_flag.write(True)
        words_left = burst
        cycles_waited = 0
        while words_left > 0:
            yield self._posedge
            if wires.stop[target].read():
                # Target requested stop: back off (retry).
                yield from self._release(aborted=True)
                return False
            if wires.trdy[target].read():
                words_left -= 1
                self.words_moved += 1
                cycles_waited = 0
                if words_left == 0:
                    wires.frame.write(False)  # last data phase
            else:
                cycles_waited += 1
                if cycles_waited > 16:  # defensive: no livelock
                    yield from self._release(aborted=True)
                    return False
        yield self._posedge
        yield from self._release(aborted=False)
        return True

    def _release(self, aborted: bool):
        wires = self.wires
        wires.frame.write(False)
        wires.irdy.write(False)
        wires.owner.write(-1)
        wires.addr.write(-1)
        self.data_flag.write(False)
        self.idle_flag.write(True)
        yield self._posedge


class PciTargetModule(Module):
    """A PCI target with configurable decode latency and retry injection.

    Runs as an explicit phase machine (idle / decode / respond / serve /
    stop_wait / stop_tail): every posedge wake dispatches handlers keyed
    by ``self._phase`` until one consumes the cycle, so the whole
    response state — including the decode countdown and a draining
    STOP# — lives in attributes and snapshots via
    :meth:`checkpoint_state`.  The RNG stream (one draw at decode end,
    one per served cycle while FRAME# is high) is wake-for-wake
    identical to the original nested-loop formulation.
    """

    def __init__(
        self,
        index: int,
        sim: Simulator,
        clock: Clock,
        wires: PciSignals,
        seed: int,
        decode_latency: int = 1,
        stop_probability: float = 0.05,
    ):
        super().__init__(f"target{index}", sim)
        if not 1 <= decode_latency <= DEVSEL_TIMEOUT_CYCLES - 1:
            raise ValueError("decode latency outside the DEVSEL window")
        self.index = index
        self.clock = clock
        self._posedge = clock.posedge_event
        self.wires = wires
        self.random = random.Random(seed)
        self.decode_latency = decode_latency
        self.stop_probability = stop_probability
        self.claims = 0
        self.stops_issued = 0
        # phase-machine registers
        self._phase = "idle"
        self._decode_left = 0
        self._from_serve = False
        self.thread(self.run)

    def run(self):
        posedge = self._posedge
        while True:
            yield posedge
            self._dispatch()

    def _dispatch(self) -> None:
        """Run phase handlers until one consumes the wake."""
        handlers = self._PHASES
        # repro: allow[race.wait-free-loop] bounded phase dispatch: every handler either consumes the wake or advances the phase, so this terminates within one cycle
        while handlers[self._phase](self) is None:
            pass

    def _phase_idle(self) -> Optional[bool]:
        wires = self.wires
        if not (wires.frame.read() and wires.addr.read() == self.index):
            return True
        self._decode_left = self.decode_latency - 1
        self._phase = "decode"
        return None

    def _phase_decode(self) -> Optional[bool]:
        if self._decode_left > 0:
            self._decode_left -= 1
            return True
        if self.random.random() < self.stop_probability:
            self._stop_writes()
            self._from_serve = False
            self._phase = "stop_wait"
            return None  # STOP# hold checks FRAME# in this same cycle
        self.wires.devsel[self.index].write(True)
        self.claims += 1
        self._phase = "respond"
        return True

    def _phase_respond(self) -> Optional[bool]:
        self.wires.trdy[self.index].write(True)
        self._phase = "serve_entry"
        return None

    def _phase_serve_entry(self) -> Optional[bool]:
        """First service cycle: no disconnect draw before the first wait."""
        wires = self.wires
        if wires.frame.read() or wires.irdy.read():
            self._phase = "serve"
            return True
        wires.devsel[self.index].write(False)
        wires.trdy[self.index].write(False)
        self._phase = "idle"
        return True

    def _phase_serve(self) -> Optional[bool]:
        # stay ready until the initiator finishes (FRAME# falls and
        # IRDY# falls after the last word)
        wires = self.wires
        if (
            wires.frame.read()
            and self.random.random() < self.stop_probability / 4
        ):
            # mid-burst disconnect
            self._stop_writes()
            self._from_serve = True
            self._phase = "stop_wait"
            return None
        if wires.frame.read() or wires.irdy.read():
            return True
        wires.devsel[self.index].write(False)
        wires.trdy[self.index].write(False)
        self._phase = "idle"
        return True

    def _phase_stop_wait(self) -> Optional[bool]:
        # hold STOP# until the initiator backs off
        if self.wires.frame.read():
            return True
        self._phase = "stop_tail"
        return True

    def _phase_stop_tail(self) -> Optional[bool]:
        self.wires.stop[self.index].write(False)
        if self._from_serve:
            # the original loop's post-break writes (same-value, but
            # preserved for update-request parity with the generator)
            self.wires.devsel[self.index].write(False)
            self.wires.trdy[self.index].write(False)
        self._phase = "idle"
        return True

    def _stop_writes(self) -> None:
        wires = self.wires
        wires.devsel[self.index].write(False)
        wires.trdy[self.index].write(False)
        wires.stop[self.index].write(True)
        self.stops_issued += 1

    _PHASES = {
        "idle": _phase_idle,
        "decode": _phase_decode,
        "respond": _phase_respond,
        "serve_entry": _phase_serve_entry,
        "serve": _phase_serve,
        "stop_wait": _phase_stop_wait,
        "stop_tail": _phase_stop_tail,
    }

    # -- checkpoint protocol ------------------------------------------------

    def checkpoint_state(self) -> dict:
        """Snapshot including the exact RNG stream position."""
        version, internal, gauss = self.random.getstate()
        return {
            "phase": self._phase,
            "decode_left": self._decode_left,
            "from_serve": self._from_serve,
            "claims": self.claims,
            "stops_issued": self.stops_issued,
            "random": [version, list(internal), gauss],
        }

    def restore_state(self, doc: dict) -> None:
        """Adopt a :meth:`checkpoint_state` document."""
        self._phase = doc["phase"]
        self._decode_left = doc["decode_left"]
        self._from_serve = doc["from_serve"]
        self.claims = doc["claims"]
        self.stops_issued = doc["stops_issued"]
        version, internal, gauss = doc["random"]
        self.random.setstate((version, tuple(internal), gauss))


class PciSystemModel:
    """Top level: clock + wires + arbiter + masters + targets."""

    def __init__(
        self,
        n_masters: int,
        n_targets: int,
        seed: int = 2005,
        clock_period: int = PCI_CLOCK_PERIOD_PS,
        stop_probability: float = 0.05,
    ):
        self.n_masters = n_masters
        self.n_targets = n_targets
        self.simulator = Simulator(f"pci_{n_masters}m_{n_targets}s")
        self.clock = Clock("pci_clk", clock_period, self.simulator)
        self.wires = PciSignals(self.simulator, n_masters, n_targets)
        self.txn_ids = TxnIdAllocator()
        self.arbiter = PciArbiterModule(
            "arbiter", self.simulator, self.clock, self.wires
        )
        self.masters = [
            PciMasterModule(
                i, self.simulator, self.clock, self.wires, n_targets, seed + i,
                txn_ids=self.txn_ids,
            )
            for i in range(n_masters)
        ]
        self.targets = [
            PciTargetModule(
                j,
                self.simulator,
                self.clock,
                self.wires,
                seed + 100 + j,
                decode_latency=1 + (j % (DEVSEL_TIMEOUT_CYCLES - 1)),
                stop_probability=stop_probability,
            )
            for j in range(n_targets)
        ]
        self.statistics = BusStatistics()

    # -- monitor-facing canonical namespace ----------------------------------------

    def letter(self) -> Dict[str, Any]:
        wires = self.wires
        addressed = wires.addr.read()
        letter: Dict[str, Any] = {
            "frame": wires.frame.read(),
            "irdy": wires.irdy.read(),
            "bus_idle": (not wires.frame.read()) and wires.owner.read() == -1,
            "devsel": any(s.read() for s in wires.devsel),
            "trdy": any(s.read() for s in wires.trdy),
            "stop_any": any(s.read() for s in wires.stop),
            "stop_addressed": bool(
                0 <= addressed < self.n_targets
                and wires.stop[addressed].read()
            ),
        }
        for i in range(self.n_masters):
            letter[f"req{i}"] = wires.req[i].read()
            letter[f"gnt{i}"] = wires.gnt[i].read()
            letter[f"owner{i}"] = wires.owner.read() == i
            letter[f"master{i}_idle"] = self.masters[i].idle_flag.read()
            letter[f"master{i}_data"] = self.masters[i].data_flag.read()
        for j in range(self.n_targets):
            letter[f"devsel{j}"] = wires.devsel[j].read()
            letter[f"trdy{j}"] = wires.trdy[j].read()
            letter[f"stop{j}"] = wires.stop[j].read()
        return letter

    def run_cycles(self, cycles: int) -> None:
        self.simulator.run(self.clock.period * cycles)

    def collect_statistics(self) -> BusStatistics:
        stats = BusStatistics()
        for master in self.masters:
            for transaction in master.transactions:
                stats.record(transaction)
        stats.arbitration_rounds = self.arbiter.grants_issued
        self.statistics = stats
        return stats
