"""The PCI property suite.

"For model checking we consider, for both models, a set of properties
describing all the possible scenarios of transactions over the bus
(reading, writing, arbitration, etc.)" (paper, Section 4.2).

All properties are written over a *canonical signal namespace* shared
by the ASM model (via :func:`pci_letter_from_model`) and the SystemC
simulation model (via its own extractor) -- defining the suite once and
reusing it at both levels is precisely the paper's re-use argument.

The suite splits by the semantics of "cycle":

* **invariant properties** (untimed, stutter-tolerant) are checked both
  during FSM generation -- where a step is *one* interleaved action of
  one machine -- and during simulation;
* **timed properties** (bounded response windows such as the DEVSEL#
  decode window) are only meaningful against the clocked SystemC model,
  where every module acts each cycle;
* **liveness** ("every request is eventually granted") cannot be
  verified by simulation at all and goes through the FSM liveness
  checker -- the paper's core argument for the model-checking leg.

Canonical signals (all boolean unless noted):

=====================  ======================================================
``req<i>``             master i's REQ# line
``gnt<i>``             arbiter grants master i (GNT#)
``frame``              FRAME# asserted (transaction running)
``irdy``               IRDY# asserted
``devsel`` / ``trdy``  any target's DEVSEL# / TRDY#
``devsel<j>`` ...      per-target lines
``stop_any``           any target's STOP#
``bus_idle``           no owner and FRAME# deasserted
``owner<i>``           master i owns the bus
``master<i>_idle``     master i's FSM is in IDLE
``master<i>_data``     master i is in its data phase
=====================  ======================================================
"""

from __future__ import annotations

from typing import Any, Dict, List

from ...asm.machine import AsmModel
from ...asm.state import StateKey
from ...psl.ast_nodes import Directive, DirectiveKind, Property
from ...psl.parser import parse_formula
from .asm_model import PciArbiter, PciBus, PciMaster, PciTarget
from .protocol import DEVSEL_TIMEOUT_CYCLES, MasterState, TargetState


def pci_letter_from_model(model: AsmModel) -> Dict[str, Any]:
    """Canonical signal valuation extracted from the ASM model state."""
    masters: List[PciMaster] = model.machines_of(PciMaster)  # type: ignore[assignment]
    targets: List[PciTarget] = model.machines_of(PciTarget)  # type: ignore[assignment]
    arbiter: PciArbiter = model.machines_of(PciArbiter)[0]  # type: ignore[assignment]
    bus: PciBus = model.machines_of(PciBus)[0]  # type: ignore[assignment]

    letter: Dict[str, Any] = {
        "frame": bus.m_frame,
        "irdy": bus.m_irdy,
        "bus_idle": (not bus.m_frame) and bus.m_owner == -1,
        "devsel": any(t.m_devsel for t in targets),
        "trdy": any(t.m_trdy for t in targets),
        "stop_any": any(t.m_stop for t in targets),
        # STOP# of the *addressed* target: the signal the current
        # initiator must honour (a STOP# still draining on another
        # target is not this transaction's business).
        "stop_addressed": bool(
            0 <= bus.m_addr < len(targets) and targets[bus.m_addr].m_stop
        ),
    }
    for index, master in enumerate(masters):
        letter[f"req{index}"] = master.m_req
        letter[f"gnt{index}"] = bool(
            arbiter.m_gnt and arbiter.m_ActiveMaster == index
        )
        letter[f"owner{index}"] = bus.m_owner == index
        letter[f"master{index}_idle"] = master.m_state is MasterState.IDLE
        letter[f"master{index}_data"] = master.m_state is MasterState.DATA_PHASE
    for index, target in enumerate(targets):
        letter[f"devsel{index}"] = target.m_devsel
        letter[f"trdy{index}"] = target.m_trdy
        letter[f"stop{index}"] = target.m_stop
        letter[f"target{index}_idle"] = target.m_state is TargetState.IDLE
    return letter


def _assert(name: str, text: str, report: str = "") -> Directive:
    return Directive(
        DirectiveKind.ASSERT, Property(name, parse_formula(text), report=report)
    )


# ---------------------------------------------------------------------------
# Invariant suite: model checking AND simulation
# ---------------------------------------------------------------------------


def pci_invariant_properties(n_masters: int, n_targets: int) -> List[Directive]:
    """Untimed, stutter-tolerant safety properties."""
    directives: List[Directive] = []

    # Arbitration: GNT# is mutually exclusive across masters.
    for i in range(n_masters):
        for j in range(i + 1, n_masters):
            directives.append(
                _assert(
                    f"mutex_gnt_{i}_{j}",
                    f"never (gnt{i} && gnt{j})",
                    f"arbiter granted masters {i} and {j} simultaneously",
                )
            )

    # A grant rises only for a requesting master.
    for i in range(n_masters):
        directives.append(
            _assert(
                f"gnt_implies_req_{i}",
                f"always (rose(gnt{i}) -> req{i})",
                f"GNT#{i} without REQ#{i}",
            )
        )

    # FRAME# implies ownership; ownership is exclusive.
    directives.append(
        _assert(
            "frame_has_owner",
            "always (frame -> !bus_idle)",
            "FRAME# asserted on an idle bus",
        )
    )
    for i in range(n_masters):
        for j in range(i + 1, n_masters):
            directives.append(
                _assert(
                    f"mutex_owner_{i}_{j}",
                    f"never (owner{i} && owner{j})",
                    "two initiators drive the bus",
                )
            )

    # Target protocol invariants.
    for j in range(n_targets):
        directives.append(
            _assert(
                f"trdy_implies_devsel_{j}",
                f"always (trdy{j} -> devsel{j})",
                f"target {j}: TRDY# without DEVSEL#",
            )
        )
        directives.append(
            _assert(
                f"stop_excludes_trdy_{j}",
                f"never (stop{j} && trdy{j})",
                f"target {j}: STOP# and TRDY# together",
            )
        )

    # Initiator protocol invariants.
    for i in range(n_masters):
        directives.append(
            _assert(
                f"data_needs_irdy_{i}",
                f"always (master{i}_data -> (owner{i} && irdy))",
                f"master {i} in data phase without IRDY#/ownership",
            )
        )
        directives.append(
            _assert(
                f"req_excludes_owner_{i}",
                f"never (req{i} && owner{i})",
                f"master {i} requests while owning the bus",
            )
        )
    return directives


# ---------------------------------------------------------------------------
# Timed suite: clocked simulation only
# ---------------------------------------------------------------------------


def pci_timed_properties(n_masters: int, n_targets: int) -> List[Directive]:
    """Bounded-response properties (cycle-accurate, ABV only)."""
    directives: List[Directive] = []
    window = DEVSEL_TIMEOUT_CYCLES - 1
    directives.append(
        _assert(
            "devsel_after_frame",
            "always {rose(frame)} |=> "
            f"{{ {{!devsel && !stop_any && frame}}[*0:{window}] ; "
            "(devsel || stop_any || !frame) }",
            "no DEVSEL#/STOP# within the decode window",
        )
    )
    directives.append(
        _assert(
            "stop_backoff",
            "always {stop_addressed && frame && irdy} |=> {true[*0:2] ; !frame}",
            "initiator ignored STOP# of the addressed target",
        )
    )
    return directives


def pci_safety_properties(n_masters: int, n_targets: int) -> List[Directive]:
    """The full simulation (ABV) suite: invariants + timed."""
    return pci_invariant_properties(n_masters, n_targets) + pci_timed_properties(
        n_masters, n_targets
    )


def pci_cover_properties(n_masters: int, n_targets: int) -> List[Directive]:
    """Coverage goals: every transaction scenario actually occurs."""
    directives: List[Directive] = []
    for i in range(n_masters):
        directives.append(
            Directive(
                DirectiveKind.COVER,
                Property(
                    f"cover_txn_{i}",
                    parse_formula(f"{{req{i} ; gnt{i}[->1] ; owner{i}[->1]}}"),
                ),
            )
        )
    directives.append(
        Directive(
            DirectiveKind.COVER,
            Property("cover_stop", parse_formula("{stop_any}")),
        )
    )
    return directives


# ---------------------------------------------------------------------------
# Liveness (model checking only -- paper Section 4's motivation)
# ---------------------------------------------------------------------------


def request_trigger(master_index: int):
    """Trigger predicate: master ``i`` is requesting."""

    def trigger(key: StateKey) -> bool:
        return key.value(f"master{master_index}", "m_req") is True

    return trigger


def grant_goal(master_index: int):
    """Goal predicate: the arbiter granted master ``i``."""

    def goal(key: StateKey) -> bool:
        return (
            key.value("arbiter", "m_gnt") is True
            and key.value("arbiter", "m_ActiveMaster") == master_index
        )

    return goal


def transaction_goal(master_index: int):
    """Goal predicate: master ``i`` reached its address phase."""

    def goal(key: StateKey) -> bool:
        return key.value("bus", "m_owner") == master_index

    return goal
