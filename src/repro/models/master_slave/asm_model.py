"""The generic Master/Slave bus as an ASM model program.

"The SystemC Master/Slave bus represents a more generic bus structure
including a set of Masters, a set of slaves, an arbiter and a shared
bus.  The arbiter is responsible for choosing the appropriate master
when there is more than one connected to the bus.  There are two
possible modes for the bus: (1) Blocking Mode, where data is moved
through the bus in a burst-mode; and (2) Non-Blocking Mode, where the
master reads or writes a single data word." (paper, Section 4.1)

Modeling choices mirroring Table 2's shape:

* master machines dominate the state space (their request/transfer
  FSMs interleave),
* slaves contribute mostly *transitions* (they enlarge the address
  domain) and only a little state (a busy flag) -- in Table 2 the node
  count grows mildly with the slave count while transitions grow
  faster,
* slave memory contents are excluded from the FSM state key
  (``state_variable=False``): the paper's state-variable selection
  lever against explosion.
"""

from __future__ import annotations

import enum
from typing import Dict, List

from ...asm.collections_ import Map
from ...asm.domains import Domain
from ...asm.machine import (
    SEQUENTIAL,
    AsmMachine,
    AsmModel,
    StateVar,
    action,
    choose_min,
    require,
)

#: Burst length of blocking transfers at the transaction level.
BLOCKING_BURST = 2

SYSTEM_INIT = "system_init"


class MsMasterState(enum.Enum):
    IDLE = "idle"
    WANT = "want"          # request posted to the arbiter
    OWNER = "owner"        # bus granted, transfer in progress
    DONE = "done"          # transfer finished, releasing


class MsBusSystem(AsmMachine):
    """Rule R2 init machine for the Master/Slave model."""

    m_initialized = StateVar(False)

    @action
    def init(self):
        require(not self.m_initialized, "already initialized")
        model = self.model
        require(model.machines_of(MsMaster), "no masters instantiated")
        require(model.machines_of(MsSlave), "no slaves instantiated")
        require(len(model.machines_of(MsArbiter)) == 1, "need one arbiter")
        self.m_initialized = True
        model.set_global(SYSTEM_INIT, True)


class MsArbiter(AsmMachine):
    """Chooses the appropriate master when several request."""

    m_owner = StateVar(-1, doc="index of the master holding the bus")

    @action
    def grant(self):
        require(self.model.get_global(SYSTEM_INIT), "system not initialized")
        require(self.m_owner == -1, "bus already granted")
        masters = self.model.machines_of(MsMaster)
        ids = [i for i, m in enumerate(masters) if m.m_state is MsMasterState.WANT]
        require(ids, "no pending request")
        winner = choose_min(ids)
        self.m_owner = winner
        masters[winner].m_state = MsMasterState.OWNER

    @action
    def release(self):
        require(self.m_owner != -1)
        masters = self.model.machines_of(MsMaster)
        require(
            masters[self.m_owner].m_state is MsMasterState.DONE,
            "owner still transferring",
        )
        masters[self.m_owner].m_state = MsMasterState.IDLE
        self.m_owner = -1

    @action(group="coarse", mode=SEQUENTIAL)
    def grant_and_transfer(self, slave: int, is_write: bool):
        """Coarse-granularity action: arbitration, the whole transfer
        (burst for blocking masters, one word for non-blocking) and the
        release fused into one atomic step.

        This is the paper's "set of actions" lever: with exploration
        restricted to ``request`` + this action, FSM sizes land in
        Table 2's range while the request interleavings -- the part the
        arbitration properties quantify over -- stay fully explored.
        """
        require(self.model.get_global(SYSTEM_INIT), "system not initialized")
        require(self.m_owner == -1, "bus already granted")
        masters = self.model.machines_of(MsMaster)
        slaves = self.model.machines_of(MsSlave)
        require(0 <= slave < len(slaves), "unmapped slave")
        ids = [i for i, m in enumerate(masters) if m.m_state is MsMasterState.WANT]
        require(ids, "no pending request")
        winner = choose_min(ids)
        master = masters[winner]
        words = BLOCKING_BURST if master.m_blocking else 1
        target = slaves[slave]
        for _ in range(words):
            if is_write:
                target.write_word(winner)
            else:
                target.read_word()
        master.m_state = MsMasterState.IDLE


class MsMaster(AsmMachine):
    """A master in blocking (burst) or non-blocking (single word) mode."""

    m_state = StateVar(MsMasterState.IDLE)
    m_blocking = StateVar(False, state_variable=False, doc="mode flag (static)")
    m_slave = StateVar(-1, doc="addressed slave of the running transfer")
    m_words_left = StateVar(0, doc="remaining words of the burst")
    m_is_write = StateVar(False, doc="direction of the running transfer")

    def __init__(self, index: int, blocking: bool, name: str | None = None, model=None):
        prefix = "bmaster" if blocking else "nbmaster"
        super().__init__(name=name or f"{prefix}{index}", model=model)
        self.index = index
        self.m_blocking = blocking

    @action
    def request(self):
        """Post a transfer request to the arbiter."""
        require(self.model.get_global(SYSTEM_INIT), "system not initialized")
        require(self.m_state is MsMasterState.IDLE)
        self.m_state = MsMasterState.WANT

    @action
    def start_transfer(self, slave: int, is_write: bool):
        """Begin moving data once the arbiter granted the bus."""
        require(self.m_state is MsMasterState.OWNER)
        require(self.m_words_left == 0, "transfer already running")
        slaves = self.model.machines_of(MsSlave)
        require(0 <= slave < len(slaves), "unmapped slave")
        require(not slaves[slave].m_busy, "slave busy")
        slaves[slave].m_busy = True
        self.m_slave = slave
        self.m_is_write = is_write
        self.m_words_left = BLOCKING_BURST if self.m_blocking else 1

    @action
    def transfer_word(self):
        """Move one word (burst-mode masters repeat this)."""
        require(self.m_state is MsMasterState.OWNER)
        require(self.m_words_left > 0)
        slaves = self.model.machines_of(MsSlave)
        slave = slaves[self.m_slave]
        require(slave.m_busy, "slave dropped the transfer")
        remaining = self.m_words_left - 1
        if self.m_is_write:
            slave.write_word(self.index)
        else:
            slave.read_word()
        self.m_words_left = remaining
        if remaining == 0:
            slave.m_busy = False
            self.m_slave = -1
            self.m_state = MsMasterState.DONE


class MsSlave(AsmMachine):
    """A memory-mapped slave."""

    m_busy = StateVar(False, doc="a transfer addresses this slave")
    #: memory contents stay out of the FSM state key (selection lever)
    m_memory = StateVar(Map(), state_variable=False)
    m_reads = StateVar(0, state_variable=False)
    m_writes = StateVar(0, state_variable=False)

    def __init__(self, index: int, name: str | None = None, model=None):
        super().__init__(name=name or f"slave{index}", model=model)
        self.index = index

    def write_word(self, master_index: int) -> None:
        self.m_memory = self.m_memory.set(self.m_writes, master_index)
        self.m_writes = self.m_writes + 1

    def read_word(self) -> None:
        self.m_reads = self.m_reads + 1


def build_master_slave_model(
    n_blocking: int,
    n_non_blocking: int,
    n_slaves: int,
) -> AsmModel:
    """Assemble and seal a Master/Slave ASM model (rule R1)."""
    model = AsmModel(f"ms_{n_blocking}b_{n_non_blocking}nb_{n_slaves}s")
    MsBusSystem(model=model, name="system")
    index = 0
    for _ in range(n_blocking):
        MsMaster(index, blocking=True, model=model, name=f"master{index}")
        index += 1
    for _ in range(n_non_blocking):
        MsMaster(index, blocking=False, model=model, name=f"master{index}")
        index += 1
    for slave_index in range(n_slaves):
        MsSlave(slave_index, model=model)
    MsArbiter(model=model, name="arbiter")
    model.seal()
    return model


def master_slave_domains(n_slaves: int) -> Dict[str, Domain]:
    """Rule R4 domains for exploration (fine and coarse action sets)."""
    slaves = Domain.int_range("slaves", 0, n_slaves - 1)
    direction = Domain.boolean("direction")
    return {
        "start_transfer.slave": slaves,
        "start_transfer.is_write": direction,
        "grant_and_transfer.slave": slaves,
        "grant_and_transfer.is_write": direction,
    }


def master_slave_init_call() -> str:
    return "system.init"


def ms_coarse_actions(n_masters: int) -> list[str]:
    """Paper-scale action whitelist: requests + atomic transfers."""
    actions = ["system.init"]
    actions += [f"master{i}.request" for i in range(n_masters)]
    actions.append("arbiter.grant_and_transfer")
    return actions
