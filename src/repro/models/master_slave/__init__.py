"""The generic Master/Slave bus case study (paper Section 4, Table 2)."""

from .asm_model import (
    BLOCKING_BURST,
    MsArbiter,
    MsBusSystem,
    MsMaster,
    MsMasterState,
    MsSlave,
    build_master_slave_model,
    master_slave_domains,
    master_slave_init_call,
    ms_coarse_actions,
)
from .properties import (
    ms_cover_properties,
    ms_invariant_properties,
    ms_letter_from_model,
    ms_timed_properties,
    owner_goal,
    want_trigger,
)
from .scenario import (
    FaultyMsSlave,
    MsReferenceAdapter,
    MsScenarioSystem,
    MsSequenceMaster,
)
from .systemc_model import (
    MS_CLOCK_PERIOD_PS,
    MsArbiterModule,
    MsMasterModule,
    MsSignals,
    MsSlaveModule,
    MsSystemModel,
)

from .duv import build_duv
from ...workbench.registry import register_model

#: the Workbench knows this case study as "master_slave"
register_model("master_slave", build_duv)

__all__ = [
    "build_duv",
    "BLOCKING_BURST",
    "MsArbiter",
    "MsBusSystem",
    "MsMaster",
    "MsMasterState",
    "MsSlave",
    "build_master_slave_model",
    "master_slave_domains",
    "master_slave_init_call",
    "ms_coarse_actions",
    "ms_cover_properties",
    "ms_invariant_properties",
    "ms_letter_from_model",
    "ms_timed_properties",
    "owner_goal",
    "want_trigger",
    "MS_CLOCK_PERIOD_PS",
    "MsArbiterModule",
    "MsMasterModule",
    "MsSignals",
    "MsSlaveModule",
    "MsSystemModel",
    "FaultyMsSlave",
    "MsReferenceAdapter",
    "MsScenarioSystem",
    "MsSequenceMaster",
]
