"""The generic Master/Slave bus case study (paper Section 4, Table 2)."""

from .asm_model import (
    BLOCKING_BURST,
    MsArbiter,
    MsBusSystem,
    MsMaster,
    MsMasterState,
    MsSlave,
    build_master_slave_model,
    master_slave_domains,
    master_slave_init_call,
    ms_coarse_actions,
)
from .properties import (
    ms_cover_properties,
    ms_invariant_properties,
    ms_letter_from_model,
    ms_timed_properties,
    owner_goal,
    want_trigger,
)
from .scenario import (
    FaultyMsSlave,
    MsReferenceAdapter,
    MsScenarioSystem,
    MsSequenceMaster,
)
from .systemc_model import (
    MS_CLOCK_PERIOD_PS,
    MsArbiterModule,
    MsMasterModule,
    MsSignals,
    MsSlaveModule,
    MsSystemModel,
)

__all__ = [
    "BLOCKING_BURST",
    "MsArbiter",
    "MsBusSystem",
    "MsMaster",
    "MsMasterState",
    "MsSlave",
    "build_master_slave_model",
    "master_slave_domains",
    "master_slave_init_call",
    "ms_coarse_actions",
    "ms_cover_properties",
    "ms_invariant_properties",
    "ms_letter_from_model",
    "ms_timed_properties",
    "owner_goal",
    "want_trigger",
    "MS_CLOCK_PERIOD_PS",
    "MsArbiterModule",
    "MsMasterModule",
    "MsSignals",
    "MsSlaveModule",
    "MsSystemModel",
    "FaultyMsSlave",
    "MsReferenceAdapter",
    "MsScenarioSystem",
    "MsSequenceMaster",
]
