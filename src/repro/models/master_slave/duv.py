"""The Master/Slave bus as a registered design-under-verification."""

from __future__ import annotations

from ...explorer.config import ExplorationConfig
from ...workbench.duv import DUV, LivenessCheck
from .asm_model import (
    build_master_slave_model,
    master_slave_domains,
    master_slave_init_call,
    ms_coarse_actions,
)
from .properties import (
    ms_invariant_properties,
    ms_letter_from_model,
    ms_timed_properties,
    served_goal,
    want_trigger,
)
from .systemc_model import MS_CLOCK_PERIOD_PS, MsSystemModel


def build_duv(
    n_blocking: int = 1,
    n_non_blocking: int = 1,
    n_slaves: int = 2,
    max_states: int = 50_000,
    max_transitions: int = 500_000,
) -> DUV:
    """The Table 2 case study as one Workbench bundle."""
    n_masters = n_blocking + n_non_blocking
    blocking_flags = [True] * n_blocking + [False] * n_non_blocking
    return DUV(
        name="master_slave",
        description=(
            f"Generic Master/Slave bus, {n_blocking} blocking + "
            f"{n_non_blocking} non-blocking masters, {n_slaves} slaves "
            "(paper Table 2)"
        ),
        model_factory=lambda: build_master_slave_model(
            n_blocking, n_non_blocking, n_slaves
        ),
        directives=ms_invariant_properties(n_masters, n_slaves),
        extractor=ms_letter_from_model,
        exploration=ExplorationConfig(
            domains=master_slave_domains(n_slaves),
            init_action=master_slave_init_call(),
            actions=ms_coarse_actions(n_masters),
            max_states=max_states,
            max_transitions=max_transitions,
        ),
        liveness_checks=(
            LivenessCheck("served0", want_trigger(0), served_goal(0)),
        ),
        systemc_factory=lambda seed: MsSystemModel(
            n_blocking, n_non_blocking, n_slaves, seed=seed
        ),
        simulation_directives=(
            ms_invariant_properties(n_masters, n_slaves, include_handshake=False)
            + ms_timed_properties(n_masters, n_slaves, blocking_flags)
        ),
        scenario_model="master_slave",
        clock_period_ps=MS_CLOCK_PERIOD_PS,
        metadata={"topology": (n_blocking, n_non_blocking, n_slaves)},
    )
