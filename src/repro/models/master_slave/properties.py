"""Property suite for the Master/Slave bus.

Same structure as the PCI suite: a canonical signal namespace shared
by the ASM extractor and the SystemC model, an invariant sub-suite
(model checking + simulation), a timed sub-suite (simulation only) and
liveness predicates (FSM analysis only).

Canonical signals:

=========================  ==================================================
``want<i>``                master i posted a request
``owner<i>``               arbiter granted master i
``transferring<i>``        master i is moving words
``bus_free``               no master owns the bus
``slave<j>_busy``          slave j is addressed by a running transfer
``blocking<i>``            master i is a blocking-mode master (static)
=========================  ==================================================
"""

from __future__ import annotations

from typing import Any, Dict, List

from ...asm.machine import AsmModel
from ...asm.state import StateKey
from ...psl.ast_nodes import Directive, DirectiveKind, Property
from ...psl.parser import parse_formula
from .asm_model import MsArbiter, MsMaster, MsMasterState, MsSlave


def ms_letter_from_model(model: AsmModel) -> Dict[str, Any]:
    """Canonical signal valuation from the ASM state."""
    masters: List[MsMaster] = model.machines_of(MsMaster)  # type: ignore[assignment]
    slaves: List[MsSlave] = model.machines_of(MsSlave)  # type: ignore[assignment]
    arbiter: MsArbiter = model.machines_of(MsArbiter)[0]  # type: ignore[assignment]

    letter: Dict[str, Any] = {
        "bus_free": arbiter.m_owner == -1,
    }
    for index, master in enumerate(masters):
        letter[f"want{index}"] = master.m_state is MsMasterState.WANT
        letter[f"owner{index}"] = arbiter.m_owner == index
        letter[f"transferring{index}"] = (
            master.m_state is MsMasterState.OWNER and master.m_words_left > 0
        )
        letter[f"blocking{index}"] = bool(master.m_blocking)
        letter[f"done{index}"] = master.m_state is MsMasterState.DONE
    for index, slave in enumerate(slaves):
        letter[f"slave{index}_busy"] = slave.m_busy
    return letter


def _assert(name: str, text: str, report: str = "") -> Directive:
    return Directive(
        DirectiveKind.ASSERT, Property(name, parse_formula(text), report=report)
    )


def ms_invariant_properties(
    n_masters: int, n_slaves: int, include_handshake: bool = True
) -> List[Directive]:
    """Untimed safety: checked at both levels.

    ``include_handshake`` adds the atomic-handshake invariants that
    hold at the ASM level (grant and request-clear happen in one step)
    but not at the clocked level, where the want/owner handshake takes
    a cycle; the clocked formulation of the same contract is
    ``grant_clears_want``, included at both levels.
    """
    directives: List[Directive] = []

    # Ownership is mutually exclusive (the arbiter "chooses the
    # appropriate master").
    for i in range(n_masters):
        for j in range(i + 1, n_masters):
            directives.append(
                _assert(
                    f"mutex_owner_{i}_{j}",
                    f"never (owner{i} && owner{j})",
                    "two masters own the bus",
                )
            )

    # A transfer requires ownership.
    for i in range(n_masters):
        directives.append(
            _assert(
                f"transfer_needs_grant_{i}",
                f"always (transferring{i} -> owner{i})",
                f"master {i} transfers without a grant",
            )
        )

    # Ownership rises only from a posted request.
    for i in range(n_masters):
        directives.append(
            _assert(
                f"owner_implies_want_{i}",
                f"always (rose(owner{i}) -> prev(want{i}))",
                f"master {i} granted without requesting",
            )
        )

    # A busy slave implies some master is transferring.
    for j in range(n_slaves):
        directives.append(
            _assert(
                f"slave_busy_has_master_{j}",
                f"always (slave{j}_busy -> !bus_free)",
                f"slave {j} busy with no bus owner",
            )
        )

    # A grant clears the request within a cycle (both levels).
    for i in range(n_masters):
        directives.append(
            _assert(
                f"grant_clears_want_{i}",
                f"always {{rose(owner{i})}} |=> {{!want{i}}}",
                f"master {i} kept requesting after its grant",
            )
        )

    if include_handshake:
        # Want and own are exclusive per master (atomic-step semantics).
        for i in range(n_masters):
            directives.append(
                _assert(
                    f"want_excludes_owner_{i}",
                    f"never (want{i} && owner{i})",
                    f"master {i} both waiting and owning",
                )
            )
    return directives


def ms_timed_properties(
    n_masters: int, n_slaves: int, blocking_flags: List[bool]
) -> List[Directive]:
    """Cycle-accurate properties for the clocked simulation.

    Burst atomicity: once a blocking master starts transferring, it
    keeps the bus for exactly ``BLOCKING_BURST`` consecutive data
    cycles (the "data moved through the bus in a burst-mode" contract).
    """
    from .asm_model import BLOCKING_BURST

    directives: List[Directive] = []
    for i in range(n_masters):
        if blocking_flags[i]:
            directives.append(
                _assert(
                    f"burst_atomic_{i}",
                    f"always {{rose(transferring{i})}} |-> "
                    f"{{transferring{i}[*{BLOCKING_BURST}]}}",
                    f"blocking master {i} lost the bus mid-burst",
                )
            )
        else:
            # One word may stretch over slave wait states (at most one
            # in this system), so the bus must be released within three
            # cycles of the transfer starting.
            directives.append(
                _assert(
                    f"single_word_{i}",
                    f"always {{rose(transferring{i})}} |=> "
                    f"{{true[*0:2] ; !transferring{i}}}",
                    f"non-blocking master {i} held the bus beyond one word",
                )
            )
    return directives


def ms_cover_properties(n_masters: int, n_slaves: int) -> List[Directive]:
    directives: List[Directive] = []
    for i in range(n_masters):
        directives.append(
            Directive(
                DirectiveKind.COVER,
                Property(
                    f"cover_grant_{i}",
                    parse_formula(f"{{want{i} ; owner{i}[->1]}}"),
                ),
            )
        )
    for j in range(n_slaves):
        directives.append(
            Directive(
                DirectiveKind.COVER,
                Property(f"cover_slave_{j}", parse_formula(f"{{slave{j}_busy}}")),
            )
        )
    return directives


# -- liveness predicates (FSM analysis) ----------------------------------------


def want_trigger(master_index: int):
    def trigger(key: StateKey) -> bool:
        return key.value(f"master{master_index}", "m_state") is MsMasterState.WANT

    return trigger


def owner_goal(master_index: int):
    """Goal for fine-grained exploration: the arbiter's owner register
    points at the master (the coarse atomic transfer never exposes an
    intermediate owner state -- use :func:`served_goal` there)."""

    def goal(key: StateKey) -> bool:
        return key.value("arbiter", "m_owner") == master_index

    return goal


def served_goal(master_index: int):
    """Goal for coarse-grained exploration: the master returned to IDLE,
    which (from WANT) only happens through a completed transfer."""

    def goal(key: StateKey) -> bool:
        return (
            key.value(f"master{master_index}", "m_state") is MsMasterState.IDLE
        )

    return goal
