"""The Master/Slave bus as a clocked SystemC simulation model.

Mirrors the SystemC 2.0 distribution's bus example the paper extends:
an arbiter, a shared bus with *blocking* (burst) and *non-blocking*
(single word) master interfaces, and memory slaves.  Blocking masters
move ``BLOCKING_BURST`` words back-to-back while holding the bus;
non-blocking masters move one word per grant and poll their status.

The module set exposes the canonical signal namespace of
:mod:`.properties` so the very same directives verified at the ASM
level bind as runtime assertion monitors here.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List

from ...sysc.bus import BusMode, BusStatistics, BusStatus, Transaction, TxnIdAllocator
from ...sysc.clock import Clock
from ...sysc.kernel import Simulator
from ...sysc.module import Module
from ...sysc.signal import Signal
from .asm_model import BLOCKING_BURST

#: Default clock period (ps): same 30ns base as the PCI study.
MS_CLOCK_PERIOD_PS = 30_000


class MsSignals:
    """Shared request/grant/transfer wires."""

    def __init__(self, simulator: Simulator, n_masters: int, n_slaves: int):
        self.want = [Signal(False, f"want{i}", simulator) for i in range(n_masters)]
        # repro: allow[race.multi-driver] arbiter grants, the granted master releases; the want/transferring handshake guarantees a single writer per delta
        self.owner = Signal(-1, "owner", simulator)
        self.transferring = [
            Signal(False, f"transferring{i}", simulator) for i in range(n_masters)
        ]
        # repro: allow[race.multi-driver] only the bus owner touches slave_busy and ownership is serialized by the arbiter grant
        self.slave_busy = [
            Signal(False, f"slave{j}_busy", simulator) for j in range(n_slaves)
        ]


class MsArbiterModule(Module):
    """Grants the bus to the lowest-index requesting master."""

    def __init__(self, name: str, sim: Simulator, clock: Clock, wires: MsSignals):
        super().__init__(name, sim)
        self.clock = clock
        self._posedge = clock.posedge_event
        self.wires = wires
        self.grants = 0
        self.thread(self.run)

    def run(self):
        wires = self.wires
        owner = wires.owner
        want = wires.want
        posedge = self._posedge
        while True:
            yield posedge
            if owner.read() != -1:
                continue
            for index, wanting in enumerate(want):
                if wanting.read():
                    owner.write(index)
                    self.grants += 1
                    break

    def checkpoint_state(self) -> dict:
        """Snapshot of the arbiter's inter-cycle state.

        The grant loop re-derives everything from the wires each
        posedge, so the only state to carry is the grant counter.
        """
        return {"grants": self.grants}

    def restore_state(self, doc: dict) -> None:
        """Adopt a :meth:`checkpoint_state` document."""
        self.grants = doc["grants"]


class MsSlaveModule(Module):
    """A memory slave with configurable wait states."""

    def __init__(
        self,
        index: int,
        sim: Simulator,
        clock: Clock,
        wires: MsSignals,
        wait_states: int = 0,
    ):
        super().__init__(f"slave{index}", sim)
        self.index = index
        self.clock = clock
        self._posedge = clock.posedge_event
        self.wires = wires
        self.wait_states = wait_states
        self.memory: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0

    # Called by masters through the bus (function-call interface, the
    # way the SystemC bus example's slaves are invoked).
    def access(self, address: int, data: int | None) -> int:
        if data is None:
            self.reads += 1
            return self.memory.get(address, 0)
        self.writes += 1
        self.memory[address] = data
        return data

    def checkpoint_state(self) -> dict:
        """Snapshot of the memory array and access counters."""
        return {
            "memory": {str(k): v for k, v in self.memory.items()},
            "reads": self.reads,
            "writes": self.writes,
        }

    def restore_state(self, doc: dict) -> None:
        """Adopt a :meth:`checkpoint_state` document."""
        self.memory = {int(k): v for k, v in doc["memory"].items()}
        self.reads = doc["reads"]
        self.writes = doc["writes"]


class MsMasterModule(Module):
    """A master in blocking or non-blocking mode."""

    def __init__(
        self,
        index: int,
        blocking: bool,
        sim: Simulator,
        clock: Clock,
        wires: MsSignals,
        slaves: List[MsSlaveModule],
        seed: int,
        max_idle: int = 3,
        txn_ids: TxnIdAllocator | None = None,
    ):
        kind = "bmaster" if blocking else "nbmaster"
        super().__init__(f"{kind}{index}", sim)
        self.index = index
        self.blocking = blocking
        self.clock = clock
        self._posedge = clock.posedge_event
        self.wires = wires
        self.slaves = slaves
        self.random = random.Random(seed)
        self.max_idle = max_idle
        self.txn_ids = txn_ids or TxnIdAllocator()
        self.transactions: List[Transaction] = []
        self.words_moved = 0
        self.wait_cycles = 0
        self.thread(self.run)

    def run(self):
        wires = self.wires
        while True:
            for _ in range(self.random.randrange(1, self.max_idle + 1)):
                yield self._posedge
            slave_index = self.random.randrange(len(self.slaves))
            is_write = self.random.random() < 0.5
            burst = BLOCKING_BURST if self.blocking else 1
            transaction = Transaction(
                master=self.name,
                address=slave_index * 0x100 + self.random.randrange(16),
                is_write=is_write,
                data=tuple(range(burst)),
                mode=BusMode.BLOCKING if self.blocking else BusMode.NON_BLOCKING,
                start_cycle=self.clock.cycle_count,
                txn_id=self.txn_ids.allocate(),
            )
            # request
            wires.want[self.index].write(True)
            yield self._posedge
            while wires.owner.read() != self.index:
                self.wait_cycles += 1
                yield self._posedge
            wires.want[self.index].write(False)
            # wait until the slave is free (single-slave port here)
            slave = self.slaves[slave_index]
            while wires.slave_busy[slave_index].read():
                self.wait_cycles += 1
                yield self._posedge
            wires.slave_busy[slave_index].write(True)
            wires.transferring[self.index].write(True)
            # move the words (one per cycle, plus slave wait states)
            for word in range(burst):
                for _ in range(slave.wait_states):
                    yield self._posedge
                address = transaction.address + word
                # repro: allow[race.shared-state] only the granted master reaches the data phase, so slave bookkeeping has one writer per delta
                slave.access(address, word if is_write else None)
                self.words_moved += 1
                yield self._posedge
            # release
            wires.transferring[self.index].write(False)
            wires.slave_busy[slave_index].write(False)
            wires.owner.write(-1)
            transaction.end_cycle = self.clock.cycle_count
            transaction.status = BusStatus.OK
            self.transactions.append(transaction)
            yield self._posedge


class MsSystemModel:
    """Top level: clock + arbiter + mixed masters + slaves."""

    def __init__(
        self,
        n_blocking: int,
        n_non_blocking: int,
        n_slaves: int,
        seed: int = 2005,
        clock_period: int = MS_CLOCK_PERIOD_PS,
    ):
        self.n_blocking = n_blocking
        self.n_non_blocking = n_non_blocking
        self.n_masters = n_blocking + n_non_blocking
        self.n_slaves = n_slaves
        self.simulator = Simulator(
            f"ms_{n_blocking}b_{n_non_blocking}nb_{n_slaves}s"
        )
        self.clock = Clock("bus_clk", clock_period, self.simulator)
        self.wires = MsSignals(self.simulator, self.n_masters, n_slaves)
        self.txn_ids = TxnIdAllocator()
        self.slaves = [
            MsSlaveModule(
                j, self.simulator, self.clock, self.wires, wait_states=j % 2
            )
            for j in range(n_slaves)
        ]
        self.masters: List[MsMasterModule] = []
        index = 0
        for _ in range(n_blocking):
            self.masters.append(
                MsMasterModule(
                    index, True, self.simulator, self.clock, self.wires,
                    self.slaves, seed + index, txn_ids=self.txn_ids,
                )
            )
            index += 1
        for _ in range(n_non_blocking):
            self.masters.append(
                MsMasterModule(
                    index, False, self.simulator, self.clock, self.wires,
                    self.slaves, seed + index, txn_ids=self.txn_ids,
                )
            )
            index += 1
        self.arbiter = MsArbiterModule(
            "arbiter", self.simulator, self.clock, self.wires
        )

    @property
    def blocking_flags(self) -> List[bool]:
        return [m.blocking for m in self.masters]

    def letter(self) -> Dict[str, Any]:
        wires = self.wires
        letter: Dict[str, Any] = {"bus_free": wires.owner.read() == -1}
        for i in range(self.n_masters):
            letter[f"want{i}"] = wires.want[i].read()
            letter[f"owner{i}"] = wires.owner.read() == i
            letter[f"transferring{i}"] = wires.transferring[i].read()
            letter[f"blocking{i}"] = self.masters[i].blocking
            letter[f"done{i}"] = False  # simulation-level masters do not park
        for j in range(self.n_slaves):
            letter[f"slave{j}_busy"] = wires.slave_busy[j].read()
        return letter

    def run_cycles(self, cycles: int) -> None:
        self.simulator.run(self.clock.period * cycles)

    def collect_statistics(self) -> BusStatistics:
        stats = BusStatistics()
        for master in self.masters:
            for transaction in master.transactions:
                stats.record(transaction)
            stats.wait_cycles += master.wait_cycles
        stats.arbitration_rounds = self.arbiter.grants
        return stats
