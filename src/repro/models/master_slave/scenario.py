"""Scenario driving for the Master/Slave bus.

Sequence-driven stimulus and scoreboard binding for the Table 2 model:

* :class:`MsSequenceMaster` -- a master that executes
  :class:`~repro.scenarios.sequences.SequenceItem` stimulus instead of
  free-running random traffic.  Blocking masters move the item as a
  ``BLOCKING_BURST`` burst, non-blocking masters move one word --
  exactly the two modes of the paper's Section 4.1 bus -- and, unlike
  the free-running master, capture read data so the scoreboard can
  check payload integrity, not just protocol shape.
* :class:`FaultyMsSlave` -- a slave with an injectable read-corruption
  defect (:class:`~repro.scenarios.scoreboard.FaultPlan`), used to
  prove the scoreboard detects divergence.
* :class:`MsScenarioSystem` -- clock + arbiter + sequence masters +
  slaves, exposing the canonical property namespace of
  :mod:`.properties` so assertion monitors bind unchanged.
* :class:`MsReferenceAdapter` -- replays every completed transaction
  on the *verified ASM model* (request / grant / start_transfer /
  transfer_word... / release) and keeps a golden memory.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ...scenarios.random_ import ScenarioRng
from ...scenarios.scoreboard import (
    DivergenceKind,
    FaultPlan,
    Mismatch,
    ReferenceAdapter,
    ScenarioSystem,
)
from ...scenarios.sequences import Sequence, SequenceItem, StimulusContext
from ...sysc.bus import BusMode, BusStatus, Transaction, TxnIdAllocator
from ...sysc.clock import Clock
from ...sysc.kernel import Simulator
from ...sysc.module import Module
from .asm_model import BLOCKING_BURST, MsSlave, build_master_slave_model
from .systemc_model import MS_CLOCK_PERIOD_PS, MsArbiterModule, MsSignals, MsSlaveModule


class FaultyMsSlave(MsSlaveModule):
    """A slave whose data path corrupts reads from the ``nth`` read on
    (bit 0 flipped) -- the classic single-event-upset injection."""

    def __init__(self, *args, corrupt_from_nth_read: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        self.corrupt_from_nth_read = corrupt_from_nth_read
        self.reads_served = 0

    def access(self, address: int, data: int | None) -> int:
        value = super().access(address, data)
        if data is None:
            self.reads_served += 1
            if self.reads_served >= self.corrupt_from_nth_read:
                return value ^ 0x1
        return value

    def checkpoint_state(self) -> Dict[str, Any]:
        doc = super().checkpoint_state()
        doc["reads_served"] = self.reads_served
        return doc

    def restore_state(self, doc: Dict[str, Any]) -> None:
        super().restore_state(doc)
        self.reads_served = doc["reads_served"]


class MsSequenceMaster(Module):
    """A Master/Slave initiator executing a sequence of items.

    The protocol runs as an explicit phase machine: every wake-up on
    the clock's posedge dispatches handlers keyed by ``self._phase``
    until one *consumes* the cycle, so all mid-transaction state lives
    in attributes instead of a generator frame.  That is what makes
    the master snapshot/restorable (:meth:`checkpoint_state` /
    :meth:`restore_state`): a generator's suspended locals cannot be
    serialized, a phase tag and a handful of counters can.  Handlers
    return True to consume the wake (one ``yield posedge`` in the old
    generator), None to fall through to the next phase in the same
    cycle, and False to park the process for good.
    """

    def __init__(
        self,
        index: int,
        blocking: bool,
        sim: Simulator,
        clock: Clock,
        wires: MsSignals,
        slaves: List[MsSlaveModule],
        items: Iterator[SequenceItem],
        txn_ids: TxnIdAllocator,
        drop_fault: Optional[FaultPlan] = None,
    ):
        super().__init__(f"master{index}", sim)
        self.index = index
        self.blocking = blocking
        self.clock = clock
        self._posedge = clock.posedge_event
        self.wires = wires
        self.slaves = slaves
        self.items = items
        self.txn_ids = txn_ids
        self.drop_fault = drop_fault
        self.records: List[Tuple[Transaction, SequenceItem]] = []
        self.issued = 0
        self.completed = 0
        self.in_flight = False
        self.done = False
        self.words_moved = 0
        self.wait_cycles = 0
        self.items_consumed = 0
        # phase-machine registers (the whole suspended-protocol state)
        self._phase = "fetch"
        self._item: Optional[SequenceItem] = None
        self._txn: Optional[Transaction] = None
        self._idle_left = 0
        self._slave_index = 0
        self._payload: Tuple[int, ...] = ()
        self._words = 0
        self._word = 0
        self._waits_left = 0
        self._read_back: List[int] = []
        self.thread(self.run)

    def _next_item(self) -> Optional[SequenceItem]:
        try:
            item = next(self.items)
        except StopIteration:
            return None
        self.items_consumed += 1
        return item

    def rebind_items(self, items: Iterator[SequenceItem]) -> None:
        """Graft a fresh item stream onto a (possibly exhausted) master.

        Checkpoint forks call this after restore: records and counters
        stay (the scoreboard and FSM replay still see the whole run),
        only the stimulus source is swapped.  A master parked in the
        ``done`` phase wakes back into ``fetch`` on its next posedge.
        """
        self.items = items
        self.items_consumed = 0
        if self._phase == "done":
            self.done = False
            self._phase = "fetch"

    def run(self):
        self._dispatch()
        posedge = self._posedge
        while True:
            yield posedge
            self._dispatch()

    def _dispatch(self) -> None:
        """Run phase handlers until one consumes the wake."""
        handlers = self._PHASES
        while handlers[self._phase](self) is None:
            pass

    def _phase_fetch(self) -> Optional[bool]:
        item = self._next_item()
        if item is None:
            self.done = True
            self._phase = "done"
            return None
        self._item = item
        self._idle_left = item.idle
        self._phase = "idle" if item.idle else "post"
        return None

    def _phase_idle(self) -> Optional[bool]:
        if self._idle_left > 0:
            self._idle_left -= 1
            return True
        self._phase = "post"
        return None

    def _phase_post(self) -> Optional[bool]:
        item = self._item
        assert item is not None
        words = BLOCKING_BURST if self.blocking else 1
        self._words = words
        self._word = 0
        self._slave_index = item.target % len(self.slaves)
        offset = min(item.address_offset, 0x100 - words)
        payload = tuple(item.payload[:words])
        while len(payload) < words and item.is_write:
            payload += (0,)
        self._payload = payload
        self._txn = Transaction(
            master=self.name,
            address=self._slave_index * 0x100 + offset,
            is_write=item.is_write,
            data=payload,
            mode=BusMode.BLOCKING if self.blocking else BusMode.NON_BLOCKING,
            start_cycle=self.clock.cycle_count,
            txn_id=self.txn_ids.allocate(),
        )
        self.issued += 1
        self.in_flight = True
        # request / grant handshake (same discipline as the
        # free-running MsMasterModule, so the property suite binds)
        self.wires.want[self.index].write(True)
        self._phase = "grant"
        return True

    def _phase_grant(self) -> Optional[bool]:
        if self.wires.owner.read() != self.index:
            self.wait_cycles += 1
            return True
        self.wires.want[self.index].write(False)
        self._phase = "busy"
        return None

    def _phase_busy(self) -> Optional[bool]:
        busy = self.wires.slave_busy[self._slave_index]
        if busy.read():
            self.wait_cycles += 1
            return True
        busy.write(True)
        self.wires.transferring[self.index].write(True)
        self._read_back = []
        self._word = 0
        self._waits_left = self.slaves[self._slave_index].wait_states
        self._phase = "transfer"
        return None

    def _phase_transfer(self) -> Optional[bool]:
        if self._waits_left > 0:
            self._waits_left -= 1
            return True
        item = self._item
        txn = self._txn
        assert item is not None and txn is not None
        slave = self.slaves[self._slave_index]
        address = txn.address + self._word
        # repro: allow[race.shared-state] only the granted master reaches the data phase, so slave bookkeeping has one writer per delta
        value = slave.access(
            address, self._payload[self._word] if item.is_write else None
        )
        if not item.is_write:
            self._read_back.append(value)
        self.words_moved += 1
        self._word += 1
        if self._word < self._words:
            self._waits_left = slave.wait_states
        else:
            self._phase = "finish"
        return True

    def _phase_finish(self) -> Optional[bool]:
        item = self._item
        txn = self._txn
        assert item is not None and txn is not None
        self.wires.transferring[self.index].write(False)
        self.wires.slave_busy[self._slave_index].write(False)
        self.wires.owner.write(-1)
        if not item.is_write:
            txn.data = tuple(self._read_back)
        txn.end_cycle = self.clock.cycle_count
        txn.status = BusStatus.OK
        self.completed += 1
        self.in_flight = False
        dropped = (
            self.drop_fault is not None
            and self.drop_fault.kind == "drop"
            and self.drop_fault.unit == self.index
            and self.completed == self.drop_fault.nth
        )
        if not dropped:
            self.records.append((txn, item))
        self._phase = "gap"
        return None

    def _phase_gap(self) -> Optional[bool]:
        self._phase = "fetch"
        return True

    def _phase_done(self) -> Optional[bool]:
        # sequence exhausted: the master idles but stays alive, so a
        # checkpoint fork can graft a fresh item stream and restart it
        return True

    _PHASES = {
        "fetch": _phase_fetch,
        "idle": _phase_idle,
        "post": _phase_post,
        "grant": _phase_grant,
        "busy": _phase_busy,
        "transfer": _phase_transfer,
        "finish": _phase_finish,
        "gap": _phase_gap,
        "done": _phase_done,
    }

    # -- checkpoint protocol ------------------------------------------------

    def checkpoint_state(self) -> Dict[str, Any]:
        """Everything a fresh master needs to resume mid-protocol."""
        return {
            "phase": self._phase,
            "item": self._item.to_json() if self._item is not None else None,
            "txn": self._txn.to_json() if self._txn is not None else None,
            "idle_left": self._idle_left,
            "slave_index": self._slave_index,
            "payload": list(self._payload),
            "words": self._words,
            "word": self._word,
            "waits_left": self._waits_left,
            "read_back": list(self._read_back),
            "items_consumed": self.items_consumed,
            "issued": self.issued,
            "completed": self.completed,
            "in_flight": self.in_flight,
            "done": self.done,
            "words_moved": self.words_moved,
            "wait_cycles": self.wait_cycles,
            "records": [
                [txn.to_json(), item.to_json()] for txn, item in self.records
            ],
        }

    def restore_state(self, doc: Dict[str, Any]) -> None:
        """Adopt a :meth:`checkpoint_state` document.

        The item iterator is replayed forward to the recorded
        consumption count (items are derived deterministically from the
        spec seed, so replaying the stream is exact and cheap), then
        the in-flight item/transaction are overwritten from the wire
        form for good measure.
        """
        while self.items_consumed < doc["items_consumed"]:
            if self._next_item() is None:
                break
        self._phase = doc["phase"]
        self._item = (
            SequenceItem.from_json(doc["item"]) if doc["item"] else None
        )
        self._txn = Transaction.from_json(doc["txn"]) if doc["txn"] else None
        self._idle_left = doc["idle_left"]
        self._slave_index = doc["slave_index"]
        self._payload = tuple(doc["payload"])
        self._words = doc["words"]
        self._word = doc["word"]
        self._waits_left = doc["waits_left"]
        self._read_back = list(doc["read_back"])
        self.issued = doc["issued"]
        self.completed = doc["completed"]
        self.in_flight = doc["in_flight"]
        self.done = doc["done"]
        self.words_moved = doc["words_moved"]
        self.wait_cycles = doc["wait_cycles"]
        self.records = [
            (Transaction.from_json(txn), SequenceItem.from_json(item))
            for txn, item in doc["records"]
        ]


class MsScenarioSystem(ScenarioSystem):
    """Top level for one seeded Master/Slave scenario."""

    def __init__(
        self,
        n_blocking: int,
        n_non_blocking: int,
        n_slaves: int,
        sequence: Sequence,
        seed: int,
        fault: Optional[FaultPlan] = None,
        clock_period: int = MS_CLOCK_PERIOD_PS,
        address_span: int = 16,
    ):
        self.n_blocking = n_blocking
        self.n_non_blocking = n_non_blocking
        self.n_masters = n_blocking + n_non_blocking
        self.n_slaves = n_slaves
        self.fault = fault
        self.seed = seed
        self.address_span = address_span
        self.simulator = Simulator(
            f"ms_scenario_{n_blocking}b_{n_non_blocking}nb_{n_slaves}s_seed{seed}"
        )
        self.clock = Clock("bus_clk", clock_period, self.simulator)
        self.wires = MsSignals(self.simulator, self.n_masters, n_slaves)
        self.txn_ids = TxnIdAllocator()
        self.slaves: List[MsSlaveModule] = []
        for j in range(n_slaves):
            if fault is not None and fault.kind == "corrupt-read" and fault.unit == j:
                self.slaves.append(
                    FaultyMsSlave(
                        j, self.simulator, self.clock, self.wires,
                        wait_states=j % 2, corrupt_from_nth_read=fault.nth,
                    )
                )
            else:
                self.slaves.append(
                    MsSlaveModule(
                        j, self.simulator, self.clock, self.wires,
                        wait_states=j % 2,
                    )
                )
        root = ScenarioRng(seed, "ms")
        self.masters: List[MsSequenceMaster] = []
        for index in range(self.n_masters):
            blocking = index < n_blocking
            words = BLOCKING_BURST if blocking else 1
            ctx = StimulusContext(
                n_targets=n_slaves,
                min_burst=words,
                max_burst=words,
                address_span=address_span,
            )
            items = sequence.for_unit(index).items(root.derive(f"master{index}"), ctx)
            self.masters.append(
                MsSequenceMaster(
                    index, blocking, self.simulator, self.clock, self.wires,
                    self.slaves, items, self.txn_ids,
                    drop_fault=fault,
                )
            )
        self.arbiter = MsArbiterModule(
            "arbiter", self.simulator, self.clock, self.wires
        )

    def rebind_sequence(self, sequence: Sequence) -> None:
        """Swap every master's stimulus source for a new sequence.

        The checkpoint fork path: a restored system keeps its bus,
        memory and scoreboard history but plays a *different* goal set
        from here on.  Item streams re-derive from the system seed under
        a distinct rng scope so forks are deterministic yet uncorrelated
        with the original run's draws.
        """
        root = ScenarioRng(self.seed, "ms-fork")
        for index, master in enumerate(self.masters):
            words = BLOCKING_BURST if master.blocking else 1
            ctx = StimulusContext(
                n_targets=self.n_slaves,
                min_burst=words,
                max_burst=words,
                address_span=self.address_span,
            )
            master.rebind_items(
                sequence.for_unit(index).items(root.derive(f"master{index}"), ctx)
            )

    @property
    def blocking_flags(self) -> List[bool]:
        return [m.blocking for m in self.masters]

    def letter(self) -> Dict[str, Any]:
        wires = self.wires
        letter: Dict[str, Any] = {"bus_free": wires.owner.read() == -1}
        for i in range(self.n_masters):
            letter[f"want{i}"] = wires.want[i].read()
            letter[f"owner{i}"] = wires.owner.read() == i
            letter[f"transferring{i}"] = wires.transferring[i].read()
            letter[f"blocking{i}"] = self.masters[i].blocking
            letter[f"done{i}"] = self.masters[i].done
        for j in range(self.n_slaves):
            letter[f"slave{j}_busy"] = wires.slave_busy[j].read()
        return letter

    # -- scoreboard plumbing (generic parts on ScenarioSystem) --------------

    def reference_adapter(self) -> "MsReferenceAdapter":
        return MsReferenceAdapter(
            self.n_blocking, self.n_non_blocking, self.n_slaves
        )

    def coverage_context(self):
        ctx = StimulusContext(
            n_targets=self.n_slaves, min_burst=1, max_burst=BLOCKING_BURST
        )
        return ctx, 0x100, 0

    def fsm_events(self) -> List[Tuple[str, str, tuple]]:
        """The run as coarse ASM events: requests (overlap-aware, see
        :meth:`ScenarioSystem._serialized_fsm_events` for the soundness
        rule) plus one atomic
        ``arbiter.grant_and_transfer(slave, is_write)`` per completed
        transaction -- the ASM's ``choose_min`` matches the SystemC
        arbiter's lowest-index grant, so attribution is consistent.
        """
        return self._serialized_fsm_events(
            lambda txn, owner: [
                (
                    "arbiter",
                    "grant_and_transfer",
                    (txn.address // 0x100, txn.is_write),
                )
            ]
        )


#: idle cycles that land a request inside another master's warm-up
#: transfer (shortest transfer: 2 words, zero wait states, ~4 cycles)
_WARMUP_OVERLAP_IDLE = 2


def lower_path_to_goals(
    calls,
    n_blocking: int,
    n_non_blocking: int,
    n_slaves: int,
) -> Optional[List["TransactionGoal"]]:
    """Lower a planned coarse-action FSM path to directed goals.

    Each ``arbiter.grant_and_transfer(slave, is_write)`` becomes one
    transaction goal for the master the ASM's ``choose_min`` would
    grant; request interleavings become idle timing:

    * requests planned before the first transfer in ascending master
      order post simultaneously (idle 0) -- the arbiter resolves the
      tie in exactly that order;
    * a plan that needs a *higher*-index master pending first is not
      realizable from reset (the lowest-index arbiter would grant it
      immediately), so the eventual winner gets a warm-up transaction
      and the earlier requesters aim into its transfer window;
    * masters the path leaves pending get a drain goal -- a sequence
      master only posts a request as part of driving a transaction.

    Returns None when the path uses actions outside the drivers'
    vocabulary.
    """
    from ...scenarios.directed import TransactionGoal

    n_masters = n_blocking + n_non_blocking
    goals: List[TransactionGoal] = []
    pending: List[int] = []
    request_idle: Dict[int, int] = {}
    requests_before_transfer: List[int] = []
    saw_transfer = False

    def burst_of(master: int) -> int:
        return BLOCKING_BURST if master < n_blocking else 1

    for call in calls:
        if call.machine.startswith("master") and call.action == "request":
            master = int(call.machine[len("master"):])
            if master >= n_masters or master in pending:
                return None
            pending.append(master)
            request_idle[master] = 0
            if not saw_transfer:
                requests_before_transfer.append(master)
        elif call.machine == "arbiter" and call.action == "grant_and_transfer":
            if not pending:
                return None
            slave, is_write = call.args
            if not 0 <= slave < n_slaves:
                return None
            winner = min(pending)
            if not saw_transfer:
                saw_transfer = True
                order = requests_before_transfer
                if order != sorted(order):
                    # unrealizable-from-reset interleaving: warm up the
                    # winner so the others can request mid-transfer
                    goals.append(
                        TransactionGoal(
                            unit=winner,
                            target=slave,
                            is_write=is_write,
                            burst=burst_of(winner),
                            idle=0,
                        )
                    )
                    for master in order:
                        if master != winner:
                            request_idle[master] = _WARMUP_OVERLAP_IDLE
            pending.remove(winner)
            goals.append(
                TransactionGoal(
                    unit=winner,
                    target=slave,
                    is_write=is_write,
                    burst=burst_of(winner),
                    idle=request_idle.pop(winner, 0),
                )
            )
        elif call.machine == "system":
            continue
        else:
            return None
    # masters left pending only requested: drain them through a real
    # transaction so the request actually gets posted
    for master in pending:
        goals.append(
            TransactionGoal(
                unit=master,
                target=0,
                is_write=False,
                burst=burst_of(master),
                idle=request_idle.get(master, 0),
            )
        )
    return goals


class MsReferenceAdapter(ReferenceAdapter):
    """ASM-lockstep golden reference for the Master/Slave bus."""

    def __init__(self, n_blocking: int, n_non_blocking: int, n_slaves: int):
        self.n_blocking = n_blocking
        self.n_non_blocking = n_non_blocking
        self.n_slaves = n_slaves
        self.golden: Dict[int, int] = {}
        self.expected_words: Dict[int, Tuple[int, int]] = {}  # slave -> (reads, writes)
        self.protocol_diverged = False
        self._scripts: Dict[tuple, list] = {}

    def build_reference(self):
        return build_master_slave_model(
            self.n_blocking, self.n_non_blocking, self.n_slaves
        )

    def begin(self) -> None:
        super().begin()
        self.golden = {}
        self.expected_words = {
            j: (0, 0) for j in range(self.n_slaves)
        }
        self.protocol_diverged = False

    def observe(self, txn: Transaction, item: SequenceItem) -> Iterable[Mismatch]:
        assert self.lockstep is not None, "begin() not called"
        master_index = int(txn.master.replace("master", ""))
        slave_index = txn.address // 0x100
        words = txn.burst_length
        # replay scripts depend only on (master, slave, words, is_write)
        # -- memoize so the hot check loop skips rebuilding them
        script_key = (master_index, slave_index, words, txn.is_write)
        script = self._scripts.get(script_key)
        if script is None:
            master = f"master{master_index}"
            script = (
                [
                    (master, "request", ()),
                    ("arbiter", "grant", ()),
                    (master, "start_transfer", (slave_index, txn.is_write)),
                ]
                + [(master, "transfer_word", ())] * words
                + [("arbiter", "release", ())]
            )
            self._scripts[script_key] = script
        for machine, act, args in script:
            error = self.lockstep.call(machine, act, *args)
            if error is not None:
                self.protocol_diverged = True
                state = self.lockstep.state_dump()
                # re-arm the reference so later transactions still get checked
                self._reset_reference()
                yield Mismatch(
                    kind=DivergenceKind.PROTOCOL,
                    master=txn.master,
                    txn_id=txn.txn_id,
                    detail=f"ASM reference rejected replay of {txn.describe()}",
                    expected="action enabled in the verified design",
                    observed=error,
                    reference_state=state,
                )
                return
        reads, writes = self.expected_words[slave_index]
        if txn.is_write:
            self.expected_words[slave_index] = (reads, writes + words)
            for word in range(words):
                self.golden[txn.address + word] = (
                    txn.data[word] if word < len(txn.data) else 0
                )
        else:
            self.expected_words[slave_index] = (reads + words, writes)
            expected = tuple(
                self.golden.get(txn.address + word, 0) for word in range(words)
            )
            if txn.data != expected:
                yield Mismatch(
                    kind=DivergenceKind.DATA,
                    master=txn.master,
                    txn_id=txn.txn_id,
                    detail=(
                        f"readback diverged from golden memory at "
                        f"{txn.address:#06x} ({txn.describe()})"
                    ),
                    expected=repr(expected),
                    observed=repr(txn.data),
                    reference_state=self.lockstep.state_dump(),
                )

    def finish(
        self,
        completed: Mapping[str, int],
        recorded: Mapping[str, int],
    ) -> Iterable[Mismatch]:
        yield from self._dropped_mismatches(completed, recorded)
        if self.lockstep is not None and not self.protocol_diverged:
            model = self.lockstep.model
            slaves = sorted(model.machines_of(MsSlave), key=lambda m: m.index)
            for slave in slaves:
                reads, writes = self.expected_words.get(slave.index, (0, 0))
                if (slave.m_reads, slave.m_writes) != (reads, writes):
                    yield Mismatch(
                        kind=DivergenceKind.COUNTER,
                        master=slave.name,
                        txn_id=-1,
                        detail="reference word counters diverged",
                        expected=f"reads={reads} writes={writes}",
                        observed=(
                            f"reads={slave.m_reads} writes={slave.m_writes}"
                        ),
                    )
