"""The paper's two case studies (Section 4).

* :mod:`repro.models.pci` -- the PCI Local Bus standard (Table 1),
* :mod:`repro.models.master_slave` -- the generic Master/Slave bus from
  the SystemC distribution (Table 2).

Each case study ships an ASM model (for FSM generation / model
checking), a PSL property suite, and a SystemC simulation model (for
assertion-based verification).
"""
