"""Static delta-cycle race detection over SystemC-style model sources.

The models under ``models/*/systemc_model.py`` follow one layout: a
signal-container class whose ``__init__`` builds :class:`Signal`s, a
set of :class:`Module` subclasses registering generator processes, and
a top-level system class instantiating modules (some plurally -- list
comprehensions or append loops).  This pass rebuilds that structure
from the AST, extracts every signal access in every process body (with
local-alias resolution, so ``owner = wires.owner; owner.write(i)``
counts), and checks the delta-cycle discipline the kernel assumes:

``race.multi-driver``
    A signal writable by two different module classes, or by a
    plurally-instantiated class through anything but a
    ``self``-anchored index.  Two same-delta writes are last-write-
    wins in :meth:`Signal.write` -- scheduler order decides the value.
``race.read-after-write``
    A process reads a signal it wrote earlier in the same straight-
    line segment (no ``yield`` between): the read sees the pre-delta
    value, which is correct SystemC semantics but a classic
    "why is my write not visible" ordering trap.
``race.shared-state``
    A plurally-instantiated process calls a method on a shared peer
    object that mutates plain (non-Signal) attributes: those updates
    commit immediately, so same-delta ordering between callers is
    scheduler-defined.
``race.wait-free-loop``
    A ``while`` loop in a process body with no ``yield`` on any path:
    the process can never cede control inside it, a livelock candidate
    the kernel would only catch as a delta-cycle-limit blowup.

The pass is a heuristic linter, not a proof: branches are walked in
sequence, loops once, and indexes classify only as literal /
``self``-anchored / dynamic.  Intentional protocol patterns (a bus
grant serializing writers, for instance) are expected -- document them
with ``# repro: allow[rule] reason`` on the signal declaration or the
flagged access.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from .findings import Finding

#: Base-class names that mark a class as a module with processes.
_MODULE_BASES = {"Module"}
#: Base-class names that mark a native kernel process (``execute`` body).
_PROCESS_BASES = {"Process", "ThreadProcess", "MethodProcess"}
#: Method names that register a process body on a module.
_PROCESS_REGISTRARS = {"thread", "method"}


@dataclass(frozen=True)
class SignalDecl:
    """One ``self.attr = Signal(...)`` (or list-of) declaration."""

    container: str
    attr: str
    kind: str  # "scalar" | "array"
    lineno: int
    #: constant parts of the Signal name argument, for witness mapping
    #: (f"want{i}" -> ("want", ""); "owner" -> ("owner",))
    name_parts: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SignalRef:
    """A resolved signal access target."""

    scope: str  # "shared" or the owning class name (module-local)
    attr: str
    index: Optional[object] = None  # None | "self" | "dyn" | ("lit", n)


@dataclass(frozen=True)
class ObjChain:
    """A resolved non-signal object reference (``self.slaves[i]``)."""

    path: Tuple[str, ...]
    index: Optional[object] = None


@dataclass(frozen=True)
class Access:
    """One signal read/write (or peer method call) inside a process."""

    kind: str  # "read" | "write" | "call"
    target: Union[SignalRef, ObjChain]
    method: str  # callee name for kind == "call", else ""
    lineno: int
    cls: str
    process: str


@dataclass
class ModelStructure:
    """Everything the checks need, rebuilt from the sources."""

    path: str
    decls: Dict[str, SignalDecl] = field(default_factory=dict)
    plural: Dict[str, str] = field(default_factory=dict)  # class -> mult
    accesses: List[Access] = field(default_factory=list)
    wait_free_loops: List[Tuple[str, str, int]] = field(default_factory=list)
    mutating_methods: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: per-process ordered (read/write/call/yield) event streams
    streams: List[Tuple[Tuple[str, str], List[tuple]]] = field(
        default_factory=list
    )
    process_count: int = 0


def _base_names(cls: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _init_of(cls: ast.ClassDef) -> Optional[ast.FunctionDef]:
    for node in cls.body:
        if isinstance(node, ast.FunctionDef) and node.name == "__init__":
            return node
    return None


def _is_signal_call(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and (
        (isinstance(node.func, ast.Name) and node.func.id == "Signal")
        or (isinstance(node.func, ast.Attribute) and node.func.attr == "Signal")
    )


def _signal_name_parts(call: ast.Call) -> Tuple[str, ...]:
    """Constant fragments of the Signal name argument (args[1])."""
    if len(call.args) < 2:
        return ()
    name = call.args[1]
    if isinstance(name, ast.Constant) and isinstance(name.value, str):
        return (name.value,)
    if isinstance(name, ast.JoinedStr):
        parts: List[str] = []
        for value in name.values:
            if isinstance(value, ast.Constant) and isinstance(value.value, str):
                parts.append(value.value)
            else:
                parts.append("")
        return tuple(parts)
    return ()


def _self_attr_target(node: ast.AST) -> Optional[str]:
    """``self.X`` assignment target -> ``X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _contains_signal_call(node: ast.AST) -> Optional[ast.Call]:
    for child in ast.walk(node):
        if _is_signal_call(child):
            return child  # type: ignore[return-value]
    return None


def _collect_signal_decls(cls: ast.ClassDef) -> Dict[str, SignalDecl]:
    """``self.X = Signal(...)`` / ``self.X = [Signal(...) ...]`` in __init__."""
    decls: Dict[str, SignalDecl] = {}
    init = _init_of(cls)
    if init is None:
        return decls
    for stmt in ast.walk(init):
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        attr = _self_attr_target(stmt.targets[0])
        if attr is None:
            continue
        if _is_signal_call(stmt.value):
            decls[attr] = SignalDecl(
                cls.name, attr, "scalar", stmt.lineno,
                _signal_name_parts(stmt.value),  # type: ignore[arg-type]
            )
        elif isinstance(stmt.value, (ast.ListComp, ast.List)):
            call = _contains_signal_call(stmt.value)
            if call is not None:
                decls[attr] = SignalDecl(
                    cls.name, attr, "array", stmt.lineno, _signal_name_parts(call)
                )
    return decls


def _classify_index(node: ast.AST) -> object:
    """Literal / ``self``-anchored / dynamic index classification."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return ("lit", node.value)
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and isinstance(child.value, ast.Name)
            and child.value.id == "self"
        ):
            return "self"
    return "dyn"


class _ProcessWalker:
    """Walks one process body in source order, emitting ordered events.

    Events are tuples: ``("read"|"write", SignalRef, lineno)``,
    ``("call", ObjChain, lineno, method)``, ``("yield",)``.  Same-class
    helper calls (``yield from self._helper(...)`` or plain
    ``self._helper(...)``) are inlined so their traffic lands in the
    caller's stream at the call point.
    """

    def __init__(self, cls: ast.ClassDef, shared_attrs: Dict[str, SignalDecl],
                 local_attrs: Dict[str, SignalDecl]):
        self.cls = cls
        self.methods = {
            n.name: n for n in cls.body if isinstance(n, ast.FunctionDef)
        }
        self.shared_attrs = shared_attrs
        self.local_attrs = local_attrs
        self.aliases: Dict[str, object] = {}
        self._visited: Set[str] = set()

    # -- resolution -------------------------------------------------------

    def resolve(self, node: ast.AST) -> Optional[object]:
        """Expression -> SignalRef / ObjChain / None."""
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            attr = node.attr
            if attr in self.shared_attrs:
                return SignalRef("shared", attr)
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                if attr in self.local_attrs:
                    return SignalRef(self.cls.name, attr)
                return ObjChain(("self", attr))
            base = self.resolve(node.value)
            if isinstance(base, ObjChain):
                return ObjChain(base.path + (attr,), base.index)
            return None
        if isinstance(node, ast.Subscript):
            base = self.resolve(node.value)
            index = _classify_index(node.slice)
            if isinstance(base, SignalRef) and base.index is None:
                return SignalRef(base.scope, base.attr, index)
            if isinstance(base, ObjChain) and base.index is None:
                return ObjChain(base.path, index)
            return None
        return None

    # -- expression walking (eval order approximated) ---------------------

    def walk_expr(self, node: ast.AST, events: List[tuple]) -> None:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                target = self.resolve(func.value)
                if isinstance(target, SignalRef) and func.attr in ("read", "write"):
                    for arg in node.args:
                        self.walk_expr(arg, events)
                    events.append((func.attr, target, node.lineno))
                    return
                if isinstance(target, ObjChain):
                    for arg in node.args:
                        self.walk_expr(arg, events)
                    events.append(("call", target, node.lineno, func.attr))
                    return
                # unresolved receiver: maybe a same-class helper call
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr in self.methods
                ):
                    for arg in node.args:
                        self.walk_expr(arg, events)
                    self._inline(func.attr, events)
                    return
            for child in ast.iter_child_nodes(node):
                self.walk_expr(child, events)
            return
        if isinstance(node, ast.YieldFrom):
            # ``yield from self._helper(...)``: inline the helper's
            # events (its own yields included) at this point.
            value = node.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and isinstance(value.func.value, ast.Name)
                and value.func.value.id == "self"
                and value.func.attr in self.methods
            ):
                for arg in value.args:
                    self.walk_expr(arg, events)
                self._inline(value.func.attr, events)
                return
            self.walk_expr(value, events)
            events.append(("yield",))
            return
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.walk_expr(node.value, events)
            events.append(("yield",))
            return
        for child in ast.iter_child_nodes(node):
            self.walk_expr(child, events)

    def _inline(self, method: str, events: List[tuple]) -> None:
        if method in self._visited:
            return
        self._visited.add(method)
        self.walk_stmts(self.methods[method].body, events)
        self._visited.discard(method)

    # -- statement walking ------------------------------------------------

    def walk_stmts(self, stmts: Sequence[ast.stmt], events: List[tuple]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                self.walk_expr(stmt.value, events)
                if len(stmt.targets) == 1 and isinstance(stmt.targets[0], ast.Name):
                    resolved = self.resolve(stmt.value)
                    if resolved is not None:
                        self.aliases[stmt.targets[0].id] = resolved
                    else:
                        self.aliases.pop(stmt.targets[0].id, None)
                else:
                    for target in stmt.targets:
                        self.walk_expr(target, events)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                if stmt.value is not None:
                    self.walk_expr(stmt.value, events)
            elif isinstance(stmt, ast.Expr):
                self.walk_expr(stmt.value, events)
            elif isinstance(stmt, ast.While):
                self.walk_expr(stmt.test, events)
                self.walk_stmts(stmt.body, events)
                self.walk_stmts(stmt.orelse, events)
            elif isinstance(stmt, ast.For):
                self.walk_expr(stmt.iter, events)
                self._alias_loop_target(stmt)
                self.walk_stmts(stmt.body, events)
                self.walk_stmts(stmt.orelse, events)
            elif isinstance(stmt, ast.If):
                self.walk_expr(stmt.test, events)
                self.walk_stmts(stmt.body, events)
                self.walk_stmts(stmt.orelse, events)
            elif isinstance(stmt, ast.Try):
                self.walk_stmts(stmt.body, events)
                for handler in stmt.handlers:
                    self.walk_stmts(handler.body, events)
                self.walk_stmts(stmt.orelse, events)
                self.walk_stmts(stmt.finalbody, events)
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    self.walk_expr(item.context_expr, events)
                self.walk_stmts(stmt.body, events)
            elif isinstance(stmt, ast.Return) and stmt.value is not None:
                self.walk_expr(stmt.value, events)
            # pass/break/continue/raise: no signal traffic to extract

    def _alias_loop_target(self, stmt: ast.For) -> None:
        """``for x in array`` / ``for i, x in enumerate(array)``: ``x``
        aliases a dynamically-indexed element of the array."""
        iter_node = stmt.iter
        element_target: Optional[ast.Name] = None
        array_node: Optional[ast.AST] = None
        if (
            isinstance(iter_node, ast.Call)
            and isinstance(iter_node.func, ast.Name)
            and iter_node.func.id == "enumerate"
            and iter_node.args
            and isinstance(stmt.target, ast.Tuple)
            and len(stmt.target.elts) == 2
            and isinstance(stmt.target.elts[1], ast.Name)
        ):
            element_target = stmt.target.elts[1]
            array_node = iter_node.args[0]
        elif isinstance(stmt.target, ast.Name):
            element_target = stmt.target
            array_node = iter_node
        if element_target is None or array_node is None:
            return
        base = self.resolve(array_node)
        if isinstance(base, SignalRef) and base.index is None:
            self.aliases[element_target.id] = SignalRef(base.scope, base.attr, "dyn")
        elif isinstance(base, ObjChain) and base.index is None:
            self.aliases[element_target.id] = ObjChain(base.path, "dyn")
        else:
            self.aliases.pop(element_target.id, None)

    def run(self, body_method: str) -> List[tuple]:
        """Walk ``body_method`` and return its ordered event stream."""
        events: List[tuple] = []
        method = self.methods.get(body_method)
        if method is None:
            return events
        self._visited.add(body_method)
        self.walk_stmts(method.body, events)
        return events


def _process_bodies(cls: ast.ClassDef) -> List[str]:
    """Process entry methods: ``self.thread(self.run)`` registrations,
    plus ``execute`` for native Process subclasses."""
    bodies: List[str] = []
    if _base_names(cls) & _PROCESS_BASES:
        bodies.append("execute")
    init = _init_of(cls)
    if init is not None:
        for node in ast.walk(init):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _PROCESS_REGISTRARS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.args
            ):
                body = node.args[0]
                if (
                    isinstance(body, ast.Attribute)
                    and isinstance(body.value, ast.Name)
                    and body.value.id == "self"
                ):
                    bodies.append(body.attr)
    return bodies


def _collect_multiplicity(cls: ast.ClassDef, module_names: Set[str],
                          plural: Dict[str, str]) -> None:
    """How many instances of each module class a system builds."""
    init = _init_of(cls)
    if init is None:
        return

    def called_class(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in module_names:
                return name
        return None

    def record(name: str, mult: str) -> None:
        if plural.get(name) == "plural" or mult == "plural":
            plural[name] = "plural"
        else:
            # a second singular instantiation still means two instances
            plural[name] = "plural" if name in plural else "singular"

    comprehension_nodes: Set[int] = set()
    for node in ast.walk(init):
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            name = called_class(node.elt)
            if name is not None:
                record(name, "plural")
                for sub in ast.walk(node):
                    comprehension_nodes.add(id(sub))
        elif isinstance(node, ast.For):
            for child in ast.walk(node):
                name = called_class(child)
                if name is not None:
                    record(name, "plural")
                    comprehension_nodes.add(id(child))
    for node in ast.walk(init):
        if id(node) in comprehension_nodes:
            continue
        name = called_class(node)
        if name is not None:
            record(name, "singular")


def _mutates_self_state(method: ast.FunctionDef) -> bool:
    """Does the method assign plain ``self`` attributes (incl. items)?"""
    for node in ast.walk(method):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
        for target in targets:
            inner = target
            if isinstance(inner, ast.Subscript):
                inner = inner.value
            if (
                isinstance(inner, ast.Attribute)
                and isinstance(inner.value, ast.Name)
                and inner.value.id == "self"
            ):
                return True
    return False


def build_structure(sources: Dict[str, str], path: str) -> ModelStructure:
    """Parse the model sources into one :class:`ModelStructure`.

    ``sources`` maps report paths to source text; ``path`` names the
    primary model file (findings are reported against it).  All files
    contribute signal containers, modules and processes -- pass the
    ``sysc/`` primitives alongside the model file to cover native
    kernel processes like the clock driver.
    """
    structure = ModelStructure(path=path)
    trees = {p: ast.parse(text, filename=p) for p, text in sources.items()}

    classes: List[Tuple[str, ast.ClassDef]] = []
    for file_path, tree in trees.items():
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                classes.append((file_path, node))

    local_decls: Dict[str, Dict[str, SignalDecl]] = {}
    module_classes: List[ast.ClassDef] = []
    other_classes: List[ast.ClassDef] = []
    for _, cls in classes:
        decls = _collect_signal_decls(cls)
        if _base_names(cls) & (_MODULE_BASES | _PROCESS_BASES):
            module_classes.append(cls)
            if decls:
                local_decls[cls.name] = decls
        else:
            other_classes.append(cls)
            structure.decls.update(decls)

    module_names = {cls.name for cls in module_classes}
    for cls in other_classes:
        _collect_multiplicity(cls, module_names, structure.plural)

    for cls in module_classes:
        for node in cls.body:
            if isinstance(node, ast.FunctionDef) and node.name != "__init__":
                if _mutates_self_state(node):
                    structure.mutating_methods[(cls.name, node.name)] = node.lineno

    for cls in module_classes:
        methods = {n.name: n for n in cls.body if isinstance(n, ast.FunctionDef)}
        for body_name in _process_bodies(cls):
            structure.process_count += 1
            walker = _ProcessWalker(
                cls, structure.decls, local_decls.get(cls.name, {})
            )
            events = walker.run(body_name)
            structure.streams.append(((cls.name, body_name), events))
            for event in events:
                if event[0] in ("read", "write"):
                    structure.accesses.append(Access(
                        event[0], event[1], "", event[2], cls.name, body_name
                    ))
                elif event[0] == "call":
                    structure.accesses.append(Access(
                        "call", event[1], event[3], event[2], cls.name, body_name
                    ))
            # wait-free loops over every method reachable from the body
            seen: Set[str] = set()
            stack = [body_name]
            while stack:
                name = stack.pop()
                if name in seen or name not in methods:
                    continue
                seen.add(name)
                for node in ast.walk(methods[name]):
                    if isinstance(node, ast.While) and not any(
                        isinstance(sub, (ast.Yield, ast.YieldFrom))
                        for sub in ast.walk(node)
                    ):
                        structure.wait_free_loops.append(
                            (cls.name, body_name, node.lineno)
                        )
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"
                        and node.func.attr in methods
                    ):
                        stack.append(node.func.attr)
    return structure


# ---------------------------------------------------------------------------
# checks
# ---------------------------------------------------------------------------


def _writer_summary(writers: Sequence[Access]) -> str:
    names = sorted({f"{a.cls}.{a.process}" for a in writers})
    return ", ".join(names)


def check_multi_driver(structure: ModelStructure, model: str) -> List[Finding]:
    """Flag signals writable by >1 class or by a plural class unsafely."""
    findings: List[Finding] = []
    by_attr: Dict[str, List[Access]] = {}
    for access in structure.accesses:
        if access.kind != "write" or not isinstance(access.target, SignalRef):
            continue
        if access.target.scope != "shared":
            continue  # module-local signals are per-instance by construction
        by_attr.setdefault(access.target.attr, []).append(access)
    for attr in sorted(by_attr):
        writers = by_attr[attr]
        decl = structure.decls.get(attr)
        line = decl.lineno if decl else writers[0].lineno
        writer_classes = sorted({a.cls for a in writers})
        if len(writer_classes) > 1:
            findings.append(Finding(
                rule="race.multi-driver",
                severity="error",
                path=structure.path,
                line=line,
                message=(
                    f"signal '{attr}' is written by multiple module classes "
                    f"({_writer_summary(writers)}); same-delta writes are "
                    f"last-write-wins in scheduler order"
                ),
                model=model,
            ))
            continue
        cls = writer_classes[0]
        if structure.plural.get(cls) != "plural":
            continue
        unsafe = [
            a for a in writers
            if isinstance(a.target, SignalRef) and a.target.index != "self"
        ]
        if unsafe:
            findings.append(Finding(
                rule="race.multi-driver",
                severity="error",
                path=structure.path,
                line=line,
                message=(
                    f"signal '{attr}' is written by every instance of plural "
                    f"module {cls} without a self-anchored index "
                    f"({_writer_summary(unsafe)}); instances racing in one "
                    f"delta are resolved by scheduler order"
                ),
                model=model,
            ))
    return findings


def check_read_after_write(structure: ModelStructure, model: str) -> List[Finding]:
    """Flag same-segment reads of a just-written signal (stale read)."""
    findings: List[Finding] = []
    for (_cls, _process), events in structure.streams:
        written: Dict[Tuple[str, str], int] = {}
        for event in events:
            if event[0] == "yield":
                written.clear()
            elif event[0] == "write" and isinstance(event[1], SignalRef):
                written[(event[1].scope, event[1].attr)] = event[2]
            elif event[0] == "read" and isinstance(event[1], SignalRef):
                ref = event[1]
                write_line = written.get((ref.scope, ref.attr))
                if write_line is not None:
                    findings.append(Finding(
                        rule="race.read-after-write",
                        severity="warning",
                        path=structure.path,
                        line=event[2],
                        message=(
                            f"'{ref.attr}' is read after being written at "
                            f"line {write_line} with no yield between: the "
                            f"read sees the pre-delta value (writes commit "
                            f"at the delta boundary)"
                        ),
                        model=model,
                    ))
    return findings


def check_shared_state(structure: ModelStructure, model: str) -> List[Finding]:
    """Flag plural processes mutating shared peers through method calls."""
    findings: List[Finding] = []
    mutating_names = {name for (_, name) in structure.mutating_methods}
    for access in structure.accesses:
        if access.kind != "call" or not isinstance(access.target, ObjChain):
            continue
        if access.method not in mutating_names:
            continue
        if structure.plural.get(access.cls) != "plural":
            continue
        owners = sorted(
            cls for (cls, name) in structure.mutating_methods
            if name == access.method
        )
        findings.append(Finding(
            rule="race.shared-state",
            severity="warning",
            path=structure.path,
            line=access.lineno,
            message=(
                f"plural module {access.cls}.{access.process} calls "
                f"{'/'.join(owners)}.{access.method}(), which mutates plain "
                f"attributes immediately: same-delta calls from sibling "
                f"instances commit in scheduler order"
            ),
            model=model,
        ))
    return findings


def check_wait_free_loops(structure: ModelStructure, model: str) -> List[Finding]:
    """Flag while loops that can never yield (livelock candidates)."""
    return [
        Finding(
            rule="race.wait-free-loop",
            severity="warning",
            path=structure.path,
            line=lineno,
            message=(
                f"while loop in process {cls}.{process} contains no yield: "
                f"the process cannot cede control inside it (livelock "
                f"candidate; the kernel would abort at the delta-cycle limit)"
            ),
            model=model,
        )
        for cls, process, lineno in sorted(set(structure.wait_free_loops))
    ]


def analyze_sources(
    sources: Dict[str, str], path: str, model: str = ""
) -> Tuple[List[Finding], ModelStructure]:
    """Run all four race checks over the model sources.

    Returns the findings (not yet suppression-filtered -- the caller
    applies ``# repro: allow`` scanning) plus the rebuilt structure,
    which the witness mode uses to anchor runtime conflicts back to
    declaration lines.
    """
    structure = build_structure(sources, path)
    findings = [
        *check_multi_driver(structure, model),
        *check_read_after_write(structure, model),
        *check_shared_state(structure, model),
        *check_wait_free_loops(structure, model),
    ]
    return findings, structure


def declaration_line_for(structure: ModelStructure, signal_name: str) -> int:
    """Map a *runtime* signal name back to its declaration line.

    Runtime names come from the Signal name argument: a constant
    (``"owner"``) or an f-string (``f"want{i}"`` -> name_parts
    ``("want", "")``).  Matching is prefix/suffix against the constant
    fragments; 0 when no declaration matches (witness findings then
    anchor to the whole file).
    """
    for decl in structure.decls.values():
        parts = decl.name_parts
        if not parts:
            continue
        if len(parts) == 1:
            if signal_name == parts[0]:
                return decl.lineno
            continue
        prefix, suffix = parts[0], parts[-1]
        if signal_name.startswith(prefix) and signal_name.endswith(suffix) and (
            len(signal_name) >= len(prefix) + len(suffix)
        ):
            return decl.lineno
    return 0
