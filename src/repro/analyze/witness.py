"""Opt-in kernel witness mode: record actual per-delta access sets.

The race detector in :mod:`.race` is static -- it over- and
under-approximates.  The witness cross-checks it against a real run:
with a :class:`DeltaWitness` installed, every :meth:`Signal.read` /
:meth:`Signal.write` on the target simulator is recorded into the
current delta's read/write set, attributed to the running process via
the ``Simulator.witness`` seam in the kernel's evaluation loop.  At
each delta boundary (an ``on_delta`` hook, which also forces the
kernel off its merged fast path and through the general scheduler) the
sets are folded: a signal written by two *distinct* processes inside
one delta is a witnessed multi-driver race -- not a heuristic, an
observed last-write-wins resolution.

Witness output is split along the digest boundary: conflicts become
``race.multi-driver`` findings (anchored back to the declaration line
via :func:`repro.analyze.race.declaration_line_for`), while set-size
statistics are *facts* -- they feed ``analyze.witness.*`` metrics and
never enter the findings digest, so a witnessed run over a clean model
digests byte-identically to the static-only run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..sysc.kernel import Simulator
from ..sysc.signal import Signal

#: Attribution label for accesses outside any process (testbench code,
#: monitor sampling hooks, elaboration-time initial writes).
ENV = "<env>"

#: Module-level reentrancy guard: Signal.read/write are patched at
#: class level, so only one witness may be installed per interpreter.
_ACTIVE: Optional["DeltaWitness"] = None


@dataclass
class WitnessStats:
    """Aggregate witness-run statistics (telemetry, never digested)."""

    deltas: int = 0
    reads: int = 0
    writes: int = 0
    max_read_set: int = 0
    max_write_set: int = 0
    total_read_set: int = 0
    total_write_set: int = 0

    def to_json(self) -> Dict[str, object]:
        """Wire/facts form, including derived mean set sizes."""
        deltas = self.deltas or 1
        return {
            "deltas": self.deltas,
            "reads": self.reads,
            "writes": self.writes,
            "max_read_set": self.max_read_set,
            "max_write_set": self.max_write_set,
            "mean_read_set": round(self.total_read_set / deltas, 3),
            "mean_write_set": round(self.total_write_set / deltas, 3),
        }


class DeltaWitness:
    """Records per-delta read/write sets for one simulator.

    Use as a context manager around ``simulator.run(...)``::

        with DeltaWitness(system.simulator) as witness:
            system.simulator.run(cycles * period)
        witness.conflicts  # signal name -> witnessed writer sets

    Installation patches :class:`Signal` read/write class-wide
    (filtered to the target simulator), registers an ``on_delta``
    boundary hook, and sets ``simulator.witness`` so the kernel
    attributes each access to the process it runs.
    """

    def __init__(self, simulator: Simulator):
        self.simulator = simulator
        self.stats = WitnessStats()
        #: signal name -> set of witnessed same-delta writer tuples
        self.conflicts: Dict[str, Set[Tuple[str, ...]]] = {}
        self._reads: Dict[str, Set[str]] = {}
        self._writes: Dict[str, Set[str]] = {}
        self._current: str = ENV
        self._saved: Optional[tuple] = None

    # -- kernel seam (called from Simulator._delta_cycle) -----------------

    def process_run(self, process) -> None:
        """Attribute subsequent accesses to ``process``."""
        self._current = getattr(process, "name", None) or repr(process)

    # -- install / remove -------------------------------------------------

    def __enter__(self) -> "DeltaWitness":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("a DeltaWitness is already installed")
        _ACTIVE = self
        original_read = Signal.read
        original_write = Signal.write
        self._saved = (original_read, original_write)
        witness = self
        target = self.simulator

        def read(sig):
            if sig.simulator is target:
                witness._record_read(sig)
            return original_read(sig)

        def write(sig, value):
            if sig.simulator is target:
                witness._record_write(sig)
            return original_write(sig, value)

        Signal.read = read  # type: ignore[method-assign]
        Signal.write = write  # type: ignore[method-assign]
        # The boundary hook doubles as the fast-path disabler: a
        # non-empty on_delta list routes every instant through
        # _delta_cycle, where the witness seam attributes processes.
        target.on_delta.append(self._boundary)
        target.witness = self
        return self

    def __exit__(self, *exc_info) -> None:
        global _ACTIVE
        target = self.simulator
        if self._saved is not None:
            Signal.read, Signal.write = self._saved  # type: ignore[method-assign]
            self._saved = None
        if self._boundary in target.on_delta:
            target.on_delta.remove(self._boundary)
        target.witness = None
        _ACTIVE = None
        # flush a trailing partial delta so nothing witnessed is lost
        if self._reads or self._writes:
            self._boundary(target)

    # -- recording --------------------------------------------------------

    def _record_read(self, sig: Signal) -> None:
        self.stats.reads += 1
        self._reads.setdefault(sig.name, set()).add(self._current)

    def _record_write(self, sig: Signal) -> None:
        self.stats.writes += 1
        self._writes.setdefault(sig.name, set()).add(self._current)

    def _boundary(self, _sim: Simulator) -> None:
        """Delta boundary: fold this delta's sets into conflicts/stats."""
        stats = self.stats
        stats.deltas += 1
        read_set = len(self._reads)
        write_set = len(self._writes)
        stats.total_read_set += read_set
        stats.total_write_set += write_set
        if read_set > stats.max_read_set:
            stats.max_read_set = read_set
        if write_set > stats.max_write_set:
            stats.max_write_set = write_set
        for name, writers in self._writes.items():
            if len(writers) >= 2:
                self.conflicts.setdefault(name, set()).add(
                    tuple(sorted(writers))
                )
        self._reads.clear()
        self._writes.clear()
        self._current = ENV

    # -- results ----------------------------------------------------------

    def conflict_summaries(self) -> List[Tuple[str, str]]:
        """Sorted (signal name, writer description) per conflicted signal."""
        out: List[Tuple[str, str]] = []
        for name in sorted(self.conflicts):
            writer_sets = sorted(self.conflicts[name])
            described = "; ".join(", ".join(ws) for ws in writer_sets)
            out.append((name, described))
        return out


def run_witnessed(system, duration: int) -> DeltaWitness:
    """Run ``system.simulator`` for ``duration`` under a fresh witness."""
    simulator: Simulator = system.simulator
    with DeltaWitness(simulator) as witness:
        simulator.run(duration)
    return witness
