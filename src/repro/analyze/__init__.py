"""Design-for-verification static analysis.

Three passes behind one findings pipeline:

- :mod:`.race` -- the delta-cycle race detector: an AST walk over a
  model's process bodies building a process <-> signal access graph,
  flagging multi-driver signals, same-delta read-after-write ordering
  traps, shared-state mutation from plural modules, and wait-free
  loops.
- :mod:`.proplint` -- the property linter over the compiled automata:
  unknown signals, tautologies/contradictions, dead atoms, vacuous
  suffix implications, unreachable automaton states.
- :mod:`.witness` -- the opt-in kernel witness: records actual
  per-delta read/write sets during a real run and cross-checks the
  static race findings.

Findings fold into a deterministic, digest-stable
:class:`~repro.analyze.findings.AnalysisReport`; intentional patterns
are documented in place with ``# repro: allow[rule-id] reason``.
Surfaces: ``python -m repro analyze``, ``Workbench.analyze()``, and
:func:`analyze_models` for direct use.
"""

from .findings import (
    SEVERITIES,
    AnalysisReport,
    Finding,
    apply_suppressions,
    suppression_for,
)
from .proplint import lint_directive, lint_properties
from .race import ModelStructure, analyze_sources, declaration_line_for
from .runner import DEFAULT_WITNESS_CYCLES, analyze_duv, analyze_models
from .witness import DeltaWitness, WitnessStats, run_witnessed

__all__ = [
    "SEVERITIES",
    "AnalysisReport",
    "Finding",
    "apply_suppressions",
    "suppression_for",
    "lint_directive",
    "lint_properties",
    "ModelStructure",
    "analyze_sources",
    "declaration_line_for",
    "DEFAULT_WITNESS_CYCLES",
    "analyze_duv",
    "analyze_models",
    "DeltaWitness",
    "WitnessStats",
    "run_witnessed",
]
