"""Drive all analyzer passes over registered models into one report.

``analyze_duv`` resolves a DUV's SystemC sources (the model file plus
the ``sysc`` clock primitive, so native kernel processes are seen),
runs the static race detector, lints the DUV's property set against
the model's letter namespace, optionally cross-checks with a witnessed
kernel run, applies inline ``# repro: allow`` suppressions, and folds
everything into one :class:`AnalysisReport`.  ``analyze_models`` does
that for every (or a chosen subset of) registered model(s) and merges
the reports -- the shape behind ``python -m repro analyze`` and the
``Workbench.analyze()`` stage.

Witnessed conflicts that the static pass already reported (same
signal declaration line) are dropped rather than duplicated, so a
witnessed run over a model digests identically to the static run
unless the witness catches something the AST walk missed.  Witness
statistics are facts/metrics, never findings -- digest invariance is
the contract.
"""

from __future__ import annotations

import inspect
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..obs.runtime import OBS
from ..workbench.duv import DUV
from ..workbench.registry import default_registry
from .findings import AnalysisReport, Finding, apply_suppressions
from .proplint import lint_properties
from .race import ModelStructure, analyze_sources, declaration_line_for
from .witness import DeltaWitness

#: Default witnessed-run length, in clock cycles of the model.
DEFAULT_WITNESS_CYCLES = 200

_REPO_ROOT = Path(__file__).resolve().parents[3]


def _repo_relative(path: Path) -> str:
    try:
        return path.resolve().relative_to(_REPO_ROOT).as_posix()
    except ValueError:
        return path.as_posix()


def _model_source_path(duv: DUV, seed: int) -> Path:
    """The file defining the DUV's SystemC system class."""
    system = duv.systemc_factory(seed)
    source = inspect.getsourcefile(type(system))
    if source is None:  # pragma: no cover - source always on disk here
        raise FileNotFoundError(f"no source file for {type(system)!r}")
    return Path(source)


def _unique_directives(duv: DUV) -> List:
    """Formal + simulation directives, deduplicated by property name."""
    seen: Set[str] = set()
    out: List = []
    for directive in (*duv.directives, *duv.simulation_directives):
        name = getattr(directive, "name", None) or str(directive)
        if name in seen:
            continue
        seen.add(name)
        out.append(directive)
    return out


def _letter_namespace(duv: DUV) -> Optional[Set[str]]:
    """Signal names a sampled letter carries (None = unknown)."""
    try:
        return set(duv.extractor(duv.model_factory()).keys())
    except Exception:
        return None


def _witness_findings(
    duv: DUV,
    structure: ModelStructure,
    model_path: str,
    cycles: int,
    seed: int,
) -> tuple:
    """Run a witnessed simulation; (findings, witness stats)."""
    system = duv.systemc_factory(seed)
    duration = cycles * duv.clock_period_ps
    with DeltaWitness(system.simulator) as witness:
        system.simulator.run(duration)
    findings = [
        Finding(
            rule="race.multi-driver",
            severity="error",
            path=model_path,
            line=declaration_line_for(structure, name),
            message=(
                f"witnessed: signal '{name}' written by multiple processes "
                f"in one delta ({writers}); the committed value is "
                f"scheduler-order dependent"
            ),
            model=duv.name,
        )
        for name, writers in witness.conflict_summaries()
    ]
    return findings, witness.stats


def analyze_duv(
    duv: DUV,
    *,
    witness: bool = False,
    witness_cycles: Optional[int] = None,
    seed: int = 2005,
) -> AnalysisReport:
    """Run every analyzer pass over one DUV."""
    if witness_cycles is None:
        witness_cycles = DEFAULT_WITNESS_CYCLES
    model_file = _model_source_path(duv, seed)
    model_path = _repo_relative(model_file)
    from ..sysc import clock as _clock_module

    clock_file = Path(inspect.getsourcefile(_clock_module) or "")
    sources = {model_path: model_file.read_text(encoding="utf-8")}
    if clock_file.is_file():
        sources[_repo_relative(clock_file)] = clock_file.read_text(
            encoding="utf-8"
        )

    findings, structure = analyze_sources(sources, model_path, model=duv.name)

    properties_file = model_file.with_name("properties.py")
    properties_path = (
        _repo_relative(properties_file) if properties_file.is_file()
        else model_path
    )
    findings.extend(lint_properties(
        _unique_directives(duv),
        namespace=_letter_namespace(duv),
        path=properties_path,
        model=duv.name,
    ))

    facts: Dict[str, object] = {"passes": ["race", "proplint"]}
    if witness:
        static_lines = {
            (f.rule, f.path, f.line) for f in findings
        }
        witnessed, stats = _witness_findings(
            duv, structure, model_path, witness_cycles, seed
        )
        findings.extend(
            f for f in witnessed
            if (f.rule, f.path, f.line) not in static_lines
        )
        facts["passes"] = ["race", "proplint", "witness"]
        facts["witness"] = stats.to_json()
        if OBS.metrics.enabled:
            registry = OBS.metrics
            registry.counter("analyze.witness.deltas", model=duv.name).inc(
                stats.deltas
            )
            registry.counter(
                "analyze.witness.max_read_set", model=duv.name
            ).inc(stats.max_read_set)
            registry.counter(
                "analyze.witness.max_write_set", model=duv.name
            ).inc(stats.max_write_set)

    suppression_sources = {
        path: text.splitlines() for path, text in sources.items()
    }
    findings = apply_suppressions(findings, suppression_sources)

    report = AnalysisReport(findings=findings, facts=facts)
    if OBS.metrics.enabled:
        for rule, count in report.rule_counts().items():
            OBS.metrics.counter(
                "analyze.findings", rule=rule, model=duv.name
            ).inc(count)
    return report


def analyze_models(
    names: Optional[Sequence[str]] = None,
    *,
    witness: bool = False,
    witness_cycles: Optional[int] = None,
    seed: int = 2005,
) -> AnalysisReport:
    """Analyze the named (default: all registered) models, merged.

    Per-model facts nest under ``facts["models"]``; findings carry
    their model attribution, so the merged report stays canonical and
    digest-stable regardless of analysis order.
    """
    registry = default_registry()
    model_names = list(names) if names else registry.names()
    merged = AnalysisReport()
    model_facts: Dict[str, object] = {}
    for name in model_names:
        duv = registry.get(name)
        if OBS.enabled:
            with OBS.tracer.span("analyze.model", "analyze", model=name):
                report = analyze_duv(
                    duv,
                    witness=witness,
                    witness_cycles=witness_cycles,
                    seed=seed,
                )
        else:
            report = analyze_duv(
                duv,
                witness=witness,
                witness_cycles=witness_cycles,
                seed=seed,
            )
        merged.extend(report.findings)
        model_facts[name] = report.facts
    merged.facts = {"models": model_facts, "witness_enabled": witness}
    return merged
