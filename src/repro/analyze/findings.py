"""Typed findings and the deterministic analysis report.

Every analyzer pass -- the delta-cycle race detector, the property
linter, the repo lint checks -- emits :class:`Finding`s: one rule id,
one severity, one location, optional model/property attribution.  A
:class:`AnalysisReport` folds findings from any number of passes into
one canonical, digest-stable document: findings sort by (rule, path,
line, message), the digest is a SHA-256 over their canonical JSON, and
everything else the passes learned (witness statistics, wall time)
rides in the non-digested ``facts`` side so opt-in instrumentation
never perturbs the digest.

Intentional patterns are *documented, not silenced*: an inline
``# repro: allow[rule-id] reason`` comment on the flagged line (or the
line directly above it) marks the finding suppressed.  Suppressed
findings stay in the report -- with their justification -- but do not
fail the gate; :meth:`AnalysisReport.ok` is True iff no unsuppressed
finding remains.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Finding severities, most severe first (report ordering is by rule
#: id, not severity; severity drives presentation and future gating).
SEVERITIES = ("error", "warning", "info")

#: ``# repro: allow[rule-id] optional reason`` -- the one suppression
#: syntax, scanned on the flagged line and the line directly above.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([a-z0-9.\-]+)\]\s*(.*)$")


@dataclass(frozen=True)
class Finding:
    """One analyzer diagnosis, attributable and digest-stable."""

    rule: str
    severity: str
    path: str
    line: int
    message: str
    model: str = ""
    prop: str = ""
    suppressed: bool = False
    suppression_reason: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of {SEVERITIES}"
            )

    def sort_key(self) -> Tuple[str, str, int, str, str, str]:
        """Canonical report order: rule, then location, then text."""
        return (self.rule, self.path, self.line, self.message, self.model, self.prop)

    def location(self) -> str:
        """``path:line`` (line 0 means the whole file / no source line)."""
        return f"{self.path}:{self.line}" if self.line else self.path

    def to_json(self) -> Dict[str, object]:
        """Wire form: every field, stable key order via sort_keys."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "model": self.model,
            "prop": self.prop,
            "suppressed": self.suppressed,
            "suppression_reason": self.suppression_reason,
        }

    def render(self) -> str:
        """One human-readable report line."""
        tags = []
        if self.model:
            tags.append(f"model={self.model}")
        if self.prop:
            tags.append(f"prop={self.prop}")
        tag = f" [{', '.join(tags)}]" if tags else ""
        mark = (
            f" (allowed: {self.suppression_reason or 'no reason given'})"
            if self.suppressed
            else ""
        )
        return (
            f"{self.location()}: {self.severity} {self.rule}: "
            f"{self.message}{tag}{mark}"
        )


def suppression_for(
    source_lines: Sequence[str], line: int, rule: str
) -> Optional[str]:
    """The ``# repro: allow[rule]`` reason covering ``line``, if any.

    Scans the flagged line itself and the line directly above it (the
    comment-above idiom for lines too long to annotate inline).  A
    match for a different rule id does not suppress.  Returns the
    justification text (possibly empty) or None when not suppressed.
    """
    if line <= 0:
        return None
    for candidate in (line, line - 1):
        if not 1 <= candidate <= len(source_lines):
            continue
        match = _ALLOW_RE.search(source_lines[candidate - 1])
        if match and match.group(1) == rule:
            return match.group(2).strip()
    return None


def apply_suppressions(
    findings: Iterable[Finding], sources: Dict[str, Sequence[str]]
) -> List[Finding]:
    """Mark findings covered by an inline allow comment as suppressed.

    ``sources`` maps finding paths (as emitted, repo-relative) to their
    split source lines; findings whose path is absent pass through
    unchanged (no source, no inline suppression possible).
    """
    out: List[Finding] = []
    for finding in findings:
        lines = sources.get(finding.path)
        if lines is None or finding.suppressed:
            out.append(finding)
            continue
        reason = suppression_for(lines, finding.line, finding.rule)
        if reason is None:
            out.append(finding)
        else:
            out.append(
                replace(finding, suppressed=True, suppression_reason=reason)
            )
    return out


@dataclass
class AnalysisReport:
    """All findings of one analysis run, canonically ordered.

    ``facts`` carries run facts (witness statistics, pass timings,
    rule counters) that are *telemetry*: they never enter
    :meth:`digest`, so an opt-in witness run over a clean model yields
    a byte-identical digest to the static-only run.
    """

    findings: List[Finding] = field(default_factory=list)
    facts: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.findings = sorted(self.findings, key=Finding.sort_key)

    def extend(self, findings: Iterable[Finding]) -> None:
        """Fold more findings in, keeping canonical order."""
        self.findings = sorted(
            [*self.findings, *findings], key=Finding.sort_key
        )

    def unsuppressed(self) -> List[Finding]:
        """Findings that fail the gate (no allow comment covers them)."""
        return [f for f in self.findings if not f.suppressed]

    @property
    def ok(self) -> bool:
        """True iff the gate passes: zero unsuppressed findings."""
        return not self.unsuppressed()

    def rule_counts(self) -> Dict[str, int]:
        """Findings per rule id (suppressed included), sorted by rule."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def digest(self) -> str:
        """SHA-256 over the canonical findings JSON -- facts excluded."""
        body = json.dumps(
            [f.to_json() for f in self.findings],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    def to_json(self) -> Dict[str, object]:
        """Wire form: findings + digest + gate verdict + run facts."""
        return {
            "findings": [f.to_json() for f in self.findings],
            "digest": self.digest(),
            "ok": self.ok,
            "total": len(self.findings),
            "unsuppressed": len(self.unsuppressed()),
            "rules": self.rule_counts(),
            "facts": self.facts,
        }

    def summary(self) -> str:
        """One line: gate verdict plus finding counts."""
        suppressed = len(self.findings) - len(self.unsuppressed())
        verdict = "clean" if self.ok else "FAILED"
        return (
            f"analyze {verdict}: {len(self.unsuppressed())} finding(s), "
            f"{suppressed} allowed"
        )

    def render(self) -> str:
        """The full human-readable report, one line per finding."""
        lines = [f.render() for f in self.findings]
        lines.append(self.summary())
        return "\n".join(lines)
