"""Property linter over the compiled table-driven automata.

A property that is vacuously true -- an antecedent that can never
match, an atom no signal assignment satisfies, a cover that cannot be
hit -- passes every regression while checking nothing.  This pass
lints directives *statically*, using the same machinery the runtime
uses: :func:`repro.psl.compiled.shared_automaton` for the DFA and the
compiled Boolean closures for atom evaluation, so what the linter
reasons about is exactly what the monitors execute.

Satisfiability is decided by bounded enumeration: each variable ranges
over ``False``/``True`` plus every numeric constant the property
compares against (so ``owner == 2`` is realizable even though signals
are not Boolean), across enough letters to cover the property's
``prev`` depth.  Every check is capped (atoms, domain values,
histories, automaton states) and *skips silently* past the cap --
the linter never reports a finding it could not fully decide, so
over-budget properties produce no false positives.

Rules::

    prop.unknown-signal     variable absent from the model's letter
    prop.contradiction      property can never hold / cover never hit
    prop.tautology          property holds on every trace
    prop.dead-atom          atom unsatisfiable under any assignment
    prop.vacuity            suffix-implication antecedent never matches
    prop.unreachable-state  automaton states only contradictory
                            symbols can reach
"""

from __future__ import annotations

import dataclasses
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..psl.ast_nodes import (
    TRUE,
    Const,
    Directive,
    DirectiveKind,
    Expr,
    FlAlways,
    FlBool,
    FlEventually,
    FlImplies,
    FlNever,
    FlNot,
    FlSere,
    FlSuffixImpl,
    FlUntil,
    Sere,
    SereBool,
)
from ..psl.compiled import SereAutomaton, _as_directive, _compiled_bool, shared_automaton
from ..psl.errors import PslError, PslUnsupportedError
from ..psl.monitor import history_depth
from .findings import Finding

#: Enumeration budgets: a check that would exceed one is skipped, not
#: approximated -- the linter prefers silence to a false positive.
MAX_ATOMS = 10
MAX_DOMAIN = 6
MAX_HISTORIES = 4096
MAX_STATES = 256


def _walk_nodes(node: object):
    """Generic recursive walk over the (frozen dataclass) PSL AST."""
    yield node
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        for field in dataclasses.fields(node):
            value = getattr(node, field.name)
            if isinstance(value, (list, tuple)):
                for item in value:
                    yield from _walk_nodes(item)
            elif dataclasses.is_dataclass(value):
                yield from _walk_nodes(value)


def _comparison_constants(node: object) -> List[object]:
    """Numeric constants the property mentions, for variable domains."""
    values: Dict[object, None] = {}
    for child in _walk_nodes(node):
        if isinstance(child, Const) and isinstance(child.value, (int, float)):
            if not isinstance(child.value, bool):
                values.setdefault(child.value)
    return sorted(values, key=repr)[: MAX_DOMAIN - 2]


def _histories(
    variables: Sequence[str], depth: int, domain: Sequence[object]
) -> Optional[List[List[Dict[str, object]]]]:
    """Every letter history up to ``depth + 1`` long over ``domain``.

    Includes *shorter* histories too, so ``prev`` at trace start (where
    the compiled closures answer False on the missing letter) is
    covered.  Returns None when the enumeration would exceed
    :data:`MAX_HISTORIES`.
    """
    names = list(variables)
    positions = depth + 1
    total = 0
    per_letter = len(domain) ** len(names) if names else 1
    for length in range(1, positions + 1):
        total += per_letter ** length
        if total > MAX_HISTORIES:
            return None
    histories: List[List[Dict[str, object]]] = []
    letter_choices = [
        dict(zip(names, combo))
        for combo in product(domain, repeat=len(names))
    ] or [{}]
    for length in range(1, positions + 1):
        for combo in product(range(len(letter_choices)), repeat=length):
            histories.append([letter_choices[i] for i in combo])
    return histories


def _expr_profile(expr: Expr) -> Optional[Tuple[bool, bool]]:
    """(can be True, can be False) under bounded enumeration, or None
    when over budget / the expression is unsupported."""
    try:
        depth = history_depth(expr)
        fn = _compiled_bool(expr)
    except PslError:
        return None
    variables = sorted(expr.variables())
    domain = [False, True, *_comparison_constants(expr)]
    histories = _histories(variables, depth, domain)
    if histories is None:
        return None
    can_true = can_false = False
    for history in histories:
        if fn(history):
            can_true = True
        else:
            can_false = True
        if can_true and can_false:
            break
    return can_true, can_false


def _automaton_for(item: Sere) -> Optional[SereAutomaton]:
    try:
        automaton = shared_automaton(item)
    except PslError:
        return None
    if len(automaton.atoms) > MAX_ATOMS:
        return None
    return automaton


def _realizable_symbols(automaton: SereAutomaton) -> Optional[Set[int]]:
    """Valuation symbols some variable assignment actually produces."""
    variables = sorted(automaton.variables())
    domain = [False, True, *_comparison_constants(automaton.sere)]
    histories = _histories(variables, automaton.depth, domain)
    if histories is None:
        return None
    return {automaton.valuation(history) for history in histories}


def _syntactic_symbols(automaton: SereAutomaton) -> Optional[List[int]]:
    """The full symbol space, with constant atoms pinned to their value
    (a symbol claiming ``true`` is false is noise, not a reachability
    witness)."""
    free_bits: List[int] = []
    fixed = 0
    for position, atom in enumerate(automaton.atoms):
        if isinstance(atom, Const):
            if atom.value:
                fixed |= 1 << position
        else:
            free_bits.append(position)
    if len(free_bits) > MAX_ATOMS:
        return None
    symbols = []
    for combo in range(1 << len(free_bits)):
        symbol = fixed
        for offset, position in enumerate(free_bits):
            if combo & (1 << offset):
                symbol |= 1 << position
        symbols.append(symbol)
    return symbols


def _explore(
    automaton: SereAutomaton, symbols: Iterable[int]
) -> Optional[Tuple[Set[int], bool]]:
    """BFS from start over ``symbols``: (reachable states, any match).

    None when the automaton grows past :data:`MAX_STATES` or the
    residual set explodes (over budget -- skip the check).
    """
    symbol_list = list(symbols)
    reachable = {automaton.start}
    matched = False
    frontier = [automaton.start]
    try:
        while frontier:
            state = frontier.pop()
            for symbol in symbol_list:
                next_state, hit = automaton.advance(state, symbol)
                if hit:
                    matched = True
                if next_state != automaton.DEAD and next_state not in reachable:
                    reachable.add(next_state)
                    if len(reachable) > MAX_STATES:
                        return None
                    frontier.append(next_state)
    except PslUnsupportedError:
        return None
    return reachable, matched


def _atom_satisfiable(automaton: SereAutomaton, atom: Expr) -> Optional[bool]:
    profile = _expr_profile(atom)
    if profile is None:
        return None
    return profile[0]


class _DirectiveLinter:
    """Lints one directive; findings accumulate in ``self.findings``."""

    def __init__(self, directive: Directive, path: str, model: str):
        self.directive = directive
        self.path = path
        self.model = model
        self.findings: List[Finding] = []

    def _emit(self, rule: str, severity: str, message: str) -> None:
        self.findings.append(Finding(
            rule=rule,
            severity=severity,
            path=self.path,
            line=0,
            message=message,
            model=self.model,
            prop=self.directive.name,
        ))

    # -- rules ------------------------------------------------------------

    def check_unknown_signals(self, namespace: Optional[Set[str]]) -> None:
        if namespace is None:
            return
        unknown = sorted(self.directive.prop.variables() - set(namespace))
        if unknown:
            self._emit(
                "prop.unknown-signal",
                "error",
                f"references signal(s) not in the model letter: "
                f"{', '.join(unknown)}",
            )

    def check_boolean_formula(self) -> None:
        """Tautology/contradiction on the Boolean-invariant shapes."""
        formula = self.directive.prop.formula
        expr: Optional[Expr] = None
        negated = False
        if isinstance(formula, FlAlways):
            body = formula.operand
            if isinstance(body, FlBool):
                expr = body.expr
            elif isinstance(body, FlNot) and isinstance(body.operand, FlBool):
                expr, negated = body.operand.expr, True
        elif isinstance(formula, FlNever) and isinstance(formula.operand, FlBool):
            expr, negated = formula.operand.expr, True
        elif isinstance(formula, FlEventually) and isinstance(
            formula.operand, FlBool
        ):
            profile = _expr_profile(formula.operand.expr)
            if profile is not None and not profile[0]:
                self._emit(
                    "prop.contradiction",
                    "error",
                    "eventually! of an unsatisfiable expression can never hold",
                )
            return
        elif isinstance(formula, FlUntil) and isinstance(formula.right, FlBool):
            if formula.strong:
                profile = _expr_profile(formula.right.expr)
                if profile is not None and not profile[0]:
                    self._emit(
                        "prop.contradiction",
                        "error",
                        "strong until with an unsatisfiable right side "
                        "can never hold",
                    )
            return
        if expr is None:
            return
        profile = _expr_profile(expr)
        if profile is None:
            return
        can_true, can_false = profile
        # the invariant demands expr (negated: !expr) every cycle
        always_holds = not can_false if not negated else not can_true
        never_holds = not can_true if not negated else not can_false
        if always_holds:
            self._emit(
                "prop.tautology",
                "warning",
                "invariant holds under every assignment; it checks nothing",
            )
        elif never_holds:
            self._emit(
                "prop.contradiction",
                "error",
                "invariant fails under every assignment; it cannot hold "
                "on any trace",
            )

    def _sere_targets(self) -> List[Tuple[str, Sere]]:
        """(role, SERE) pairs this directive compiles to automata."""
        formula = self.directive.prop.formula
        targets: List[Tuple[str, Sere]] = []
        if self.directive.kind == DirectiveKind.COVER:
            body = formula
            if isinstance(body, FlEventually):
                body = body.operand
            if isinstance(body, FlSere):
                targets.append(("cover", body.sere))
            elif isinstance(body, FlBool):
                targets.append(("cover", SereBool(body.expr)))
            return targets
        if isinstance(formula, FlNever) and isinstance(formula.operand, FlSere):
            targets.append(("never", formula.operand.sere))
        if isinstance(formula, FlAlways):
            body = formula.operand
            if isinstance(body, FlSuffixImpl):
                targets.append(("antecedent", body.antecedent))
                consequent = body.consequent
                if isinstance(consequent, FlSere):
                    targets.append(("consequent", consequent.sere))
                elif isinstance(consequent, FlBool):
                    targets.append(("consequent", SereBool(consequent.expr)))
            elif isinstance(body, FlImplies) and isinstance(body.left, FlBool):
                targets.append(("antecedent", SereBool(body.left.expr)))
                if isinstance(body.right, FlSere):
                    targets.append(("consequent", body.right.sere))
                elif isinstance(body.right, FlBool):
                    targets.append(("consequent", SereBool(body.right.expr)))
        return targets

    def check_automata(self) -> None:
        """Dead atoms, vacuity, unhittable covers, unreachable states."""
        for role, sere in self._sere_targets():
            automaton = _automaton_for(sere)
            if automaton is None:
                continue
            dead_atoms = self._check_dead_atoms(role, automaton)
            realizable = _realizable_symbols(automaton)
            if realizable is None:
                continue
            real = _explore(automaton, realizable)
            if real is None:
                continue
            real_states, real_match = real
            if not real_match:
                if role == "antecedent":
                    self._emit(
                        "prop.vacuity",
                        "warning",
                        "the antecedent SERE never matches under any "
                        "assignment: the implication holds vacuously",
                    )
                elif role == "cover":
                    self._emit(
                        "prop.contradiction",
                        "error",
                        "the cover SERE never matches under any "
                        "assignment: the goal is unreachable",
                    )
                elif role == "never":
                    self._emit(
                        "prop.tautology",
                        "warning",
                        "the forbidden SERE never matches under any "
                        "assignment: the never holds trivially",
                    )
            # Unreachable states are only reported when a *dead atom*
            # explains them: the full symbol space also contains
            # valuations where satisfiable atoms are merely jointly
            # contradictory (e.g. one atom is the negation of
            # another), and the table states those reach are lazy-DFA
            # artifacts, not property bugs.
            if not dead_atoms:
                continue
            syntactic = _syntactic_symbols(automaton)
            if syntactic is None:
                continue
            full = _explore(automaton, syntactic)
            if full is None:
                continue
            full_states, _ = full
            orphaned = full_states - real_states
            if orphaned:
                self._emit(
                    "prop.unreachable-state",
                    "warning",
                    f"{len(orphaned)} of {len(full_states)} {role} "
                    f"automaton state(s) are reachable only through the "
                    f"unsatisfiable atom(s) "
                    f"{', '.join(repr(str(a)) for a in dead_atoms)}",
                )

    def _check_dead_atoms(
        self, role: str, automaton: SereAutomaton
    ) -> List[Expr]:
        dead: List[Expr] = []
        for atom in automaton.atoms:
            if isinstance(atom, Const):
                continue  # true[*] padding and literals are structural
            satisfiable = _atom_satisfiable(automaton, atom)
            if satisfiable is False:
                dead.append(atom)
                self._emit(
                    "prop.dead-atom",
                    "warning",
                    f"{role} atom '{atom}' is unsatisfiable under any "
                    f"assignment",
                )
        return dead


def lint_directive(
    directive: Directive,
    *,
    namespace: Optional[Set[str]] = None,
    path: str = "<properties>",
    model: str = "",
) -> List[Finding]:
    """All property-lint findings for one directive."""
    linter = _DirectiveLinter(directive, path, model)
    linter.check_unknown_signals(namespace)
    linter.check_boolean_formula()
    linter.check_automata()
    return linter.findings


def lint_properties(
    sources: Iterable,
    *,
    namespace: Optional[Iterable[str]] = None,
    path: str = "<properties>",
    model: str = "",
) -> List[Finding]:
    """Lint a property set (Directives, Properties, Formulas or PSL text).

    ``namespace`` is the model's letter namespace -- the signal names a
    sampled letter carries -- enabling ``prop.unknown-signal``; None
    disables that rule (fixture properties have no model).
    """
    names = set(namespace) if namespace is not None else None
    findings: List[Finding] = []
    for source in sources:
        directive = _as_directive(source)
        findings.extend(
            lint_directive(directive, namespace=names, path=path, model=model)
        )
    return findings
