"""CLI entry point: ``python -m repro`` drives verification sessions."""

import sys

from .cli import main

sys.exit(main())
