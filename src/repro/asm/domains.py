"""Finite domains for action arguments and state variables (rule R4).

The FSM-generation algorithm "requires as input: domains, methods,
actions and variables"; domains are "finite collections of values from
which method arguments are taken" (paper Section 2.2.1).  Restricting
domains is the main lever against state explosion (rule R4: "domains for
all members must be inherited from AsmL types and restricted to the
possible values the system can accept").

A domain is either a static tuple of values or a *provider* computed
from the current model (AsmL supports drawing arguments from dynamic
sets, e.g. ``any m | m in ActiveMasters``).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from .errors import DomainError


class Domain:
    """A named, finite collection of candidate values."""

    def __init__(
        self,
        name: str,
        values: Iterable[Any] | None = None,
        provider: Callable[[Any], Iterable[Any]] | None = None,
    ):
        if (values is None) == (provider is None):
            raise DomainError("Domain needs exactly one of values= or provider=")
        self.name = name
        self._values = tuple(values) if values is not None else None
        self._provider = provider
        if self._values is not None and not self._values:
            raise DomainError(f"domain {name!r} is empty")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def of(cls, name: str, *values: Any) -> "Domain":
        """Explicit enumeration: ``Domain.of('cmd', 'READ', 'WRITE')``."""
        return cls(name, values=values)

    @classmethod
    def int_range(cls, name: str, low: int, high: int) -> "Domain":
        """Inclusive integer interval ``low..high``."""
        if low > high:
            raise DomainError(f"empty range {low}..{high} for domain {name!r}")
        return cls(name, values=range(low, high + 1))

    @classmethod
    def boolean(cls, name: str = "bool") -> "Domain":
        return cls(name, values=(False, True))

    @classmethod
    def dynamic(cls, name: str, provider: Callable[[Any], Iterable[Any]]) -> "Domain":
        """State-dependent domain; ``provider(model)`` yields the values."""
        return cls(name, provider=provider)

    # -- use -----------------------------------------------------------------

    @property
    def is_static(self) -> bool:
        return self._values is not None

    def values(self, model: Any = None) -> Sequence[Any]:
        """The candidate values, given the current model for dynamic domains."""
        if self._values is not None:
            return self._values
        assert self._provider is not None
        return tuple(self._provider(model))

    def contains(self, value: Any, model: Any = None) -> bool:
        return value in self.values(model)

    def restrict(self, predicate: Callable[[Any], bool], name: str | None = None) -> "Domain":
        """A sub-domain keeping only values satisfying ``predicate``."""
        if self._values is not None:
            kept = tuple(v for v in self._values if predicate(v))
            if not kept:
                raise DomainError(f"restriction of {self.name!r} is empty")
            return Domain(name or f"{self.name}|restricted", values=kept)
        provider = self._provider
        assert provider is not None
        return Domain(
            name or f"{self.name}|restricted",
            provider=lambda model: (v for v in provider(model) if predicate(v)),
        )

    def size(self, model: Any = None) -> int:
        return len(tuple(self.values(model)))

    def __repr__(self) -> str:
        if self._values is not None:
            preview = ", ".join(repr(v) for v in self._values[:6])
            if len(self._values) > 6:
                preview += ", ..."
            return f"Domain({self.name!r}: {preview})"
        return f"Domain({self.name!r}: dynamic)"


def cartesian_product(domains: Sequence[Domain], model: Any = None) -> list[tuple]:
    """All argument tuples drawn from the given domains, in declaration order."""
    tuples: list[tuple] = [()]
    for domain in domains:
        values = domain.values(model)
        tuples = [existing + (value,) for existing in tuples for value in values]
    return tuples
