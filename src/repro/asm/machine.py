"""Abstract state machines in the AsmL style.

This module is the heart of the ASM substrate: machine classes declare
typed :class:`StateVar` fields and guarded ``@action`` methods with
AsmL-style ``require`` preconditions; an :class:`AsmModel` groups machine
*instances* (rule R1: "for every class we have to define a list of
instantiations"), takes full-state snapshots, and executes actions under
update-set semantics so the FSM explorer can probe and roll back.

A minimal model in the style of the paper's Figure 4::

    class PciArbiter(AsmMachine):
        m_active_master = StateVar(-1)
        m_req = StateVar(False)
        m_gnt = StateVar(False)

        @action
        def update_m_req(self):
            require(self.model.get_global("system_init") is True)
            require(self.m_gnt is False and self.m_req is False)
            requesting = [i for i in masters_range if masters[i].m_req]
            self.m_active_master = choose_min(requesting)
            self.m_req = True
"""

from __future__ import annotations

import functools
import inspect
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, Sequence, Tuple

from .collections_ import _ATOMIC, _PASSTHROUGH, freeze
from .domains import Domain, cartesian_product
from .errors import (
    AsmError,
    DomainError,
    InconsistentUpdateError,
    ModelRuleViolation,
    NoChoiceError,
    RequirementFailure,
)
from .state import FullState, Location, StateKey
from .updates import _MISSING, PARALLEL, SEQUENTIAL, StepMode, UpdateSet

__all__ = [
    "StateVar",
    "action",
    "require",
    "AsmMachine",
    "AsmModel",
    "ActionInfo",
    "ActionCall",
    "choose_min",
    "choose_max",
    "choose_any",
    "exists_where",
    "for_all",
    "PARALLEL",
    "SEQUENTIAL",
]


def require(condition: Any, message: str = "") -> None:
    """AsmL ``require``: raise :class:`RequirementFailure` when false.

    Used at the top of action bodies to express rule-R3 preconditions;
    the explorer interprets the failure as "action not enabled here".
    """
    if not condition:
        raise RequirementFailure(message)


class StateVar:
    """A declared, snapshot-able machine variable.

    Parameters
    ----------
    default:
        Initial value (frozen on assignment; lists/dicts/sets become
        ``Seq``/``Map``/``AsmSet``).
    domain:
        Optional static :class:`Domain`; writes outside it raise
        :class:`DomainError` (rule R4 enforcement).
    state_variable:
        Whether this location participates in the default FSM state key.
        Large bookkeeping fields can opt out to keep the FSM small.
    doc:
        Documentation string shown by :func:`help`.
    """

    __slots__ = ("default", "domain", "state_variable", "doc", "name")

    def __init__(
        self,
        default: Any = None,
        *,
        domain: Domain | None = None,
        state_variable: bool = True,
        doc: str = "",
    ):
        self.default = freeze(default)
        self.domain = domain
        self.state_variable = state_variable
        self.doc = doc
        self.name = ""  # filled by __set_name__

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, instance: "AsmMachine | None", owner: type):
        if instance is None:
            return self
        model = instance.model
        step = (instance if model is None else model)._active_step
        if step is not None and step.mode is StepMode.SEQUENTIAL:
            present, value = step.pending(instance._location(self.name))
            if present:
                return value
        return instance._state[self.name]

    def __set__(self, instance: "AsmMachine", value: Any) -> None:
        cls = value.__class__
        if cls not in _ATOMIC and cls not in _PASSTHROUGH:
            value = freeze(value)
        domain = self.domain
        if domain is not None and domain.is_static:
            if not domain.contains(value):
                raise DomainError(
                    f"{instance.name}.{self.name}: value {value!r} outside "
                    f"domain {domain.name!r}"
                )
        model = instance.model
        step = (instance if model is None else model)._active_step
        if step is None:
            instance._state[self.name] = value
            return
        # Inlined UpdateSet.record -- this is the hottest write path in
        # the scoreboard's lockstep replay (one call per rule firing).
        location = instance._location(self.name)
        updates = step._updates
        if location in updates:
            if step.mode is StepMode.PARALLEL and updates[location] != value:
                raise InconsistentUpdateError(
                    str(location), updates[location], value
                )
        updates[location] = value


@dataclass(frozen=True)
class ActionInfo:
    """Static metadata attached to an ``@action`` method."""

    name: str
    params: Tuple[str, ...]
    domains: Dict[str, Domain] = field(default_factory=dict)
    mode: StepMode = StepMode.PARALLEL
    group: str | None = None
    doc: str = ""


@dataclass(frozen=True)
class ActionCall:
    """One concrete transition candidate: machine + action + arguments."""

    machine: str
    action: str
    args: Tuple[Any, ...] = ()

    def label(self) -> str:
        """Transition label, e.g. ``arbiter.grant(2)`` -- paper: "the
        transitions in the FSM are the method calls (including argument
        values)"."""
        rendered = ", ".join(repr(a) for a in self.args)
        return f"{self.machine}.{self.action}({rendered})"

    def __str__(self) -> str:
        return self.label()


def action(
    func: Callable | None = None,
    *,
    params: Dict[str, Domain] | None = None,
    mode: StepMode = StepMode.PARALLEL,
    group: str | None = None,
):
    """Mark a machine method as an explorable ASM action.

    ``params`` maps argument names to finite :class:`Domain` objects
    (rule R4); domains may also be supplied later through the
    exploration configuration.  ``mode`` selects update-set semantics
    (:data:`PARALLEL`, the classic ASM default) or AsmL sequential
    semantics (:data:`SEQUENTIAL`).  ``group`` tags the action for the
    explorer's action-group filtering.
    """

    def decorate(f: Callable) -> Callable:
        signature = inspect.signature(f)
        names = tuple(p for p in signature.parameters if p != "self")
        declared = dict(params or {})
        unknown = set(declared) - set(names)
        if unknown:
            raise AsmError(
                f"action {f.__name__!r}: domains given for unknown "
                f"parameters {sorted(unknown)}"
            )
        info = ActionInfo(
            name=f.__name__,
            params=names,
            domains=declared,
            mode=mode,
            group=group,
            doc=(f.__doc__ or "").strip(),
        )

        @functools.wraps(f)
        def wrapper(self: "AsmMachine", *args: Any, **kwargs: Any) -> Any:
            model = self.model
            owner = self if model is None else model
            if owner._active_step is not None:
                # Nested call inside an ongoing step: share the context.
                return f(self, *args, **kwargs)
            # Reuse the owner's spare UpdateSet when one is parked:
            # action replay allocates one step per call, and the spare
            # makes the common non-nested case allocation-free.
            step = owner._spare_step
            if step is None:
                step = UpdateSet(info.mode)
            else:
                owner._spare_step = None
                step.mode = info.mode
            owner._active_step = step
            try:
                result = f(self, *args, **kwargs)
            except BaseException:
                owner._active_step = None  # discard buffered updates
                raise
            owner._active_step = None
            owner._apply(step)
            step._updates.clear()
            owner._spare_step = step
            return result

        wrapper.asm_action = info  # type: ignore[attr-defined]
        return wrapper

    if func is not None:
        return decorate(func)
    return decorate


#: interned ``$globals`` locations -- global names are few and reused
#: on every ``get_global``/``set_global`` inside action bodies
_GLOBAL_LOCATIONS: Dict[str, Location] = {}


def _global_location(name: str) -> Location:
    location = _GLOBAL_LOCATIONS.get(name)
    if location is None:
        location = _GLOBAL_LOCATIONS[name] = Location("$globals", name)
    return location


class _MachineMeta(type):
    """Collects StateVar and action declarations, preserving order."""

    def __new__(mcls, name, bases, namespace):
        cls = super().__new__(mcls, name, bases, namespace)
        state_vars: Dict[str, StateVar] = {}
        actions: Dict[str, ActionInfo] = {}
        for klass in reversed(cls.__mro__):
            for attr, value in vars(klass).items():
                if isinstance(value, StateVar):
                    state_vars[attr] = value
                elif callable(value) and hasattr(value, "asm_action"):
                    actions[attr] = value.asm_action
        cls._state_vars = state_vars  # type: ignore[attr-defined]
        cls._actions = actions  # type: ignore[attr-defined]
        return cls


class AsmMachine(metaclass=_MachineMeta):
    """Base class for ASM machine instances.

    Subclasses declare :class:`StateVar` fields and ``@action`` methods.
    Instances may live standalone (free writes apply immediately, actions
    run under their own update set) or registered in an
    :class:`AsmModel`, which then owns the step context and snapshots.
    """

    _state_vars: Dict[str, StateVar] = {}
    _actions: Dict[str, ActionInfo] = {}

    def __init__(self, name: str | None = None, model: "AsmModel | None" = None):
        self._state: Dict[str, Any] = {
            var_name: var.default for var_name, var in self._state_vars.items()
        }
        self._active_step: UpdateSet | None = None
        self._spare_step: UpdateSet | None = None
        self.model: AsmModel | None = None
        self.name = name or f"{type(self).__name__.lower()}"
        #: interned Location objects, keyed by variable; rebuilt lazily
        #: when the machine is renamed (model registration)
        self._locations: Dict[str, Location] = {}
        if model is not None:
            model.register(self)

    # -- plumbing ---------------------------------------------------------

    def _step_owner(self) -> "AsmMachine | AsmModel":
        return self.model if self.model is not None else self

    def _location(self, variable: str) -> Location:
        location = self._locations.get(variable)
        # location[0] is the machine name (Location is a tuple); the
        # guard rebuilds the cache after a rename at registration
        if location is None or location[0] != self.name:
            location = Location(self.name, variable)
            self._locations[variable] = location
        return location

    def _apply(self, step: UpdateSet) -> None:
        """Apply a finished update set (standalone machines only)."""
        for location, value in step.items():
            if location.machine != self.name:
                raise AsmError(
                    f"standalone machine {self.name!r} cannot update "
                    f"{location} -- register both machines in a model"
                )
            self._state[location.variable] = value

    # -- introspection ------------------------------------------------------

    @classmethod
    def declared_state_vars(cls) -> Dict[str, StateVar]:
        return dict(cls._state_vars)

    @classmethod
    def declared_actions(cls) -> Dict[str, ActionInfo]:
        return dict(cls._actions)

    def state_items(self) -> Iterator[tuple[str, Any]]:
        for var_name in self._state_vars:
            yield var_name, self._state[var_name]

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v!r}" for k, v in self.state_items())
        return f"<{type(self).__name__} {self.name}: {body}>"


class AsmModel:
    """A model program: a named collection of machine instances.

    The model owns the step context (so one action may update several
    machines atomically), provides full-state snapshot/restore for the
    explorer, and enumerates transition candidates from action domains.
    """

    def __init__(self, name: str = "model"):
        self.name = name
        self.machines: Dict[str, AsmMachine] = {}
        self._globals: Dict[str, Any] = {}
        self._active_step: UpdateSet | None = None
        self._spare_step: UpdateSet | None = None
        self._sealed = False
        self._initial_state: FullState | None = None
        #: presorted (Location, machine, var) triples, filled at seal()
        self._machine_locations: tuple | None = None
        #: machines_of results, cached once the instance set is sealed
        self._machines_by_class: Dict[type, list] = {}
        #: Location -> (state dict, variable) write targets for _apply
        self._apply_targets: Dict[Location, tuple] = {}

    # -- registry (rule R1) ---------------------------------------------------

    def register(self, machine: AsmMachine, name: str | None = None) -> AsmMachine:
        if self._sealed:
            raise ModelRuleViolation(
                "R1_FSM", "cannot register machines after the model is sealed"
            )
        if name:
            machine.name = name
        if not machine.name or not (machine.name[0].isalnum() or machine.name[0] == "_"):
            raise AsmError(
                f"machine name {machine.name!r} must start with a letter, "
                f"digit or underscore (reserved prefixes: '$...')"
            )
        if machine.name in self.machines:
            # Disambiguate auto-generated names: arbiter, arbiter_2, ...
            base = machine.name
            counter = 2
            while f"{base}_{counter}" in self.machines:
                counter += 1
            machine.name = f"{base}_{counter}"
        machine.model = self
        self.machines[machine.name] = machine
        return machine

    def machine(self, name: str) -> AsmMachine:
        return self.machines[name]

    def machines_of(self, cls: type) -> list[AsmMachine]:
        cached = self._machines_by_class.get(cls)
        if cached is not None:
            return cached
        selected = [m for m in self.machines.values() if isinstance(m, cls)]
        if self._sealed:
            # The instance set is fixed (rule R1), so the scan result
            # is stable; hot action bodies query it every firing.
            self._machines_by_class[cls] = selected
        return selected

    # -- globals (shared locations such as SystemInit) ---------------------------

    def set_global(self, name: str, value: Any) -> None:
        value = freeze(value)
        if self._active_step is None:
            self._globals[name] = value
        else:
            self._active_step.record(_global_location(name), value)

    def get_global(self, name: str, default: Any = None) -> Any:
        step = self._active_step
        if step is not None and step.mode is StepMode.SEQUENTIAL:
            present, value = step.pending(_global_location(name))
            if present:
                return value
        return self._globals.get(name, default)

    # -- sealing and initial state ------------------------------------------------

    def seal(self) -> None:
        """Fix the instance set (rule R1) and capture the initial state."""
        self._sealed = True
        self._machine_locations = tuple(
            sorted(
                (Location(machine_name, var_name), machine_name, var_name)
                for machine_name in self.machines
                for var_name in self.machines[machine_name]._state_vars
            )
        )
        self._initial_state = self.full_state()

    @property
    def sealed(self) -> bool:
        return self._sealed

    def initial_state(self) -> FullState:
        if self._initial_state is None:
            return self.full_state()
        return self._initial_state

    def reset(self) -> None:
        """Restore the state captured at :meth:`seal` time."""
        if self._initial_state is not None:
            self.restore(self._initial_state)

    # -- snapshots ------------------------------------------------------------

    def full_state(self) -> FullState:
        if self._machine_locations is not None:
            # Fast path after seal: locations are presorted, and
            # "$globals" sorts before every machine name ('$' < letters).
            machines = self.machines
            pairs = [
                (_global_location(name), self._globals[name])
                for name in sorted(self._globals)
            ]
            pairs.extend(
                (loc, machines[machine_name]._state[var_name])
                for loc, machine_name, var_name in self._machine_locations
            )
            return FullState(pairs, presorted=True)
        pairs = []
        for machine_name in sorted(self.machines):
            machine = self.machines[machine_name]
            for var_name, value in machine.state_items():
                pairs.append((Location(machine_name, var_name), value))
        for global_name in sorted(self._globals):
            pairs.append((Location("$globals", global_name), self._globals[global_name]))
        return FullState(pairs)

    def restore(self, state: FullState) -> None:
        if self._active_step is not None:
            raise AsmError("cannot restore state during an active step")
        for location, value in state.items():
            if location.machine == "$globals":
                self._globals[location.variable] = value
            else:
                self.machines[location.machine]._state[location.variable] = value

    def state_variables(self) -> list[Location]:
        """Default FSM state key: every StateVar flagged ``state_variable``."""
        selected: list[Location] = []
        for machine_name in sorted(self.machines):
            machine = self.machines[machine_name]
            for var_name, var in machine._state_vars.items():
                if var.state_variable:
                    selected.append(Location(machine_name, var_name))
        for global_name in sorted(self._globals):
            selected.append(Location("$globals", global_name))
        return selected

    def state_key(self, selected: Iterable[Location] | None = None) -> StateKey:
        chosen = list(selected) if selected is not None else self.state_variables()
        return self.full_state().project(chosen)

    # -- action execution ---------------------------------------------------------

    def _apply(self, step: UpdateSet) -> None:
        # location -> (target_dict, key) resolved once; replay traffic
        # hits the same few locations thousands of times
        targets = self._apply_targets
        for location, value in step._updates.items():
            try:
                target = targets[location]
            except KeyError:
                if location.machine == "$globals":
                    target = (self._globals, location.variable)
                else:
                    target = (
                        self.machines[location.machine]._state,
                        location.variable,
                    )
                targets[location] = target
            target[0][target[1]] = value

    def execute(self, call: ActionCall) -> Any:
        """Run one action under step semantics; raises on failed require."""
        machine = self.machines[call.machine]
        method = getattr(machine, call.action)
        info = getattr(method, "asm_action", None)
        if info is None:
            raise AsmError(f"{call.machine}.{call.action} is not an @action")
        try:
            return method(*call.args)
        except RequirementFailure as failure:
            raise RequirementFailure(str(failure), action=call.label()) from None

    def try_execute(self, call: ActionCall) -> tuple[bool, Any]:
        """Run one action, treating a failed precondition as 'not enabled'.

        Buffered updates guarantee the state is untouched when the
        precondition fails, so this doubles as the explorer's
        enabledness probe.
        """
        try:
            return True, self.execute(call)
        except RequirementFailure:
            return False, None

    # -- candidate enumeration -------------------------------------------------------

    def candidate_calls(
        self,
        actions: Iterable[str] | None = None,
        extra_domains: Dict[str, Domain] | None = None,
        groups: Iterable[str] | None = None,
    ) -> Iterator[ActionCall]:
        """Enumerate all (machine, action, args) transition candidates.

        ``actions`` filters by ``machine.action`` or bare action name;
        ``groups`` filters by action group; ``extra_domains`` supplies or
        overrides argument domains keyed ``"action.param"`` or ``"param"``.
        """
        wanted = set(actions) if actions is not None else None
        wanted_groups = set(groups) if groups is not None else None
        overrides = extra_domains or {}
        for machine_name in sorted(self.machines):
            machine = self.machines[machine_name]
            for action_name, info in machine._actions.items():
                qualified = f"{machine_name}.{action_name}"
                if wanted is not None and qualified not in wanted and action_name not in wanted:
                    continue
                if wanted_groups is not None and info.group not in wanted_groups:
                    continue
                domains = self._resolve_domains(qualified, info, overrides)
                for args in cartesian_product(domains, self):
                    yield ActionCall(machine_name, action_name, args)

    def _resolve_domains(
        self,
        qualified: str,
        info: ActionInfo,
        overrides: Dict[str, Domain],
    ) -> list[Domain]:
        domains: list[Domain] = []
        missing: list[str] = []
        for param in info.params:
            domain = (
                overrides.get(f"{qualified}.{param}")
                or overrides.get(f"{info.name}.{param}")
                or overrides.get(param)
                or info.domains.get(param)
            )
            if domain is None:
                missing.append(param)
            else:
                domains.append(domain)
        if missing:
            raise ModelRuleViolation(
                "R4_FSM",
                f"action {qualified!r} has parameters without finite "
                f"domains: {missing} -- declare them in @action(params=...) "
                f"or in the exploration config",
            )
        return domains


# -- AsmL choice expressions ------------------------------------------------------


def choose_min(candidates: Iterable[Any], where: Callable[[Any], bool] | None = None):
    """AsmL ``min x | x in S where P(x)`` (Figure 4's master selection)."""
    matches = [c for c in candidates if where is None or where(c)]
    if not matches:
        raise NoChoiceError("choose_min: no candidate satisfies the filter")
    return min(matches)


def choose_max(candidates: Iterable[Any], where: Callable[[Any], bool] | None = None):
    """AsmL ``max x | x in S where P(x)``."""
    matches = [c for c in candidates if where is None or where(c)]
    if not matches:
        raise NoChoiceError("choose_max: no candidate satisfies the filter")
    return max(matches)


def choose_any(candidates: Iterable[Any], where: Callable[[Any], bool] | None = None):
    """AsmL ``any x | x in S where P(x)``.

    Deterministic: returns the first matching candidate in iteration
    order, so exploration stays reproducible.
    """
    for candidate in candidates:
        if where is None or where(candidate):
            return candidate
    raise NoChoiceError("choose_any: no candidate satisfies the filter")


def exists_where(candidates: Iterable[Any], where: Callable[[Any], bool]) -> bool:
    """AsmL ``exists x in S where P(x)``."""
    return any(where(c) for c in candidates)


def for_all(candidates: Iterable[Any], where: Callable[[Any], bool]) -> bool:
    """AsmL ``forall x in S holds P(x)``."""
    return all(where(c) for c in candidates)
