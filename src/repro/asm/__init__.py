"""AsmL-flavoured Abstract State Machines.

This package is the reproduction's stand-in for Microsoft's AsmL
language and runtime (paper Section 2.1.2/2.2.1): machine classes with
typed state variables, guarded actions with ``require`` preconditions,
update-set step semantics, finite domains, and immutable AsmL collection
types.  The FSM explorer (:mod:`repro.explorer`) drives models built
from these pieces exactly like the AsmL tester drives AsmL model
programs.
"""

from .collections_ import AsmSet, Map, Seq, freeze
from .domains import Domain, cartesian_product
from .errors import (
    AsmError,
    DomainError,
    FrozenStateError,
    InconsistentUpdateError,
    ModelRuleViolation,
    NoChoiceError,
    RequirementFailure,
    TypeMismatchError,
)
from .machine import (
    PARALLEL,
    SEQUENTIAL,
    ActionCall,
    ActionInfo,
    AsmMachine,
    AsmModel,
    StateVar,
    action,
    choose_any,
    choose_max,
    choose_min,
    exists_where,
    for_all,
    require,
)
from .state import FullState, Location, StateKey
from .types import Bit, BitVector, Byte, bounded_int_range, ensure_in_range
from .updates import StepMode, UpdateSet

__all__ = [
    "AsmSet",
    "Map",
    "Seq",
    "freeze",
    "Domain",
    "cartesian_product",
    "AsmError",
    "DomainError",
    "FrozenStateError",
    "InconsistentUpdateError",
    "ModelRuleViolation",
    "NoChoiceError",
    "RequirementFailure",
    "TypeMismatchError",
    "PARALLEL",
    "SEQUENTIAL",
    "ActionCall",
    "ActionInfo",
    "AsmMachine",
    "AsmModel",
    "StateVar",
    "action",
    "choose_any",
    "choose_max",
    "choose_min",
    "exists_where",
    "for_all",
    "require",
    "FullState",
    "Location",
    "StateKey",
    "Bit",
    "BitVector",
    "Byte",
    "bounded_int_range",
    "ensure_in_range",
    "StepMode",
    "UpdateSet",
]
