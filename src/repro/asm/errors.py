"""Exceptions raised by the ASM framework.

The AsmL runtime distinguishes several failure modes that matter to the
FSM-generation algorithm of the paper (Section 2.2.1):

* a violated ``require`` precondition (AsmL raises a requirement failure;
  the explorer treats it as "action not enabled"),
* an inconsistent update set (two parallel updates writing different
  values to the same location -- the classic ASM consistency condition),
* model-construction errors (rule R1: classes used without registered
  instances; rule R4: values outside the declared domain).
"""

from __future__ import annotations


class AsmError(Exception):
    """Base class for all ASM framework errors."""


class RequirementFailure(AsmError):
    """A ``require`` precondition evaluated to false.

    During free execution this propagates like an AsmL runtime error;
    during exploration the engine catches it and marks the action as not
    enabled in the current state (paper rule R3).
    """

    def __init__(self, message: str = "", *, action: str | None = None):
        self.action = action
        text = message or "requirement failed"
        if action:
            text = f"{action}: {text}"
        super().__init__(text)


class InconsistentUpdateError(AsmError):
    """Two updates in the same step assign different values to one location."""

    def __init__(self, location: str, first, second):
        self.location = location
        self.first = first
        self.second = second
        super().__init__(
            f"inconsistent update set: location {location!r} assigned both "
            f"{first!r} and {second!r} in the same step"
        )


class FrozenStateError(AsmError):
    """A state variable was written outside of an action/step context."""


class DomainError(AsmError):
    """A value falls outside a declared finite domain (rule R4)."""


class ModelRuleViolation(AsmError):
    """A model violates one of the R-FSM modelling rules (R1..R4)."""

    def __init__(self, rule: str, message: str):
        self.rule = rule
        super().__init__(f"{rule}: {message}")


class NoChoiceError(AsmError):
    """A ``choose``/``min ... where`` found no candidate satisfying the filter."""


class TypeMismatchError(AsmError):
    """An operation mixed incompatible ASM types (e.g. BitVector widths)."""
