"""State locations, full-state snapshots and FSM state keys.

Classic ASM semantics views the state as a mapping from *locations* to
values.  Here a location is ``(machine_name, variable_name)``.  The FSM
explorer needs two related notions (paper Section 2.2.1):

* the **full state** -- every location of every registered machine; used
  to save/restore the model during exploration, and
* the **state key** -- the projection onto the *selected state
  variables*; "the states in the FSM are determined by the values of
  selected variables in the model program, called state variables".

Both are immutable and hashable.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Tuple


class Location(tuple):
    """One ASM location: a named variable of a named machine instance.

    A ``tuple`` subclass rather than a dataclass: locations key every
    update-set and full-state dictionary on the scoreboard's replay hot
    path, and the tuple base gives hashing, equality and ordering at C
    speed (no per-lookup ``__hash__`` dispatch into Python).
    """

    __slots__ = ()

    def __new__(cls, machine: str, variable: str) -> "Location":
        return tuple.__new__(cls, (machine, variable))

    def __getnewargs__(self) -> Tuple[str, str]:
        return (self[0], self[1])

    @property
    def machine(self) -> str:
        return self[0]

    @property
    def variable(self) -> str:
        return self[1]

    def __repr__(self) -> str:
        return f"Location(machine={self[0]!r}, variable={self[1]!r})"

    def __str__(self) -> str:
        return f"{self[0]}.{self[1]}"


class FullState:
    """An immutable snapshot of every location of an ASM model.

    Stored as a sorted tuple of ``(Location, value)`` pairs; equality and
    hashing are structural so the explorer can detect revisited states.
    """

    __slots__ = ("_pairs", "_index")

    def __init__(
        self, pairs: Iterable[tuple[Location, Any]], *, presorted: bool = False
    ):
        if presorted:
            self._pairs: Tuple[tuple[Location, Any], ...] = tuple(pairs)
        else:
            self._pairs = tuple(sorted(pairs, key=lambda kv: kv[0]))
        self._index = dict(self._pairs)

    def value(self, location: Location) -> Any:
        return self._index[location]

    def get(self, machine: str, variable: str, default: Any = None) -> Any:
        return self._index.get(Location(machine, variable), default)

    def locations(self) -> Tuple[Location, ...]:
        return tuple(loc for loc, _ in self._pairs)

    def items(self) -> Tuple[tuple[Location, Any], ...]:
        return self._pairs

    def project(self, selected: Iterable[Location]) -> "StateKey":
        """Project onto the selected state variables (FSM state key)."""
        wanted = set(selected)
        return StateKey(
            tuple((loc, val) for loc, val in self._pairs if loc in wanted),
            presorted=True,
        )

    def __iter__(self) -> Iterator[tuple[Location, Any]]:
        return iter(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FullState):
            return self._pairs == other._pairs
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __repr__(self) -> str:
        body = ", ".join(f"{loc}={val!r}" for loc, val in self._pairs)
        return f"FullState({body})"


class StateKey:
    """The projection of a :class:`FullState` onto selected locations.

    Two full states with the same key collapse into one FSM node -- this
    is precisely how the AsmL tester controls FSM size, and why rule R4
    asks for restricted domains on the selected variables.
    """

    __slots__ = ("_pairs",)

    def __init__(
        self, pairs: Iterable[tuple[Location, Any]], *, presorted: bool = False
    ):
        if presorted:
            self._pairs = tuple(pairs)
        else:
            self._pairs = tuple(sorted(pairs, key=lambda kv: kv[0]))

    def items(self) -> Tuple[tuple[Location, Any], ...]:
        return self._pairs

    def value(self, machine: str, variable: str, default: Any = None) -> Any:
        for loc, val in self._pairs:
            if loc.machine == machine and loc.variable == variable:
                return val
        return default

    def label(self, max_len: int = 120) -> str:
        """Human-readable node label for DOT output."""
        body = ", ".join(f"{loc}={_short(val)}" for loc, val in self._pairs)
        if len(body) > max_len:
            body = body[: max_len - 3] + "..."
        return body

    def __eq__(self, other: object) -> bool:
        if isinstance(other, StateKey):
            return self._pairs == other._pairs
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._pairs)

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self) -> Iterator[tuple[Location, Any]]:
        return iter(self._pairs)

    def __repr__(self) -> str:
        return f"StateKey({self.label(max_len=200)})"


def _short(value: Any) -> str:
    text = repr(value)
    return text if len(text) <= 24 else text[:21] + "..."
