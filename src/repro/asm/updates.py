"""Update sets with the classic ASM consistency condition.

An ASM step collects *updates* ``(location, value)`` produced by the
fired rules and applies them simultaneously at the end of the step.  A
step is *consistent* when no location receives two different values; an
inconsistent update set aborts the step (``InconsistentUpdateError``).

The framework supports two execution modes per action:

* ``PARALLEL`` -- classic ASM: reads see the pre-step state, writes are
  buffered, consistency is enforced.  This is the semantics AsmL's
  ``step`` blocks give model programs.
* ``SEQUENTIAL`` -- AsmL's sequential sublanguage: reads see earlier
  writes of the same step (read-your-writes), the last write to a
  location wins.  Buffering is kept so a failed ``require`` mid-action
  rolls the whole action back -- which is what the FSM explorer relies
  on when probing enabledness.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Iterator, Tuple

from .errors import InconsistentUpdateError
from .state import Location


class StepMode(enum.Enum):
    """Execution mode of an action body (see module docstring)."""

    PARALLEL = "parallel"
    SEQUENTIAL = "sequential"


PARALLEL = StepMode.PARALLEL
SEQUENTIAL = StepMode.SEQUENTIAL

_MISSING = object()


class UpdateSet:
    """The set of pending updates of one ASM step."""

    __slots__ = ("mode", "_updates")

    def __init__(self, mode: StepMode = StepMode.PARALLEL):
        self.mode = mode
        #: location -> value; dict insertion order IS the update order
        self._updates: Dict[Location, Any] = {}

    def record(self, location: Location, value: Any) -> None:
        """Add one update, enforcing consistency in parallel mode.

        In parallel mode a second write of the *same* value to a location
        is harmless (the classic definition permits duplicate updates);
        a different value raises :class:`InconsistentUpdateError`.
        """
        updates = self._updates
        previous = updates.get(location, _MISSING)
        if previous is not _MISSING:
            if self.mode is StepMode.PARALLEL and previous != value:
                raise InconsistentUpdateError(str(location), previous, value)
        updates[location] = value

    def pending(self, location: Location) -> tuple[bool, Any]:
        """Return ``(present, value)`` for read-your-writes in sequential mode."""
        value = self._updates.get(location, _MISSING)
        if value is _MISSING:
            return False, None
        return True, value

    def merge_into(self, target: "UpdateSet") -> None:
        """Fold this update set into an enclosing one (nested steps)."""
        for location, value in self._updates.items():
            target.record(location, value)

    def items(self) -> Iterator[Tuple[Location, Any]]:
        return iter(self._updates.items())

    def __len__(self) -> int:
        return len(self._updates)

    def __bool__(self) -> bool:
        return bool(self._updates)

    def __contains__(self, location: Location) -> bool:
        return location in self._updates

    def __repr__(self) -> str:
        body = ", ".join(f"{loc}:={val!r}" for loc, val in self.items())
        return f"UpdateSet({self.mode.value}; {body})"
