"""AsmL-flavoured basic types.

The paper's PSL embedding (Section 2.1.2) builds its Boolean layer on five
basic types: ``Boolean``, ``PSLBit``, ``PSLBitVector``, ``Numeric`` and
``String``, where ``Boolean`` and ``String`` inherit directly from the
AsmL types.  The design translation rule R1 maps ASM basic types to their
SystemC equivalents (``Integer`` -> ``int``, ``Byte`` -> ``unsigned
char``, ...).

This module provides the shared machinery: a :class:`Bit` with four-valued
friendly coercions, a fixed-width :class:`BitVector` with the operations
PSL's Boolean layer requires (slicing, concatenation, bitwise/arithmetic
operators), and bounded integer helpers used to declare rule-R4 domains.

Everything is immutable and hashable so values can live inside state
snapshots taken by the FSM explorer.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Union

from .errors import DomainError, TypeMismatchError

#: Values accepted wherever a single bit is expected.
BitLike = Union["Bit", int, bool, str]


class Bit:
    """A single binary digit with boolean algebra.

    >>> Bit(1) & Bit(0)
    Bit(0)
    >>> (~Bit(0)).value
    1
    """

    __slots__ = ("_value",)

    def __init__(self, value: BitLike = 0):
        self._value = _coerce_bit(value)

    @property
    def value(self) -> int:
        return self._value

    def __bool__(self) -> bool:
        return bool(self._value)

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (Bit, int, bool)):
            return self._value == _coerce_bit(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Bit", self._value))

    def __and__(self, other: BitLike) -> "Bit":
        return Bit(self._value & _coerce_bit(other))

    __rand__ = __and__

    def __or__(self, other: BitLike) -> "Bit":
        return Bit(self._value | _coerce_bit(other))

    __ror__ = __or__

    def __xor__(self, other: BitLike) -> "Bit":
        return Bit(self._value ^ _coerce_bit(other))

    __rxor__ = __xor__

    def __invert__(self) -> "Bit":
        return Bit(1 - self._value)

    def __repr__(self) -> str:
        return f"Bit({self._value})"


def _coerce_bit(value: BitLike) -> int:
    if isinstance(value, Bit):
        return value.value
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        if value in (0, 1):
            return value
        raise DomainError(f"bit value must be 0 or 1, got {value}")
    if isinstance(value, str):
        if value in ("0", "1"):
            return int(value)
        raise DomainError(f"bit string must be '0' or '1', got {value!r}")
    raise TypeMismatchError(f"cannot interpret {value!r} as a bit")


class BitVector:
    """A fixed-width, unsigned bit vector (MSB first, like PSL/VHDL).

    Construction accepts an integer plus width, a binary string, or an
    iterable of bit-likes:

    >>> BitVector(0b1010, 4)
    BitVector('1010')
    >>> BitVector('0011') + BitVector('0001')
    BitVector('0100')
    >>> BitVector('1010')[0]
    Bit(1)

    Arithmetic wraps modulo ``2**width`` (hardware semantics).  Bitwise
    operations require equal widths (PSL is strongly typed about this);
    mixing widths raises :class:`TypeMismatchError`.
    """

    __slots__ = ("_value", "_width")

    def __init__(self, value: Union[int, str, Iterable[BitLike]] = 0, width: int | None = None):
        if isinstance(value, BitVector):
            bits_value, inferred = value._value, value._width
        elif isinstance(value, str):
            cleaned = value.replace("_", "")
            if cleaned == "" or any(c not in "01" for c in cleaned):
                raise DomainError(f"invalid binary literal {value!r}")
            bits_value, inferred = int(cleaned, 2), len(cleaned)
        elif isinstance(value, int):
            if value < 0:
                raise DomainError("BitVector holds unsigned values only")
            bits_value, inferred = value, max(value.bit_length(), 1)
        else:
            bit_list = [_coerce_bit(b) for b in value]
            if not bit_list:
                raise DomainError("BitVector needs at least one bit")
            bits_value = 0
            for bit in bit_list:
                bits_value = (bits_value << 1) | bit
            inferred = len(bit_list)
        self._width = inferred if width is None else int(width)
        if self._width <= 0:
            raise DomainError(f"width must be positive, got {self._width}")
        if bits_value.bit_length() > self._width:
            raise DomainError(
                f"value {bits_value} does not fit in {self._width} bits"
            )
        self._value = bits_value

    # -- introspection ---------------------------------------------------

    @property
    def width(self) -> int:
        return self._width

    def to_unsigned(self) -> int:
        return self._value

    def to_signed(self) -> int:
        """Two's-complement interpretation."""
        sign_bit = 1 << (self._width - 1)
        return (self._value ^ sign_bit) - sign_bit

    def to_binary_string(self) -> str:
        return format(self._value, f"0{self._width}b")

    def bits(self) -> list[Bit]:
        """MSB-first list of bits."""
        return [Bit(c) for c in self.to_binary_string()]

    # -- container protocol ----------------------------------------------

    def __len__(self) -> int:
        return self._width

    def __iter__(self) -> Iterator[Bit]:
        return iter(self.bits())

    def __getitem__(self, index: Union[int, slice]) -> Union[Bit, "BitVector"]:
        text = self.to_binary_string()
        if isinstance(index, slice):
            piece = text[index]
            if not piece:
                raise DomainError("empty BitVector slice")
            return BitVector(piece)
        return Bit(text[index])

    # -- comparisons -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitVector):
            return self._width == other._width and self._value == other._value
        if isinstance(other, int):
            return self._value == other
        if isinstance(other, str):
            try:
                return self == BitVector(other)
            except DomainError:
                return NotImplemented
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("BitVector", self._width, self._value))

    def __lt__(self, other: "BitVector | int") -> bool:
        return self._value < _vector_operand(other)

    def __le__(self, other: "BitVector | int") -> bool:
        return self._value <= _vector_operand(other)

    def __gt__(self, other: "BitVector | int") -> bool:
        return self._value > _vector_operand(other)

    def __ge__(self, other: "BitVector | int") -> bool:
        return self._value >= _vector_operand(other)

    # -- bitwise (width-checked) -------------------------------------------

    def _check_width(self, other: "BitVector") -> None:
        if not isinstance(other, BitVector):
            raise TypeMismatchError(f"expected BitVector, got {type(other).__name__}")
        if other._width != self._width:
            raise TypeMismatchError(
                f"width mismatch: {self._width} vs {other._width}"
            )

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value & other._value, self._width)

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value | other._value, self._width)

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_width(other)
        return BitVector(self._value ^ other._value, self._width)

    def __invert__(self) -> "BitVector":
        mask = (1 << self._width) - 1
        return BitVector(self._value ^ mask, self._width)

    def __lshift__(self, amount: int) -> "BitVector":
        mask = (1 << self._width) - 1
        return BitVector((self._value << amount) & mask, self._width)

    def __rshift__(self, amount: int) -> "BitVector":
        return BitVector(self._value >> amount, self._width)

    # -- arithmetic (modular) ------------------------------------------------

    def __add__(self, other: "BitVector | int") -> "BitVector":
        modulus = 1 << self._width
        return BitVector((self._value + _vector_operand(other)) % modulus, self._width)

    def __sub__(self, other: "BitVector | int") -> "BitVector":
        modulus = 1 << self._width
        return BitVector((self._value - _vector_operand(other)) % modulus, self._width)

    def __mul__(self, other: "BitVector | int") -> "BitVector":
        modulus = 1 << self._width
        return BitVector((self._value * _vector_operand(other)) % modulus, self._width)

    # -- structure ---------------------------------------------------------

    def concat(self, other: "BitVector") -> "BitVector":
        """PSL/VHDL ``&`` concatenation (self becomes the high part)."""
        if not isinstance(other, BitVector):
            raise TypeMismatchError(f"cannot concat {type(other).__name__}")
        return BitVector(
            (self._value << other._width) | other._value,
            self._width + other._width,
        )

    def count_ones(self) -> int:
        """PSL built-in ``countones``."""
        return bin(self._value).count("1")

    def is_onehot(self) -> bool:
        """PSL built-in ``onehot`` -- exactly one bit set."""
        return self.count_ones() == 1

    def is_onehot0(self) -> bool:
        """PSL built-in ``onehot0`` -- at most one bit set."""
        return self.count_ones() <= 1

    def __repr__(self) -> str:
        return f"BitVector('{self.to_binary_string()}')"


def _vector_operand(other: "BitVector | int") -> int:
    if isinstance(other, BitVector):
        return other.to_unsigned()
    if isinstance(other, int):
        return other
    raise TypeMismatchError(f"cannot operate on {type(other).__name__}")


class Byte(int):
    """AsmL ``Byte``: an integer constrained to 0..255.

    Translation rule R1 maps this to SystemC ``unsigned char``.
    """

    MIN = 0
    MAX = 255

    def __new__(cls, value: int = 0) -> "Byte":
        value = int(value)
        if not cls.MIN <= value <= cls.MAX:
            raise DomainError(f"Byte out of range: {value}")
        return super().__new__(cls, value)

    def __repr__(self) -> str:
        return f"Byte({int(self)})"


def bounded_int_range(low: int, high: int) -> range:
    """Inclusive integer interval ``low..high`` (AsmL range notation).

    Used to declare rule-R4 domains, e.g. ``Masters_Range = bounded_int_range(0, 2)``.
    """
    if low > high:
        raise DomainError(f"empty range {low}..{high}")
    return range(low, high + 1)


def ensure_in_range(value: int, low: int, high: int, what: str = "value") -> int:
    """Validate an integer against an inclusive interval (rule R4 check)."""
    if not low <= value <= high:
        raise DomainError(f"{what} {value} outside {low}..{high}")
    return value
