"""Immutable AsmL-style collections: ``Seq``, ``AsmSet`` and ``Map``.

AsmL model programs manipulate mathematical sequences, sets and maps; the
FSM-generation algorithm snapshots whole machine states, so every value
stored in a state variable must be immutable and hashable.  These classes
provide AsmL's collection vocabulary on top of tuples / frozensets /
sorted tuples of pairs.

The paper's PSL embedding uses ``Seq of Boolean`` for SEREs ("a SERE is
defined as an AsmL sequence of Boolean", Section 2.1.2) and the PCI model
uses maps from master ids to machine instances (``MASTERS(id)`` in
Figure 4).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Tuple, TypeVar

from .errors import NoChoiceError

T = TypeVar("T")
K = TypeVar("K")
V = TypeVar("V")


class Seq(Tuple[T, ...]):
    """An immutable sequence with AsmL-style functional updates.

    >>> s = Seq([1, 2, 3])
    >>> s.add(4)
    Seq(1, 2, 3, 4)
    >>> s.head(), s.tail()
    (1, Seq(2, 3))
    """

    __slots__ = ()

    def __new__(cls, items: Iterable[T] = ()) -> "Seq[T]":
        return super().__new__(cls, tuple(items))

    # -- functional updates -------------------------------------------------

    def add(self, item: T) -> "Seq[T]":
        """Return a new Seq with ``item`` appended (AsmL ``+ [item]``)."""
        return Seq(tuple(self) + (item,))

    def prepend(self, item: T) -> "Seq[T]":
        return Seq((item,) + tuple(self))

    def concat(self, other: Iterable[T]) -> "Seq[T]":
        return Seq(tuple(self) + tuple(other))

    def replace_at(self, index: int, item: T) -> "Seq[T]":
        items = list(self)
        items[index] = item
        return Seq(items)

    def remove_at(self, index: int) -> "Seq[T]":
        items = list(self)
        del items[index]
        return Seq(items)

    def remove_value(self, item: T) -> "Seq[T]":
        """Remove the first occurrence of ``item`` (no-op if absent)."""
        items = list(self)
        if item in items:
            items.remove(item)
        return Seq(items)

    # -- AsmL vocabulary -----------------------------------------------------

    def head(self) -> T:
        if not self:
            raise NoChoiceError("head of empty Seq")
        return self[0]

    def tail(self) -> "Seq[T]":
        if not self:
            raise NoChoiceError("tail of empty Seq")
        return Seq(self[1:])

    def last(self) -> T:
        if not self:
            raise NoChoiceError("last of empty Seq")
        return self[-1]

    def take(self, count: int) -> "Seq[T]":
        return Seq(self[:count])

    def drop(self, count: int) -> "Seq[T]":
        return Seq(self[count:])

    def indexof(self, item: T) -> int:
        """Index of the first occurrence, or -1 (AsmL ``indexof``)."""
        try:
            return self.index(item)
        except ValueError:
            return -1

    def where(self, predicate: Callable[[T], bool]) -> "Seq[T]":
        return Seq(x for x in self if predicate(x))

    def select(self, mapper: Callable[[T], Any]) -> "Seq[Any]":
        return Seq(mapper(x) for x in self)

    def __getitem__(self, index):  # preserve Seq type for slices
        result = super().__getitem__(index)
        if isinstance(index, slice):
            return Seq(result)
        return result

    def __add__(self, other):  # Seq + iterable -> Seq
        return Seq(tuple(self) + tuple(other))

    def __repr__(self) -> str:
        return f"Seq({', '.join(repr(x) for x in self)})"


class AsmSet(frozenset):
    """An immutable set with AsmL-style functional updates."""

    def add_element(self, item) -> "AsmSet":
        return AsmSet(self | {item})

    def remove_element(self, item) -> "AsmSet":
        return AsmSet(self - {item})

    def where(self, predicate: Callable[[Any], bool]) -> "AsmSet":
        return AsmSet(x for x in self if predicate(x))

    def select(self, mapper: Callable[[Any], Any]) -> "AsmSet":
        return AsmSet(mapper(x) for x in self)

    def __repr__(self) -> str:
        return f"AsmSet({{{', '.join(repr(x) for x in sorted(self, key=repr))}}})"


class Map(Mapping[K, V]):
    """An immutable mapping with AsmL-style functional updates.

    Stored as a sorted tuple of pairs so two Maps with equal content hash
    equally -- required for state snapshots.

    >>> m = Map({1: 'a'})
    >>> m.set(2, 'b')[2]
    'b'
    """

    __slots__ = ("_pairs", "_index")

    def __init__(self, items: Mapping[K, V] | Iterable[tuple[K, V]] = ()):
        if isinstance(items, Map):
            pairs = items._pairs
        elif isinstance(items, Mapping):
            pairs = tuple(sorted(items.items(), key=lambda kv: repr(kv[0])))
        else:
            pairs = tuple(sorted(dict(items).items(), key=lambda kv: repr(kv[0])))
        self._pairs = pairs
        self._index = dict(pairs)

    def set(self, key: K, value: V) -> "Map[K, V]":
        """Return a new Map with ``key`` bound to ``value``."""
        updated = dict(self._index)
        updated[key] = value
        return Map(updated)

    def remove(self, key: K) -> "Map[K, V]":
        updated = dict(self._index)
        updated.pop(key, None)
        return Map(updated)

    def merge(self, other: Mapping[K, V]) -> "Map[K, V]":
        updated = dict(self._index)
        updated.update(other)
        return Map(updated)

    def __getitem__(self, key: K) -> V:
        return self._index[key]

    def __iter__(self) -> Iterator[K]:
        return iter(self._index)

    def __len__(self) -> int:
        return len(self._pairs)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Map):
            return self._pairs == other._pairs
        if isinstance(other, Mapping):
            return self._index == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Map", self._pairs))

    def __repr__(self) -> str:
        body = ", ".join(f"{k!r}: {v!r}" for k, v in self._pairs)
        return f"Map({{{body}}})"


#: types freeze returns unchanged -- checked first because nearly every
#: state-variable write on the scoreboard's replay path is one of these
_ATOMIC = frozenset((bool, int, float, str, bytes, type(None)))

#: classes proven to pass through freeze unchanged (ASM containers,
#: enums, other immutable scalars) -- learned on first sight so repeat
#: writes of the same type skip the isinstance chain entirely
_PASSTHROUGH: set = set()


def freeze(value: Any) -> Any:
    """Convert mutable containers to their immutable ASM equivalents.

    State variables only accept immutable values; this helper lets model
    code assign plain lists/dicts/sets and stores the frozen form.
    """
    cls = value.__class__
    if cls in _ATOMIC or cls in _PASSTHROUGH:
        return value
    if isinstance(value, (Seq, AsmSet, Map)):
        _PASSTHROUGH.add(cls)
        return value
    if isinstance(value, list):
        return Seq(freeze(x) for x in value)
    if isinstance(value, tuple):
        return tuple(freeze(x) for x in value)
    if isinstance(value, (set, frozenset)):
        return AsmSet(freeze(x) for x in value)
    if isinstance(value, dict):
        return Map({freeze(k): freeze(v) for k, v in value.items()})
    _PASSTHROUGH.add(cls)
    return value
