"""The assertion-based verification harness.

Binds compiled PSL monitors to a running simulation (paper Section
3.2).  Monitors sample the design on the clock's *negative* edge so
every posedge-triggered write has committed -- the standard opposite-
edge sampling discipline.  On a failure, the harness executes the
monitor's configured actions, which are exactly the paper's three:

1. "stop the simulation when the assertion is fired",
2. "write a report about the assertion status and all its variables",
3. "send a warning signal to other modules (if required)".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from ..obs.runtime import OBS
from ..psl.monitor import Monitor, MonitorReport
from ..psl.semantics import Verdict
from ..sysc.clock import Clock
from ..sysc.errors import SimulationStopped
from ..sysc.kernel import Simulator
from ..sysc.report import ReportHandler, Severity
from ..sysc.signal import Signal


class FailureAction(enum.Enum):
    """What to do when an assertion fires (paper Section 3.2)."""

    STOP = "stop"
    REPORT = "report"
    WARN = "warn"


@dataclass
class AssertionBinding:
    """One monitor attached to the harness."""

    monitor: Monitor
    actions: tuple = (FailureAction.REPORT,)
    warning_signal: Optional[Signal] = None
    #: set once the failure actions ran (each assertion fires once)
    fired: bool = False

    def __post_init__(self):
        if FailureAction.WARN in self.actions and self.warning_signal is None:
            raise ValueError(
                f"monitor {self.monitor.name!r} wants WARN but has no warning signal"
            )


class AbvHarness:
    """Samples all bound monitors once per clock cycle."""

    def __init__(
        self,
        simulator: Simulator,
        clock: Clock,
        extractor: Callable[[], Mapping[str, Any]],
        report_handler: Optional[ReportHandler] = None,
    ):
        self.simulator = simulator
        self.clock = clock
        self.extractor = extractor
        self.reports = report_handler or ReportHandler()
        self.bindings: List[AssertionBinding] = []
        self.cycles_observed = 0
        #: opt-in: keep every sampled letter so a checkpoint can replay
        #: the stream into fresh monitors (see :mod:`repro.checkpoint`)
        self.record_letters = False
        self.recorded_letters: List[Dict[str, Any]] = []
        simulator.register_process(
            _make_sampler(self)
        )

    # -- construction ----------------------------------------------------------

    def add_monitor(
        self,
        monitor: Monitor,
        actions: Sequence[FailureAction] = (FailureAction.REPORT,),
        warning_signal: Optional[Signal] = None,
    ) -> AssertionBinding:
        binding = AssertionBinding(
            monitor=monitor,
            actions=tuple(actions),
            warning_signal=warning_signal,
        )
        self.bindings.append(binding)
        return binding

    def add_monitors(
        self,
        monitors: Sequence[Monitor],
        actions: Sequence[FailureAction] = (FailureAction.REPORT,),
    ) -> List[AssertionBinding]:
        return [self.add_monitor(m, actions) for m in monitors]

    def add_properties(
        self,
        sources: Sequence,
        *,
        bindings: Optional[Mapping[str, str]] = None,
        engine: Optional[str] = None,
        actions: Sequence[FailureAction] = (FailureAction.REPORT,),
    ) -> List[AssertionBinding]:
        """Compile properties and bind them -- the preferred entry point.

        Routes through :func:`repro.psl.compile_properties`, so the
        process-wide compile cache is shared across harnesses and the
        engine choice follows the regression-wide default unless
        overridden here.
        """
        from ..psl.compiled import compile_properties

        monitors = compile_properties(sources, bindings=bindings, engine=engine)
        return self.add_monitors(monitors, actions)

    # -- the sampling step (called from the internal process) ---------------------

    def _sample(self) -> None:
        self._observe(self.extractor())

    def _observe(self, letter: Mapping[str, Any]) -> None:
        """Feed one sampled letter to every monitor.

        Split from :meth:`_sample` so checkpoint restore can replay a
        recorded letter stream through fresh monitors: replay reproduces
        verdicts, ``fired`` flags and ``cycles_observed`` exactly,
        whichever stepping engine the monitors use.
        """
        if self.record_letters:
            self.recorded_letters.append(dict(letter))
        self.cycles_observed += 1
        stop_requested: Optional[str] = None
        for binding in self.bindings:
            verdict = binding.monitor.step(letter)
            if verdict is Verdict.FAILS and not binding.fired:
                binding.fired = True
                reason = self._run_failure_actions(binding)
                if reason is not None:
                    stop_requested = reason
        if stop_requested is not None:
            raise SimulationStopped(stop_requested)

    def replay_letters(self, letters: Sequence[Mapping[str, Any]]) -> None:
        """Re-observe a recorded letter stream (checkpoint restore)."""
        for letter in letters:
            self._observe(letter)

    def _run_failure_actions(self, binding: AssertionBinding) -> Optional[str]:
        monitor = binding.monitor
        stop_reason: Optional[str] = None
        if FailureAction.REPORT in binding.actions:
            report = monitor.report()
            self.reports.error(
                label=monitor.name,
                message=report.message
                or f"assertion failed (watched: {', '.join(report.watched)})",
                time=self.simulator.time,
            )
        if FailureAction.WARN in binding.actions and binding.warning_signal is not None:
            binding.warning_signal.write(True)
        if FailureAction.STOP in binding.actions:
            stop_reason = f"assertion {monitor.name!r} fired"
        return stop_reason

    # -- results ---------------------------------------------------------------------

    def finish(self) -> List[MonitorReport]:
        """End-of-simulation wrap-up: uncovered covers and pending strong
        obligations become warnings; returns every monitor's report."""
        results: List[MonitorReport] = []
        for binding in self.bindings:
            monitor = binding.monitor
            verdict = monitor.verdict()
            if monitor.is_cover and getattr(monitor, "hits", 0) == 0:
                self.reports.warning(
                    label=monitor.name,
                    message="coverage goal never hit",
                    time=self.simulator.time,
                )
            elif verdict is Verdict.PENDING:
                self.reports.warning(
                    label=monitor.name,
                    message="strong obligation still pending at end of simulation",
                    time=self.simulator.time,
                )
            results.append(monitor.report())
        if OBS.enabled:
            self._emit_observability()
        return results

    def _emit_observability(self) -> None:
        """Attribute accumulated per-monitor step time as synthetic spans.

        Each monitor's ``step_seconds`` becomes one ``psl.monitor/...``
        span parented under the most recent kernel run span, so
        ``trace_report`` subtracts monitor time from kernel self-time
        and ranks properties individually.  Both engines accumulate
        through the shared ``Monitor.step`` timer, so the numbers stay
        honest post-compile; the ``engine`` attribute/label says which
        stepping engine the time was actually spent in.
        """
        parent = self.simulator.last_run_span_id
        for binding in self.bindings:
            monitor = binding.monitor
            if OBS.tracer.enabled and monitor.steps_traced:
                OBS.tracer.record(
                    f"psl.monitor/{monitor.name}",
                    "psl.monitor",
                    monitor.step_seconds,
                    parent_id=parent,
                    property=monitor.name,
                    steps=monitor.steps_traced,
                    verdict=monitor.verdict().value,
                    engine=monitor.engine,
                )
            if OBS.metrics.enabled:
                OBS.metrics.counter(
                    "psl.monitor.steps",
                    property=monitor.name,
                    engine=monitor.engine,
                ).inc(monitor.steps_traced)
                OBS.metrics.histogram(
                    "psl.monitor.step_seconds", engine=monitor.engine
                ).observe(monitor.step_seconds)

    @property
    def failed(self) -> List[AssertionBinding]:
        return [b for b in self.bindings if b.monitor.verdict() is Verdict.FAILS]

    @property
    def all_passing(self) -> bool:
        return not self.failed

    def summary(self) -> str:
        verdict_counts: Dict[Verdict, int] = {}
        for binding in self.bindings:
            verdict = binding.monitor.verdict()
            verdict_counts[verdict] = verdict_counts.get(verdict, 0) + 1
        parts = [f"{count}x {verdict.value}" for verdict, count in verdict_counts.items()]
        return (
            f"{len(self.bindings)} assertions over {self.cycles_observed} "
            f"cycles: {', '.join(parts) if parts else 'none'}"
        )


def _make_sampler(harness: AbvHarness):
    """The negedge-sampling thread process."""
    from ..sysc.process_ import ThreadProcess

    def body():
        while True:
            yield harness.clock.negedge_event
            harness._sample()

    return ThreadProcess(f"{harness.clock.name}.abv_sampler", body)
