"""Coverage accounting over cover directives and assertion activity.

"This shows a very short time (few seconds) to simulate million[s] of
cycles which offers good coverage for the assertions" (paper, Section
4.3).  The collector aggregates cover-monitor hits and suffix-
implication trigger counts into one report, so a run can state not
just "no assertion fired" but "the assertions were exercised N times".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..psl.monitor import CoverMonitor, Monitor, SuffixImplicationMonitor
from ..psl.semantics import Verdict


@dataclass(frozen=True)
class CoverageEntry:
    name: str
    kind: str
    hits: int
    verdict: str

    def __str__(self) -> str:
        return f"{self.name:<40} {self.kind:<12} {self.hits:>8}  {self.verdict}"


class CoverageCollector:
    """Aggregates activity across a monitor suite."""

    def __init__(self, monitors: Sequence[Monitor] = ()):
        self.monitors: List[Monitor] = list(monitors)

    def add(self, monitor: Monitor) -> None:
        self.monitors.append(monitor)

    def entries(self) -> List[CoverageEntry]:
        collected: List[CoverageEntry] = []
        for monitor in self.monitors:
            if isinstance(monitor, CoverMonitor):
                collected.append(
                    CoverageEntry(
                        name=monitor.name,
                        kind="cover",
                        hits=monitor.hits,
                        verdict=monitor.verdict().value,
                    )
                )
            elif isinstance(monitor, SuffixImplicationMonitor):
                collected.append(
                    CoverageEntry(
                        name=monitor.name,
                        kind="assertion",
                        hits=monitor.triggered,
                        verdict=monitor.verdict().value,
                    )
                )
            else:
                collected.append(
                    CoverageEntry(
                        name=monitor.name,
                        kind="assertion",
                        hits=max(monitor.cycle + 1, 0),
                        verdict=monitor.verdict().value,
                    )
                )
        return collected

    @property
    def uncovered(self) -> List[str]:
        return [
            e.name for e in self.entries() if e.kind == "cover" and e.hits == 0
        ]

    @property
    def never_triggered(self) -> List[str]:
        """Assertions whose antecedent never matched: vacuous passes."""
        return [
            e.name
            for e in self.entries()
            if e.kind == "assertion" and e.hits == 0
        ]

    def report(self) -> str:
        lines = [f"{'name':<40} {'kind':<12} {'hits':>8}  verdict"]
        lines.append("-" * 75)
        lines.extend(str(e) for e in self.entries())
        if self.uncovered:
            lines.append(f"uncovered goals: {', '.join(self.uncovered)}")
        if self.never_triggered:
            lines.append(
                f"vacuous assertions (never triggered): "
                f"{', '.join(self.never_triggered)}"
            )
        return "\n".join(lines)
