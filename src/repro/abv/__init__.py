"""Assertion-based verification at the SystemC level (paper Section 3.2).

The complement to model checking: PSL properties, already verified (or
too big to verify) at the ASM level, are reused as runtime monitors
bound read-only to the translated design's signals.  The harness
samples monitors every clock cycle and executes the paper's three
failure actions: stop the simulation, write a report, raise a warning
signal.
"""

from .coverage import CoverageCollector, CoverageEntry
from .harness import AbvHarness, AssertionBinding, FailureAction

__all__ = [
    "CoverageCollector",
    "CoverageEntry",
    "AbvHarness",
    "AssertionBinding",
    "FailureAction",
]
