"""Coverage-driven stimulus biasing.

The paper's Section 4.3 argument -- fast monitored simulation "offers
good coverage for the assertions" -- becomes a feedback loop here:

1. bin every observed transaction by (target, direction, burst
   bucket) -- the stimulus features a sequence can actually steer,
2. fold in the monitor-side signals the repo already computes
   (:class:`repro.abv.coverage.CoverageCollector` uncovered covers and
   vacuous assertions, :class:`repro.explorer.sim_coverage.SimCoverage`
   FSM residue),
3. emit a re-biased :class:`~.sequences.TrafficProfile` whose weights
   point at the unhit bins, and whose idle gaps shrink when monitors
   report starvation-style vacuity.

The loop never touches the random seed path: a biased profile is new
*constraints*, not a new stream, so a run remains reproducible from
``(seed, round)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..abv.coverage import CoverageCollector
from ..explorer.sim_coverage import SimCoverage
from ..sysc.bus import Transaction
from .random_ import BURST_PROFILES
from .sequences import StimulusContext, TrafficProfile

#: Burst-length buckets: boundary singles, the common middle, the top.
BURST_BUCKETS: Tuple[Tuple[str, int, Optional[int]], ...] = (
    ("single", 1, 1),
    ("short", 2, 3),
    ("long", 4, None),
)


def burst_bucket(burst: int) -> str:
    if burst < 1:
        # a burst below 1 word is a driver bug, not "long" traffic --
        # falling through to the largest bucket silently misclassified
        raise ValueError(f"burst length must be >= 1, got {burst}")
    for name, low, high in BURST_BUCKETS:
        if burst >= low and (high is None or burst <= high):
            return name
    raise AssertionError("BURST_BUCKETS must cover every burst >= 1")


@dataclass(frozen=True)
class StimulusBin:
    """One coverage bin over steerable stimulus features."""

    target: int
    is_write: bool
    bucket: str

    def describe(self) -> str:
        direction = "W" if self.is_write else "R"
        return f"target{self.target}/{direction}/{self.bucket}"


def bin_universe(ctx: StimulusContext) -> List[StimulusBin]:
    """Every reachable bin under the context's burst range."""
    buckets = []
    for name, low, high in BURST_BUCKETS:
        reach_low = max(low, ctx.min_burst)
        reach_high = ctx.max_burst if high is None else min(high, ctx.max_burst)
        if reach_low <= reach_high:
            buckets.append(name)
    return [
        StimulusBin(target, is_write, bucket)
        for target in range(ctx.n_targets)
        for is_write in (True, False)
        for bucket in buckets
    ]


@dataclass
class BinCoverage:
    """Hit accounting over the stimulus-bin universe."""

    ctx: StimulusContext
    hits: Dict[StimulusBin, int] = field(default_factory=dict)
    #: transactions whose address decoded outside [0, n_targets) --
    #: they are counted, not binned, so ``hits`` never grows bins that
    #: can't match ``bin_universe`` (which would inflate
    #: ``CoverageRound.new_bins`` and break early-exit accounting)
    off_universe: int = 0

    def record(self, txn: Transaction, window: int = 0x100, base: int = 0) -> None:
        """Bin one transaction; ``window`` is the per-target address
        window, ``base`` the first target's window index (PCI maps
        target 0 at the second page, so its drivers pass ``base=1``)."""
        target = (txn.address // window - base) if window else 0
        if not 0 <= target < self.ctx.n_targets:
            self.off_universe += 1
            return
        bin_ = StimulusBin(
            target=target,
            is_write=txn.is_write,
            bucket=burst_bucket(txn.burst_length),
        )
        self.hits[bin_] = self.hits.get(bin_, 0) + 1

    def record_many(
        self, txns: Iterable[Transaction], window: int = 0x100, base: int = 0
    ) -> None:
        for txn in txns:
            self.record(txn, window, base)

    def unhit(self) -> List[StimulusBin]:
        return [b for b in bin_universe(self.ctx) if self.hits.get(b, 0) == 0]

    @property
    def ratio(self) -> float:
        universe = bin_universe(self.ctx)
        if not universe:
            return 1.0
        hit = sum(1 for b in universe if self.hits.get(b, 0) > 0)
        return hit / len(universe)

    def summary(self) -> str:
        universe = bin_universe(self.ctx)
        missing = self.unhit()
        head = (
            f"stimulus coverage {len(universe) - len(missing)}/{len(universe)} "
            f"bins ({self.ratio:.0%})"
        )
        if missing:
            head += "; unhit: " + ", ".join(b.describe() for b in missing[:8])
            if len(missing) > 8:
                head += f" (+{len(missing) - 8} more)"
        if self.off_universe:
            head += f"; {self.off_universe} off-universe transaction(s)"
        return head


class CoverageFeedback:
    """Turns coverage residue into the next round's traffic profile."""

    def __init__(self, ctx: StimulusContext, base: TrafficProfile = TrafficProfile()):
        self.ctx = ctx
        self.base = base
        self.bins = BinCoverage(ctx)
        #: names of cover directives never hit / assertions never triggered
        self.starved_monitors: Set[str] = set()
        #: FSM transition coverage of the latest observed run (None until seen)
        self.fsm_transition_ratio: Optional[float] = None
        self.rounds_observed = 0

    # -- observations ------------------------------------------------------

    def observe_transactions(
        self, txns: Iterable[Transaction], window: int = 0x100, base: int = 0
    ) -> None:
        self.bins.record_many(txns, window, base)
        self.rounds_observed += 1

    def observe_monitors(self, collector: CoverageCollector) -> None:
        """Fold in ABV-side coverage: uncovered cover directives and
        vacuous (never-triggered) assertions mean the traffic never
        created the triggering condition -- push harder."""
        self.starved_monitors.update(collector.uncovered)
        self.starved_monitors.update(collector.never_triggered)

    def observe_fsm(self, coverage: SimCoverage) -> None:
        """Fold in formal-side residue: low FSM transition coverage
        means the interleavings are too tame."""
        self.fsm_transition_ratio = coverage.transition_coverage

    # -- the feedback step -------------------------------------------------

    def next_profile(self) -> TrafficProfile:
        """Bias the base profile toward everything still unhit."""
        profile = self.base
        unhit = self.bins.unhit()

        # 1. target weights: boost once per *distinct* starved target.
        #    Boosting per unhit bin compounded the weight with every
        #    unhit bin a target had, so one bad round starved every
        #    other target of traffic.
        for target in sorted({b.target for b in unhit}):
            profile = profile.with_target_boost(
                target, 2.0, self.ctx.n_targets
            )

        # 2. direction: shift write bias toward the starved direction
        unhit_writes = sum(1 for b in unhit if b.is_write)
        unhit_reads = len(unhit) - unhit_writes
        if unhit_writes != unhit_reads:
            shift = 0.25 if unhit_writes > unhit_reads else -0.25
            profile = replace(
                profile,
                write_bias=min(max(self.base.write_bias + shift, 0.1), 0.9),
            )

        # 3. burst shape: unhit long bins want the long-burst profile,
        #    unhit singles want the edges profile
        unhit_buckets = {b.bucket for b in unhit}
        if "long" in unhit_buckets:
            profile = replace(profile, burst=BURST_PROFILES["long"])
        elif "single" in unhit_buckets:
            profile = replace(profile, burst=BURST_PROFILES["edges"])

        # 4. starved monitors / tame interleavings: more pressure --
        #    shrink idle gaps so requests actually collide.  A design
        #    with no FSM transitions at all is vacuously covered
        #    (ratio 1.0 by contract, matching BinCoverage.ratio), so
        #    it never triggers pressure here.
        pressure = bool(self.starved_monitors) or (
            self.fsm_transition_ratio is not None
            and self.fsm_transition_ratio < 0.5
        )
        if pressure:
            profile = replace(profile, idle_min=0, idle_max=max(profile.idle_max // 2, 0))
        return profile

    def report(self) -> str:
        lines = [self.bins.summary()]
        if self.starved_monitors:
            lines.append(
                "starved monitors: " + ", ".join(sorted(self.starved_monitors))
            )
        if self.fsm_transition_ratio is not None:
            lines.append(
                f"FSM transition coverage observed: {self.fsm_transition_ratio:.0%}"
            )
        return "\n".join(lines)


@dataclass
class CoverageRound:
    """One iteration of the closed loop."""

    index: int
    profile: TrafficProfile
    new_bins: int
    ratio: float


class CoverageDrivenLoop:
    """Closed loop: run a batch, absorb its coverage, re-bias, repeat.

    ``run_batch(profile, round_index)`` builds and runs one scenario
    (the caller owns seeding -- derive from ``(seed, round_index)``)
    and returns its transactions.  The loop stops early once the bin
    universe is saturated.
    """

    def __init__(
        self,
        feedback: CoverageFeedback,
        run_batch,
        window: int = 0x100,
        base: int = 0,
    ):
        self.feedback = feedback
        self.run_batch = run_batch
        self.window = window
        self.base = base
        self.rounds: List[CoverageRound] = []

    def run(self, max_rounds: int = 4) -> List[CoverageRound]:
        for round_index in range(max_rounds):
            profile = (
                self.feedback.base if round_index == 0 else self.feedback.next_profile()
            )
            before = len(self.feedback.bins.hits)
            txns = self.run_batch(profile, round_index)
            self.feedback.observe_transactions(txns, self.window, self.base)
            after = len(self.feedback.bins.hits)
            self.rounds.append(
                CoverageRound(
                    index=round_index,
                    profile=profile,
                    new_bins=after - before,
                    ratio=self.feedback.bins.ratio,
                )
            )
            if not self.feedback.bins.unhit():
                break
        return self.rounds

    def summary(self) -> str:
        lines = [
            f"round {r.index}: +{r.new_bins} bins -> {r.ratio:.0%}"
            for r in self.rounds
        ]
        lines.append(self.feedback.report())
        return "\n".join(lines)
