"""Constrained-random scenario engine with ASM-reference checking.

The stimulus-and-checking subsystem layered over ``repro.sysc`` (the
simulated designs), ``repro.asm`` (the golden reference) and
``repro.abv`` (the assertion monitors):

* :mod:`.random_` -- seeded, derivable randomization primitives,
* :mod:`.sequences` -- a UVM-style sequence library emitting abstract
  transaction items for both bus modes,
* :mod:`.scoreboard` -- the transaction scoreboard that replays every
  completed SystemC-level transaction on the verified ASM model,
* :mod:`.coverage_driven` -- the coverage feedback loop that biases
  the next sequences toward unhit stimulus bins,
* :mod:`.regression` -- the parallel regression runner
  (``python -m repro.scenarios.regression``).

Model bindings (drivers + reference adapters) live with their models:
:mod:`repro.models.master_slave.scenario` and
:mod:`repro.models.pci.scenario`.
"""

from .coverage_driven import (
    BinCoverage,
    CoverageDrivenLoop,
    CoverageFeedback,
    StimulusBin,
    burst_bucket,
)
from .directed import (
    ClosureRound,
    DirectedClosureLoop,
    DirectedSequence,
    TransactionGoal,
    lower_path_for_model,
)
from .random_ import BURST_PROFILES, BurstProfile, ScenarioRng, derive_seed
from .regression import (
    RegressionReport,
    ScenarioSpec,
    ScenarioVerdict,
    build_specs,
    run_scenario,
)


def __getattr__(name: str):
    # deprecation shim: the runner moved behind the Workbench session
    # API; the old import keeps working but warns
    if name == "RegressionRunner":
        import warnings

        warnings.warn(
            "repro.scenarios.RegressionRunner is deprecated; use "
            "repro.workbench.Workbench.regress() (or import it from "
            "repro.scenarios.regression directly)",
            DeprecationWarning,
            stacklevel=2,
        )
        from .regression import RegressionRunner

        return RegressionRunner
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
from .scoreboard import (
    AsmLockstep,
    DivergenceKind,
    FaultPlan,
    Mismatch,
    ReferenceAdapter,
    ScenarioSystem,
    Scoreboard,
    ScoreboardReport,
)
from .sequences import (
    NAMED_PROFILES,
    AddressWalk,
    BurstSweep,
    Chain,
    Interleave,
    Mix,
    RandomTraffic,
    Repeat,
    Sequence,
    SequenceItem,
    StimulusContext,
    TrafficProfile,
    WriteReadback,
    sequence_for_profile,
)

__all__ = [
    "BinCoverage",
    "CoverageDrivenLoop",
    "CoverageFeedback",
    "StimulusBin",
    "burst_bucket",
    "ClosureRound",
    "DirectedClosureLoop",
    "DirectedSequence",
    "TransactionGoal",
    "lower_path_for_model",
    "BURST_PROFILES",
    "BurstProfile",
    "ScenarioRng",
    "derive_seed",
    "RegressionReport",
    "RegressionRunner",
    "ScenarioSpec",
    "ScenarioVerdict",
    "build_specs",
    "run_scenario",
    "AsmLockstep",
    "DivergenceKind",
    "FaultPlan",
    "Mismatch",
    "ReferenceAdapter",
    "ScenarioSystem",
    "Scoreboard",
    "ScoreboardReport",
    "NAMED_PROFILES",
    "AddressWalk",
    "BurstSweep",
    "Chain",
    "Interleave",
    "Mix",
    "RandomTraffic",
    "Repeat",
    "Sequence",
    "SequenceItem",
    "StimulusContext",
    "TrafficProfile",
    "WriteReadback",
    "sequence_for_profile",
]
