"""Parallel regression running for scenario verification.

Fans N seeded scenarios across ``multiprocessing`` workers, checks
every one against its ASM reference scoreboard (plus, optionally, the
PSL assertion monitors), and aggregates verdicts, stimulus coverage
and throughput into one report.

Determinism contract: a :class:`ScenarioSpec` fully determines its
scenario -- same spec, same transaction stream, same verdict digest --
so the report's :meth:`RegressionReport.digest` is stable across runs,
worker counts and schedulers (results are re-sorted by spec before
aggregation).  Wall-clock numbers live outside the digest.

Also runnable as a CLI (``--json`` emits the machine-readable report
for CI and dispatchers)::

    python -m repro.scenarios.regression --models master_slave pci \
        --scenarios 200 --workers 4 --fail-fast --json

Sharded dispatch (the :mod:`repro.dispatch` layer) rides on the same
determinism contract.  ``--shards N`` fans the spec list over N local
subprocess hosts and prints the merged report; ``--hosts
host:port,...`` fans it over remote ``python -m repro.dispatch.worker``
daemons under the work-stealing schedule; ``--shard K/N`` runs exactly
shard K for manual cross-host dispatch and ``--merge`` folds the
per-shard JSON reports back together -- in every case the merged
digest is byte-identical to a serial run::

    python -m repro.scenarios --scenarios 60 --shard 1/3 --json > s1.json
    python -m repro.scenarios --scenarios 60 --shard 2/3 --json > s2.json
    python -m repro.scenarios --scenarios 60 --shard 3/3 --json > s3.json
    python -m repro.scenarios --merge s1.json s2.json s3.json --json

Fan-out runs through the pluggable engine layer
(:mod:`repro.workbench.engines`); the session-level entry point is
:meth:`repro.workbench.Workbench.regress`.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..cliutil import (
    add_hosts_argument,
    add_observability_arguments,
    observability_scope,
    positive_int,
    reject_hosts_conflict,
    route_warnings_to_stderr,
    shard_coordinate,
)
from ..obs.runtime import OBS
from ..workbench.engines import Engine, resolve_engine
from .coverage_driven import BinCoverage
from .directed import DirectedSequence, TransactionGoal
from .random_ import ScenarioRng
from .scoreboard import FaultPlan
from .sequences import NAMED_PROFILES, sequence_for_profile

#: Topologies cycled through by :func:`build_specs`, per model.
MS_TOPOLOGIES: Tuple[Tuple[int, int, int], ...] = (
    (1, 1, 2), (1, 2, 2), (2, 1, 3), (2, 2, 2),
)
PCI_TOPOLOGIES: Tuple[Tuple[int, int], ...] = (
    (1, 1), (2, 2), (2, 3), (3, 2),
)

MODELS = ("master_slave", "pci")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully determined scenario (picklable for worker dispatch)."""

    model: str                       # "master_slave" | "pci"
    seed: int
    topology: Tuple[int, ...]        # ms: (blocking, non_blocking, slaves); pci: (masters, targets)
    profile: str = "default"
    cycles: int = 400
    fault: Optional[FaultPlan] = None
    with_monitors: bool = False
    #: directed transaction goals; non-empty switches the stimulus from
    #: the named profile to a DirectedSequence playing exactly these
    goals: Tuple[TransactionGoal, ...] = ()
    #: reconstruct the run's coarse ASM event stream into the verdict
    #: (the simulation->FSM mapping the closure loop folds back)
    track_fsm: bool = False
    #: checkpoint digest to resume from instead of running from reset;
    #: ``cycles`` stays the *total* -- the run covers the remainder.
    #: Resolved against :func:`repro.checkpoint.global_registry` (or the
    #: dispatch layer's ``/checkpoints`` cache on remote hosts).
    resume_from: Optional[str] = None
    #: cycle boundary to snapshot at (<= ``cycles``); the digest lands in
    #: the verdict's ``frontier_digest`` and the checkpoint in the run
    #: process's registry.  The closure loop sets this to cache frontier
    #: states its next round can fork from.
    checkpoint_at: Optional[int] = None

    @property
    def label(self) -> str:
        shape = "x".join(str(n) for n in self.topology)
        return f"{self.model}[{shape}]#{self.seed}/{self.profile}"

    def to_json(self) -> Dict[str, Any]:
        """Model-agnostic wire form: everything a remote host needs to
        rebuild the spec is plain JSON scalars, no pickling."""
        return {
            "model": self.model,
            "seed": self.seed,
            "topology": list(self.topology),
            "profile": self.profile,
            "cycles": self.cycles,
            "fault": self.fault.to_json() if self.fault else None,
            "with_monitors": self.with_monitors,
            "goals": [g.to_json() for g in self.goals],
            "track_fsm": self.track_fsm,
            "resume_from": self.resume_from,
            "checkpoint_at": self.checkpoint_at,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "ScenarioSpec":
        fault = doc.get("fault")
        return cls(
            model=doc["model"],
            seed=doc["seed"],
            topology=tuple(doc["topology"]),
            profile=doc.get("profile", "default"),
            cycles=doc.get("cycles", 400),
            fault=FaultPlan.from_json(fault) if fault else None,
            with_monitors=doc.get("with_monitors", False),
            goals=tuple(
                TransactionGoal.from_json(g) for g in doc.get("goals", ())
            ),
            track_fsm=doc.get("track_fsm", False),
            resume_from=doc.get("resume_from"),
            checkpoint_at=doc.get("checkpoint_at"),
        )


@dataclass
class ScenarioVerdict:
    """What one scenario run produced (returned from the worker)."""

    spec: ScenarioSpec
    ok: bool
    matches: int
    mismatches: Tuple[str, ...]          # described divergences
    mismatch_kinds: Tuple[str, ...]
    failed_assertions: Tuple[str, ...]
    transactions: int
    words: int
    cycles: int
    wall_seconds: float
    stream_digest: str                   # sha256 of the transaction stream
    scoreboard_digest: str
    #: stimulus-bin hits ("target0/W/short" -> count), for coverage
    #: aggregation across the regression
    bin_hits: Tuple[Tuple[str, int], ...] = ()
    #: coarse ASM events reconstructed from the run's records
    #: (only when the spec asked for ``track_fsm``)
    fsm_events: Tuple[Tuple[str, str, tuple], ...] = ()
    #: digest of the checkpoint ``spec.checkpoint_at`` captured, if any;
    #: resolvable in the registry of the process that ran the scenario
    frontier_digest: Optional[str] = None

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        line = (
            f"[{status}] {self.spec.label}: {self.transactions} txns, "
            f"{self.words} words, {self.matches} matched"
        )
        if self.mismatches:
            line += f", {len(self.mismatches)} mismatched ({', '.join(sorted(set(self.mismatch_kinds)))})"
        if self.failed_assertions:
            line += f", assertions failed: {', '.join(self.failed_assertions)}"
        return line

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable verdict (wall time excluded from digests).

        Lossless: ``from_json`` rebuilds an equal verdict, which is what
        lets a shard host ship its results back as JSON and the merger
        fold them into a report whose digest matches a serial run.
        """
        return {
            "label": self.spec.label,
            "model": self.spec.model,
            "seed": self.spec.seed,
            "profile": self.spec.profile,
            "spec": self.spec.to_json(),
            "ok": self.ok,
            "matches": self.matches,
            "mismatches": list(self.mismatch_kinds),
            "mismatch_detail": list(self.mismatches),
            "failed_assertions": list(self.failed_assertions),
            "transactions": self.transactions,
            "words": self.words,
            "cycles": self.cycles,
            "wall_seconds": round(self.wall_seconds, 6),
            "stream_digest": self.stream_digest,
            "scoreboard_digest": self.scoreboard_digest,
            "bin_hits": [[name, hits] for name, hits in self.bin_hits],
            "fsm_events": [
                [machine, action, list(args)]
                for machine, action, args in self.fsm_events
            ],
            "frontier_digest": self.frontier_digest,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "ScenarioVerdict":
        return cls(
            spec=ScenarioSpec.from_json(doc["spec"]),
            ok=doc["ok"],
            matches=doc["matches"],
            mismatches=tuple(doc.get("mismatch_detail", ())),
            mismatch_kinds=tuple(doc["mismatches"]),
            failed_assertions=tuple(doc["failed_assertions"]),
            transactions=doc["transactions"],
            words=doc["words"],
            cycles=doc["cycles"],
            wall_seconds=doc["wall_seconds"],
            stream_digest=doc["stream_digest"],
            scoreboard_digest=doc["scoreboard_digest"],
            bin_hits=tuple((name, hits) for name, hits in doc.get("bin_hits", ())),
            fsm_events=tuple(
                (machine, action, tuple(args))
                for machine, action, args in doc.get("fsm_events", ())
            ),
            frontier_digest=doc.get("frontier_digest"),
        )


def _build_system(spec: ScenarioSpec):
    """Instantiate the scenario system for a spec (worker side)."""
    if spec.goals:
        sequence: Any = DirectedSequence(spec.goals)
    else:
        sequence = sequence_for_profile(spec.profile)
    if spec.model == "master_slave":
        from ..models.master_slave.scenario import MsScenarioSystem

        blocking, non_blocking, slaves = spec.topology
        return MsScenarioSystem(
            blocking, non_blocking, slaves, sequence, spec.seed, fault=spec.fault
        )
    if spec.model == "pci":
        from ..models.pci.scenario import PciScenarioSystem

        masters, targets = spec.topology
        # a directed PCI run disables random STOP#s: target back-off is
        # not expressible as a transaction goal, so letting it fire
        # would only knock planned schedules off their path
        extra = {"stop_probability": 0.0} if spec.goals else {}
        return PciScenarioSystem(
            masters, targets, sequence, spec.seed, fault=spec.fault, **extra
        )
    raise ValueError(f"unknown model {spec.model!r}")


def _attach_monitors(spec: ScenarioSpec, system):
    """Optionally bind the model's PSL assertion suite to the run."""
    from ..abv.harness import AbvHarness

    if spec.model == "master_slave":
        from ..models.master_slave.properties import ms_invariant_properties

        blocking, non_blocking, slaves = spec.topology
        directives = ms_invariant_properties(
            blocking + non_blocking, slaves, include_handshake=False
        )
    else:
        from ..models.pci.properties import pci_safety_properties

        masters, targets = spec.topology
        directives = pci_safety_properties(masters, targets)
    harness = AbvHarness(system.simulator, system.clock, system.letter)
    harness.add_properties(directives)
    return harness


def run_scenario(spec: ScenarioSpec) -> ScenarioVerdict:
    """Execute one spec end to end (the multiprocessing work unit)."""
    if OBS.enabled:
        with OBS.tracer.span(
            "scenarios.run_scenario",
            "scenarios",
            model=spec.model,
            label=spec.label,
            seed=spec.seed,
        ) as span:
            verdict = _run_scenario(spec)
            span.set(transactions=verdict.transactions, ok=verdict.ok)
        return verdict
    return _run_scenario(spec)


def _capture_frontier(
    spec: ScenarioSpec, system, harness, at_cycles: int
) -> str:
    """Snapshot the (quiescent) system into the registry; the digest."""
    from dataclasses import replace

    from ..checkpoint.capture import snapshot_system
    from ..checkpoint.store import global_registry

    base = replace(
        spec, cycles=at_cycles, resume_from=None, checkpoint_at=None
    )
    checkpoint = snapshot_system(system, base, at_cycles, harness=harness)
    if OBS.metrics.enabled:
        OBS.metrics.counter("checkpoint.captured").inc()
    return global_registry().put(checkpoint)


def _run_scenario(spec: ScenarioSpec) -> ScenarioVerdict:
    started = time.perf_counter()
    if spec.resume_from:
        # resume: rebuild the system in its checkpointed state and run
        # only the remainder (spec.cycles is the total).  Imported
        # lazily -- repro.checkpoint builds on this module.
        from ..checkpoint.capture import restore_scenario
        from ..checkpoint.store import global_registry

        checkpoint = global_registry().get(spec.resume_from)
        system, harness = restore_scenario(spec, checkpoint)
        done = checkpoint.cycles_run
        if OBS.metrics.enabled:
            OBS.metrics.counter("checkpoint.resume").inc()
            OBS.metrics.counter("checkpoint.cycles_skipped").inc(done)
    else:
        system = _build_system(spec)
        harness = _attach_monitors(spec, system) if spec.with_monitors else None
        if harness is not None and spec.checkpoint_at is not None:
            # the snapshot replays the letter stream; record from cycle 0
            harness.record_letters = True
        done = 0
    frontier_digest = None
    if (
        spec.checkpoint_at is not None
        and done < spec.checkpoint_at <= spec.cycles
    ):
        system.run_cycles(spec.checkpoint_at - done)
        frontier_digest = _capture_frontier(
            spec, system, harness, spec.checkpoint_at
        )
        done = spec.checkpoint_at
    if spec.cycles > done:
        system.run_cycles(spec.cycles - done)
    if harness is not None:
        harness.finish()
    with OBS.tracer.span("scenarios.check", "scenarios", label=spec.label):
        report = system.check(spec.label)
        stream = system.transaction_stream()
        records = system.records()
        ctx, window, base = system.coverage_context()
        bins = BinCoverage(ctx)
        bins.record_many((txn for txn, _ in records), window, base)
    failed = tuple(
        binding.monitor.name for binding in (harness.failed if harness else [])
    )
    wall = time.perf_counter() - started
    events = (
        tuple((m, a, tuple(args)) for m, a, args in system.fsm_events())
        if spec.track_fsm
        else ()
    )
    return ScenarioVerdict(
        spec=spec,
        ok=report.ok and not failed,
        matches=report.matches,
        mismatches=tuple(m.describe() for m in report.mismatches),
        mismatch_kinds=tuple(m.kind.value for m in report.mismatches),
        failed_assertions=failed,
        transactions=len(records),
        words=report.words_checked,
        cycles=spec.cycles,
        wall_seconds=wall,
        stream_digest=hashlib.sha256(stream.encode("utf-8")).hexdigest()[:16],
        scoreboard_digest=report.digest(),
        bin_hits=tuple(
            sorted((bin_.describe(), hits) for bin_, hits in bins.hits.items())
        ),
        fsm_events=events,
        frontier_digest=frontier_digest,
    )


def build_specs(
    models: Sequence[str] = MODELS,
    count: int = 20,
    base_seed: int = 2005,
    cycles: int = 400,
    with_monitors: bool = False,
    profiles: Optional[Sequence[str]] = None,
    track_fsm: bool = False,
) -> List[ScenarioSpec]:
    """N specs spread over the models, topologies and named profiles.

    Spec construction is itself seeded (``base_seed``), so a regression
    is reproducible end to end from one integer.  ``profiles`` narrows
    the traffic-profile pool (default: every named profile) -- the
    workbench's coverage-residue bias passes the pressure profiles
    here.
    """
    picker = ScenarioRng(base_seed, "regression-specs")
    if profiles is None:
        profiles = sorted(NAMED_PROFILES)
    else:
        unknown = sorted(set(profiles) - set(NAMED_PROFILES))
        if unknown:
            raise ValueError(
                f"unknown traffic profiles {unknown!r} "
                f"(choose from {', '.join(sorted(NAMED_PROFILES))})"
            )
        profiles = sorted(set(profiles))
    specs: List[ScenarioSpec] = []
    for index in range(count):
        model = models[index % len(models)]
        if model == "master_slave":
            topology: Tuple[int, ...] = MS_TOPOLOGIES[
                (index // len(models)) % len(MS_TOPOLOGIES)
            ]
        else:
            topology = PCI_TOPOLOGIES[(index // len(models)) % len(PCI_TOPOLOGIES)]
        profile = profiles[
            picker.derive(f"profile{index}").ranged_int(0, len(profiles) - 1)
        ]
        specs.append(
            ScenarioSpec(
                model=model,
                seed=base_seed + index,
                topology=topology,
                profile=profile,
                cycles=cycles,
                with_monitors=with_monitors,
                track_fsm=track_fsm,
            )
        )
    return specs


def save_specs(specs: Sequence[ScenarioSpec], path: str) -> None:
    """Write a spec list as the versioned JSON wire format."""
    doc = {"version": 1, "specs": [s.to_json() for s in specs]}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)


def load_specs(path: str) -> List[ScenarioSpec]:
    """Read a spec list written by :func:`save_specs`."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict) or "specs" not in doc:
        raise ValueError(f"{path}: not a scenario spec file")
    return [ScenarioSpec.from_json(entry) for entry in doc["specs"]]


@dataclass
class RegressionReport:
    """Aggregate outcome of one regression run."""

    verdicts: List[ScenarioVerdict] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    stopped_early: bool = False

    @property
    def ok(self) -> bool:
        return bool(self.verdicts) and all(v.ok for v in self.verdicts)

    @property
    def failed(self) -> List[ScenarioVerdict]:
        return [v for v in self.verdicts if not v.ok]

    @property
    def transactions(self) -> int:
        return sum(v.transactions for v in self.verdicts)

    @property
    def words(self) -> int:
        return sum(v.words for v in self.verdicts)

    @property
    def throughput(self) -> float:
        """Checked transactions per wall second across the whole fan-out."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.transactions / self.wall_seconds

    def bin_totals(self) -> Dict[str, int]:
        """Aggregate stimulus-bin hits across every scenario."""
        totals: Dict[str, int] = {}
        for verdict in self.verdicts:
            for name, hits in verdict.bin_hits:
                totals[name] = totals.get(name, 0) + hits
        return totals

    def digest(self) -> str:
        """Deterministic fingerprint: specs + streams + verdicts, no wall
        times -- byte-identical for the same seeds, any worker count."""
        lines = [
            f"{v.spec.label} {v.ok} {v.stream_digest} {v.scoreboard_digest}"
            for v in self.verdicts
        ]
        return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()[:16]

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable report for CI and dispatchers (no text parsing).

        The ``digest`` field is the worker-count-invariant fingerprint;
        ``workers``/``wall_seconds``/``throughput`` are run facts and
        deliberately live outside it.
        """
        return {
            "ok": self.ok,
            "digest": self.digest(),
            "scenarios": len(self.verdicts),
            "passed": len(self.verdicts) - len(self.failed),
            "failed": [v.spec.label for v in self.failed],
            "stopped_early": self.stopped_early,
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
            "transactions": self.transactions,
            "words": self.words,
            "throughput_txn_per_s": round(self.throughput, 1),
            "bin_totals": dict(sorted(self.bin_totals().items())),
            "verdicts": [v.to_json() for v in self.verdicts],
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "RegressionReport":
        """Rebuild a report from its ``to_json`` form (shard transport).

        The digest is always recomputed from the verdicts, never read
        back, so a truncated or hand-edited shard report cannot smuggle
        a stale fingerprint past the merger.
        """
        return cls(
            verdicts=[ScenarioVerdict.from_json(v) for v in doc["verdicts"]],
            wall_seconds=doc.get("wall_seconds", 0.0),
            workers=doc.get("workers", 1),
            stopped_early=doc.get("stopped_early", False),
        )

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"=== scenario regression: {status} ===",
            (
                f"{len(self.verdicts)} scenarios on {self.workers} worker(s): "
                f"{len(self.verdicts) - len(self.failed)} passed, "
                f"{len(self.failed)} failed"
                + (" (stopped early)" if self.stopped_early else "")
            ),
            (
                f"{self.transactions} transactions / {self.words} words checked "
                f"in {self.wall_seconds:.2f}s "
                f"({self.throughput:.0f} txn/s aggregate)"
            ),
            f"{len(self.bin_totals())} distinct stimulus bins hit",
            f"digest: {self.digest()}",
        ]
        for verdict in self.failed:
            lines.append(verdict.summary())
            for mismatch in verdict.mismatches[:3]:
                lines.extend("    " + line for line in mismatch.splitlines())
        return "\n".join(lines)


class RegressionRunner:
    """Fans specs across an execution engine and folds the verdicts
    back together.

    The engine seam (:mod:`repro.workbench.engines`) is pluggable:
    serial and local-multiprocessing engines exist today, and a
    cross-host dispatcher slots in without changing this runner --
    verdict order never matters because the report re-sorts by spec.
    """

    def __init__(
        self,
        specs: Sequence[ScenarioSpec],
        workers: Optional[int] = None,
        fail_fast: bool = False,
        mp_start_method: Optional[str] = None,
        engine: Optional[Engine] = None,
    ):
        self.specs = list(specs)
        if engine is None:
            engine = resolve_engine(
                workers, len(self.specs), start_method=mp_start_method
            )
        self.engine = engine
        self.workers = engine.workers
        self.fail_fast = fail_fast
        self.mp_start_method = mp_start_method

    def run(self) -> RegressionReport:
        if OBS.enabled:
            with OBS.tracer.span(
                "scenarios.regression",
                "scenarios",
                scenarios=len(self.specs),
                workers=self.workers,
            ) as span:
                report = self._run()
                span.set(ok=report.ok, failed=len(report.failed))
            self._record_metrics(report)
            return report
        return self._run()

    def _run(self) -> RegressionReport:
        started = time.perf_counter()
        report = RegressionReport(workers=self.workers)
        results = self.engine.imap(run_scenario, self.specs)
        try:
            for verdict in results:
                report.verdicts.append(verdict)
                if self.fail_fast and not verdict.ok:
                    report.stopped_early = len(report.verdicts) < len(self.specs)
                    break
        finally:
            # an early fail-fast break must release engine resources
            # (closing the generator terminates a multiprocessing pool)
            close = getattr(results, "close", None)
            if close is not None:
                close()
        # canonical order: results arrive in scheduler order, the report
        # must not depend on it (the full label disambiguates specs
        # sharing a (model, seed) pair)
        report.verdicts.sort(key=lambda v: (v.spec.model, v.spec.seed, v.spec.label))
        report.wall_seconds = time.perf_counter() - started
        return report

    def _record_metrics(self, report: RegressionReport) -> None:
        """Fold the finished report into the metrics registry.

        Counted on the aggregation side (not inside ``run_scenario``)
        so verdicts computed by remote hosts or worker subprocesses --
        where the registry is off -- still show up, exactly once.
        """
        if not OBS.metrics.enabled:
            return
        registry = OBS.metrics
        registry.counter("scenarios.completed").inc(len(report.verdicts))
        registry.counter("scenarios.failed").inc(len(report.failed))
        registry.counter("scenarios.transactions").inc(report.transactions)
        for verdict in report.verdicts:
            registry.histogram("scenarios.wall_seconds").observe(
                verdict.wall_seconds
            )
            for kind in verdict.mismatch_kinds:
                registry.counter(
                    "scenarios.scoreboard_divergence", kind=kind
                ).inc()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.scenarios.regression",
        description="Run a seeded scenario regression across worker processes "
        "or subprocess shard hosts.",
    )
    parser.add_argument("--models", nargs="+", default=list(MODELS), choices=MODELS)
    parser.add_argument("--scenarios", type=positive_int, default=40)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument(
        "--cycles",
        type=positive_int,
        default=None,
        help="simulated cycles per scenario (default 400; 160 in "
        "--directed mode, matching `python -m repro close`)",
    )
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--fail-fast", action="store_true")
    parser.add_argument(
        "--with-monitors",
        action="store_true",
        help="also bind the PSL assertion suite to every scenario",
    )
    parser.add_argument(
        "--profiles",
        nargs="+",
        default=None,
        choices=sorted(NAMED_PROFILES),
        help="restrict the traffic-profile pool",
    )
    parser.add_argument(
        "--spec-file",
        default=None,
        metavar="FILE",
        help="run the serialized spec list instead of building one "
        "(see repro.scenarios.regression.save_specs)",
    )
    parser.add_argument(
        "--directed",
        action="store_true",
        help="directed coverage closure instead of a constrained-random "
        "regression: explore each model's FSM, plan sequence goals for "
        "the formal-only residue and drive them until it stops shrinking",
    )
    parser.add_argument(
        "--rounds",
        type=positive_int,
        default=3,
        metavar="N",
        help="closure re-plan rounds (--directed only)",
    )
    sharding = parser.add_mutually_exclusive_group()
    sharding.add_argument(
        "--shards",
        type=positive_int,
        default=None,
        metavar="N",
        help="dispatch the regression across N local subprocess shard "
        "hosts and print the merged report",
    )
    sharding.add_argument(
        "--shard",
        type=shard_coordinate,
        default=None,
        metavar="K/N",
        help="run only shard K of N (for manual cross-host dispatch; "
        "fold the outputs back with --merge)",
    )
    sharding.add_argument(
        "--merge",
        nargs="+",
        default=None,
        metavar="REPORT.json",
        help="merge per-shard --json reports into one canonical report",
    )
    add_hosts_argument(parser)
    add_observability_arguments(parser)
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of text",
    )
    options = parser.parse_args(argv)
    reject_hosts_conflict(parser, options)
    if options.directed:
        # directed closure is a whole-session mode: flags that slice,
        # replay or shape a plain regression have no meaning in it and
        # silently ignoring them would misreport what ran
        conflicting = [
            flag
            for flag, given in (
                ("--shard", options.shard is not None),
                ("--merge", options.merge is not None),
                ("--spec-file", options.spec_file is not None),
                ("--fail-fast", options.fail_fast),
                ("--with-monitors", options.with_monitors),
                ("--profiles", options.profiles is not None),
            )
            if given
        ]
        if conflicting:
            parser.error(
                f"--directed cannot be combined with {', '.join(conflicting)}"
            )
    # both closure entry points must agree by default: --directed
    # mirrors `python -m repro close --cycles 160`
    cycles = (
        options.cycles
        if options.cycles is not None
        else (160 if options.directed else 400)
    )
    # stdout carries exactly one report; shim warnings etc. go to stderr
    route_warnings_to_stderr()
    # observability wraps every path below; digests are unaffected
    with observability_scope(options):
        return _cli_dispatch(options, cycles)


def _cli_dispatch(options: argparse.Namespace, cycles: int) -> int:
    # imported here, not at module top: these build on this module
    from ..cliutil import emit_regression_report, load_shard_reports
    from ..dispatch import merge_reports
    from ..dispatch.planner import plan_shards
    from ..workbench.engines import ShardedEngine

    if options.merge is not None:
        return emit_regression_report(
            merge_reports(load_shard_reports(options.merge)), options.json
        )

    if options.directed:
        # directed closure is a Workbench session per model: explore to
        # get the residue, then plan/run/fold until dry
        from ..workbench import Workbench

        docs: Dict[str, Any] = {}
        ok = True
        for model in options.models:
            workbench = Workbench(model, seed=options.seed)
            result = workbench.close_coverage(
                rounds=options.rounds,
                cycles=cycles,
                workers=options.workers,
                shards=options.shards,
                hosts=options.hosts,
            )
            docs[model] = result.to_json()
            ok = ok and result.ok
        if options.json:
            print(json.dumps(docs, indent=2, sort_keys=True))
        else:
            for model, doc in docs.items():
                print(f"=== directed closure: {model} ===")
                print(doc["summary"])
        return 0 if ok else 1

    if options.spec_file is not None:
        specs = load_specs(options.spec_file)
    else:
        specs = build_specs(
            models=options.models,
            count=options.scenarios,
            base_seed=options.seed,
            cycles=cycles,
            with_monitors=options.with_monitors,
            profiles=options.profiles,
        )

    if options.shard is not None:
        index, of = options.shard
        specs = list(plan_shards(specs, of)[index].specs)
        engine = None
    elif options.hosts:
        # remote HTTP workers; --shards sizes the steal queue, defaulting
        # to the planner's oversubscription so rebalance has a tail
        from ..dispatch import shards_for_hosts

        engine = ShardedEngine(
            options.shards or shards_for_hosts(len(options.hosts), len(specs)),
            hosts=options.hosts,
            workers_per_shard=options.workers,
        )
    elif options.shards is not None:
        # through the same engine seam the Workbench uses, so
        # --fail-fast and --workers mean the same thing at every tier
        engine = ShardedEngine(
            options.shards, workers_per_shard=options.workers
        )
    else:
        engine = None

    runner = RegressionRunner(
        specs, workers=options.workers, fail_fast=options.fail_fast, engine=engine
    )
    report = runner.run()
    outcome = getattr(engine, "last_outcome", None)
    if outcome is not None:
        for line in outcome.log_lines():
            print(line, file=sys.stderr)
    return emit_regression_report(report, options.json)


if __name__ == "__main__":
    sys.exit(main())
