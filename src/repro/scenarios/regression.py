"""Parallel regression running for scenario verification.

Fans N seeded scenarios across ``multiprocessing`` workers, checks
every one against its ASM reference scoreboard (plus, optionally, the
PSL assertion monitors), and aggregates verdicts, stimulus coverage
and throughput into one report.

Determinism contract: a :class:`ScenarioSpec` fully determines its
scenario -- same spec, same transaction stream, same verdict digest --
so the report's :meth:`RegressionReport.digest` is stable across runs,
worker counts and schedulers (results are re-sorted by spec before
aggregation).  Wall-clock numbers live outside the digest.

Also runnable as a CLI (``--json`` emits the machine-readable report
for CI and dispatchers)::

    python -m repro.scenarios.regression --models master_slave pci \
        --scenarios 200 --workers 4 --fail-fast --json

Fan-out runs through the pluggable engine layer
(:mod:`repro.workbench.engines`); the session-level entry point is
:meth:`repro.workbench.Workbench.regress`.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..workbench.engines import Engine, resolve_engine
from .coverage_driven import BinCoverage
from .random_ import ScenarioRng
from .scoreboard import FaultPlan
from .sequences import NAMED_PROFILES, sequence_for_profile

#: Topologies cycled through by :func:`build_specs`, per model.
MS_TOPOLOGIES: Tuple[Tuple[int, int, int], ...] = (
    (1, 1, 2), (1, 2, 2), (2, 1, 3), (2, 2, 2),
)
PCI_TOPOLOGIES: Tuple[Tuple[int, int], ...] = (
    (1, 1), (2, 2), (2, 3), (3, 2),
)

MODELS = ("master_slave", "pci")


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully determined scenario (picklable for worker dispatch)."""

    model: str                       # "master_slave" | "pci"
    seed: int
    topology: Tuple[int, ...]        # ms: (blocking, non_blocking, slaves); pci: (masters, targets)
    profile: str = "default"
    cycles: int = 400
    fault: Optional[FaultPlan] = None
    with_monitors: bool = False

    @property
    def label(self) -> str:
        shape = "x".join(str(n) for n in self.topology)
        return f"{self.model}[{shape}]#{self.seed}/{self.profile}"


@dataclass
class ScenarioVerdict:
    """What one scenario run produced (returned from the worker)."""

    spec: ScenarioSpec
    ok: bool
    matches: int
    mismatches: Tuple[str, ...]          # described divergences
    mismatch_kinds: Tuple[str, ...]
    failed_assertions: Tuple[str, ...]
    transactions: int
    words: int
    cycles: int
    wall_seconds: float
    stream_digest: str                   # sha256 of the transaction stream
    scoreboard_digest: str
    #: stimulus-bin hits ("target0/W/short" -> count), for coverage
    #: aggregation across the regression
    bin_hits: Tuple[Tuple[str, int], ...] = ()

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        line = (
            f"[{status}] {self.spec.label}: {self.transactions} txns, "
            f"{self.words} words, {self.matches} matched"
        )
        if self.mismatches:
            line += f", {len(self.mismatches)} mismatched ({', '.join(sorted(set(self.mismatch_kinds)))})"
        if self.failed_assertions:
            line += f", assertions failed: {', '.join(self.failed_assertions)}"
        return line

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable verdict (wall time excluded from digests)."""
        return {
            "label": self.spec.label,
            "model": self.spec.model,
            "seed": self.spec.seed,
            "profile": self.spec.profile,
            "ok": self.ok,
            "matches": self.matches,
            "mismatches": list(self.mismatch_kinds),
            "failed_assertions": list(self.failed_assertions),
            "transactions": self.transactions,
            "words": self.words,
            "cycles": self.cycles,
            "wall_seconds": round(self.wall_seconds, 6),
            "stream_digest": self.stream_digest,
            "scoreboard_digest": self.scoreboard_digest,
        }


def _build_system(spec: ScenarioSpec):
    """Instantiate the scenario system for a spec (worker side)."""
    sequence = sequence_for_profile(spec.profile)
    if spec.model == "master_slave":
        from ..models.master_slave.scenario import MsScenarioSystem

        blocking, non_blocking, slaves = spec.topology
        return MsScenarioSystem(
            blocking, non_blocking, slaves, sequence, spec.seed, fault=spec.fault
        )
    if spec.model == "pci":
        from ..models.pci.scenario import PciScenarioSystem

        masters, targets = spec.topology
        return PciScenarioSystem(
            masters, targets, sequence, spec.seed, fault=spec.fault
        )
    raise ValueError(f"unknown model {spec.model!r}")


def _attach_monitors(spec: ScenarioSpec, system):
    """Optionally bind the model's PSL assertion suite to the run."""
    from ..abv.harness import AbvHarness
    from ..psl.monitor import build_monitor

    if spec.model == "master_slave":
        from ..models.master_slave.properties import ms_invariant_properties

        blocking, non_blocking, slaves = spec.topology
        directives = ms_invariant_properties(
            blocking + non_blocking, slaves, include_handshake=False
        )
    else:
        from ..models.pci.properties import pci_safety_properties

        masters, targets = spec.topology
        directives = pci_safety_properties(masters, targets)
    harness = AbvHarness(system.simulator, system.clock, system.letter)
    harness.add_monitors([build_monitor(d) for d in directives])
    return harness


def run_scenario(spec: ScenarioSpec) -> ScenarioVerdict:
    """Execute one spec end to end (the multiprocessing work unit)."""
    started = time.perf_counter()
    system = _build_system(spec)
    harness = _attach_monitors(spec, system) if spec.with_monitors else None
    system.run_cycles(spec.cycles)
    if harness is not None:
        harness.finish()
    report = system.check(spec.label)
    stream = system.transaction_stream()
    failed = tuple(
        binding.monitor.name for binding in (harness.failed if harness else [])
    )
    wall = time.perf_counter() - started
    records = system.records()
    ctx, window, base = system.coverage_context()
    bins = BinCoverage(ctx)
    bins.record_many((txn for txn, _ in records), window, base)
    return ScenarioVerdict(
        spec=spec,
        ok=report.ok and not failed,
        matches=report.matches,
        mismatches=tuple(m.describe() for m in report.mismatches),
        mismatch_kinds=tuple(m.kind.value for m in report.mismatches),
        failed_assertions=failed,
        transactions=len(records),
        words=report.words_checked,
        cycles=spec.cycles,
        wall_seconds=wall,
        stream_digest=hashlib.sha256(stream.encode("utf-8")).hexdigest()[:16],
        scoreboard_digest=report.digest(),
        bin_hits=tuple(
            sorted((bin_.describe(), hits) for bin_, hits in bins.hits.items())
        ),
    )


def build_specs(
    models: Sequence[str] = MODELS,
    count: int = 20,
    base_seed: int = 2005,
    cycles: int = 400,
    with_monitors: bool = False,
    profiles: Optional[Sequence[str]] = None,
) -> List[ScenarioSpec]:
    """N specs spread over the models, topologies and named profiles.

    Spec construction is itself seeded (``base_seed``), so a regression
    is reproducible end to end from one integer.  ``profiles`` narrows
    the traffic-profile pool (default: every named profile) -- the
    workbench's coverage-residue bias passes the pressure profiles
    here.
    """
    picker = ScenarioRng(base_seed, "regression-specs")
    if profiles is None:
        profiles = sorted(NAMED_PROFILES)
    else:
        unknown = sorted(set(profiles) - set(NAMED_PROFILES))
        if unknown:
            raise ValueError(
                f"unknown traffic profiles {unknown!r} "
                f"(choose from {', '.join(sorted(NAMED_PROFILES))})"
            )
        profiles = sorted(set(profiles))
    specs: List[ScenarioSpec] = []
    for index in range(count):
        model = models[index % len(models)]
        if model == "master_slave":
            topology: Tuple[int, ...] = MS_TOPOLOGIES[
                (index // len(models)) % len(MS_TOPOLOGIES)
            ]
        else:
            topology = PCI_TOPOLOGIES[(index // len(models)) % len(PCI_TOPOLOGIES)]
        profile = profiles[
            picker.derive(f"profile{index}").ranged_int(0, len(profiles) - 1)
        ]
        specs.append(
            ScenarioSpec(
                model=model,
                seed=base_seed + index,
                topology=topology,
                profile=profile,
                cycles=cycles,
                with_monitors=with_monitors,
            )
        )
    return specs


@dataclass
class RegressionReport:
    """Aggregate outcome of one regression run."""

    verdicts: List[ScenarioVerdict] = field(default_factory=list)
    wall_seconds: float = 0.0
    workers: int = 1
    stopped_early: bool = False

    @property
    def ok(self) -> bool:
        return bool(self.verdicts) and all(v.ok for v in self.verdicts)

    @property
    def failed(self) -> List[ScenarioVerdict]:
        return [v for v in self.verdicts if not v.ok]

    @property
    def transactions(self) -> int:
        return sum(v.transactions for v in self.verdicts)

    @property
    def words(self) -> int:
        return sum(v.words for v in self.verdicts)

    @property
    def throughput(self) -> float:
        """Checked transactions per wall second across the whole fan-out."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.transactions / self.wall_seconds

    def bin_totals(self) -> Dict[str, int]:
        """Aggregate stimulus-bin hits across every scenario."""
        totals: Dict[str, int] = {}
        for verdict in self.verdicts:
            for name, hits in verdict.bin_hits:
                totals[name] = totals.get(name, 0) + hits
        return totals

    def digest(self) -> str:
        """Deterministic fingerprint: specs + streams + verdicts, no wall
        times -- byte-identical for the same seeds, any worker count."""
        lines = [
            f"{v.spec.label} {v.ok} {v.stream_digest} {v.scoreboard_digest}"
            for v in self.verdicts
        ]
        return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()[:16]

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable report for CI and dispatchers (no text parsing).

        The ``digest`` field is the worker-count-invariant fingerprint;
        ``workers``/``wall_seconds``/``throughput`` are run facts and
        deliberately live outside it.
        """
        return {
            "ok": self.ok,
            "digest": self.digest(),
            "scenarios": len(self.verdicts),
            "passed": len(self.verdicts) - len(self.failed),
            "failed": [v.spec.label for v in self.failed],
            "stopped_early": self.stopped_early,
            "workers": self.workers,
            "wall_seconds": round(self.wall_seconds, 6),
            "transactions": self.transactions,
            "words": self.words,
            "throughput_txn_per_s": round(self.throughput, 1),
            "bin_totals": dict(sorted(self.bin_totals().items())),
            "verdicts": [v.to_json() for v in self.verdicts],
        }

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        lines = [
            f"=== scenario regression: {status} ===",
            (
                f"{len(self.verdicts)} scenarios on {self.workers} worker(s): "
                f"{len(self.verdicts) - len(self.failed)} passed, "
                f"{len(self.failed)} failed"
                + (" (stopped early)" if self.stopped_early else "")
            ),
            (
                f"{self.transactions} transactions / {self.words} words checked "
                f"in {self.wall_seconds:.2f}s "
                f"({self.throughput:.0f} txn/s aggregate)"
            ),
            f"{len(self.bin_totals())} distinct stimulus bins hit",
            f"digest: {self.digest()}",
        ]
        for verdict in self.failed:
            lines.append(verdict.summary())
            for mismatch in verdict.mismatches[:3]:
                lines.extend("    " + line for line in mismatch.splitlines())
        return "\n".join(lines)


class RegressionRunner:
    """Fans specs across an execution engine and folds the verdicts
    back together.

    The engine seam (:mod:`repro.workbench.engines`) is pluggable:
    serial and local-multiprocessing engines exist today, and a
    cross-host dispatcher slots in without changing this runner --
    verdict order never matters because the report re-sorts by spec.
    """

    def __init__(
        self,
        specs: Sequence[ScenarioSpec],
        workers: Optional[int] = None,
        fail_fast: bool = False,
        mp_start_method: Optional[str] = None,
        engine: Optional[Engine] = None,
    ):
        self.specs = list(specs)
        if engine is None:
            engine = resolve_engine(
                workers, len(self.specs), start_method=mp_start_method
            )
        self.engine = engine
        self.workers = engine.workers
        self.fail_fast = fail_fast
        self.mp_start_method = mp_start_method

    def run(self) -> RegressionReport:
        started = time.perf_counter()
        report = RegressionReport(workers=self.workers)
        results = self.engine.imap(run_scenario, self.specs)
        try:
            for verdict in results:
                report.verdicts.append(verdict)
                if self.fail_fast and not verdict.ok:
                    report.stopped_early = len(report.verdicts) < len(self.specs)
                    break
        finally:
            # an early fail-fast break must release engine resources
            # (closing the generator terminates a multiprocessing pool)
            close = getattr(results, "close", None)
            if close is not None:
                close()
        # canonical order: results arrive in scheduler order, the report
        # must not depend on it (the full label disambiguates specs
        # sharing a (model, seed) pair)
        report.verdicts.sort(key=lambda v: (v.spec.model, v.spec.seed, v.spec.label))
        report.wall_seconds = time.perf_counter() - started
        return report


def _positive_int(text: str) -> int:
    value = int(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.scenarios.regression",
        description="Run a seeded scenario regression across worker processes.",
    )
    parser.add_argument("--models", nargs="+", default=list(MODELS), choices=MODELS)
    parser.add_argument("--scenarios", type=_positive_int, default=40)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--cycles", type=_positive_int, default=400)
    parser.add_argument("--seed", type=int, default=2005)
    parser.add_argument("--fail-fast", action="store_true")
    parser.add_argument(
        "--with-monitors",
        action="store_true",
        help="also bind the PSL assertion suite to every scenario",
    )
    parser.add_argument(
        "--profiles",
        nargs="+",
        default=None,
        choices=sorted(NAMED_PROFILES),
        help="restrict the traffic-profile pool",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of text",
    )
    options = parser.parse_args(argv)
    specs = build_specs(
        models=options.models,
        count=options.scenarios,
        base_seed=options.seed,
        cycles=options.cycles,
        with_monitors=options.with_monitors,
        profiles=options.profiles,
    )
    runner = RegressionRunner(
        specs, workers=options.workers, fail_fast=options.fail_fast
    )
    report = runner.run()
    if options.json:
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
