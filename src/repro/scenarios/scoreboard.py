"""Transaction scoreboard with the ASM model as golden reference.

The paper verifies the ASM design formally, then trusts the translated
SystemC model to refine it.  The scoreboard closes that gap at run
time: every completed SystemC-level :class:`~repro.sysc.bus.Transaction`
is replayed -- in completion order -- as a sequence of guarded ASM
actions on a fresh instance of the very model the explorer verified.
A transaction the ASM model would not accept (a ``require`` fails
mid-replay) is a *protocol divergence*; data that differs from the
golden memory the replay maintains is a *data divergence*; completed
transactions the design never reported are *dropped*.

Every mismatch carries full divergence context: the transaction record
(txn_id, cycles, payload), what was expected, what was observed, and a
dump of the reference model's state at the point of divergence.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..asm.errors import AsmError, RequirementFailure
from ..asm.machine import ActionCall, AsmModel
from ..sysc.bus import Transaction
from .sequences import SequenceItem


class DivergenceKind(enum.Enum):
    """Why the design and the reference disagree."""

    PROTOCOL = "protocol"    # ASM replay rejected the transaction
    DATA = "data"            # payload differs from the golden memory
    DROPPED = "dropped"      # completed but never reported
    COUNTER = "counter"      # aggregate word counters diverged


@dataclass(frozen=True)
class Mismatch:
    """One divergence, with enough context to reproduce and debug it."""

    kind: DivergenceKind
    master: str
    txn_id: int
    detail: str
    expected: str = ""
    observed: str = ""
    reference_state: str = ""

    def describe(self) -> str:
        lines = [f"[{self.kind.value}] {self.master} txn#{self.txn_id}: {self.detail}"]
        if self.expected or self.observed:
            lines.append(f"  expected: {self.expected}")
            lines.append(f"  observed: {self.observed}")
        if self.reference_state:
            lines.append(f"  reference state: {self.reference_state}")
        return "\n".join(lines)


@dataclass
class ScoreboardReport:
    """Everything one scoreboard pass produced."""

    scenario: str
    matches: int = 0
    words_checked: int = 0
    replayed_calls: int = 0
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    @property
    def checked(self) -> int:
        return self.matches + len(self.mismatches)

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        head = (
            f"[{status}] scoreboard {self.scenario}: {self.matches} matched, "
            f"{len(self.mismatches)} mismatched, {self.words_checked} words, "
            f"{self.replayed_calls} reference actions replayed"
        )
        if self.ok:
            return head
        return "\n".join([head] + [m.describe() for m in self.mismatches])

    def digest(self) -> str:
        """Deterministic fingerprint of the verdict (no wall times)."""
        payload = "\n".join(
            [
                self.scenario,
                str(self.matches),
                str(self.words_checked),
            ]
            + [m.describe() for m in self.mismatches]
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


class AsmLockstep:
    """Drives the golden :class:`AsmModel` one guarded action at a time.

    ``call`` returns None on success or a human-readable failure
    description when the action's ``require`` rejected the step --
    i.e. when the observed SystemC behaviour has no counterpart in the
    verified ASM design.
    """

    def __init__(self, model: AsmModel):
        self.model = model
        self.calls_executed = 0
        #: bound @action methods keyed by (machine, action) -- replay
        #: scripts hit the same few actions thousands of times, so the
        #: per-call getattr/validation runs once per distinct action
        self._methods: Dict[Tuple[str, str], Any] = {}

    def call(self, machine: str, action: str, *args: Any) -> Optional[str]:
        method = self._methods.get((machine, action))
        if method is None:
            method = getattr(self.model.machines[machine], action)
            if getattr(method, "asm_action", None) is None:
                label = ActionCall(machine, action, tuple(args)).label()
                return f"{label} rejected: {machine}.{action} is not an @action"
            self._methods[(machine, action)] = method
        try:
            method(*args)
        except RequirementFailure as failure:
            # Match AsmModel.execute's wrapping (label prefix) so the
            # divergence text is identical to the uncached path.
            label = ActionCall(machine, action, tuple(args)).label()
            return f"{label} rejected: {label}: {failure}"
        except AsmError as failure:
            label = ActionCall(machine, action, tuple(args)).label()
            return f"{label} rejected: {failure}"
        self.calls_executed += 1
        return None

    def state_dump(self, limit: int = 14) -> str:
        """Compact reference-state rendering for divergence context."""
        pairs = []
        for location, value in self.model.full_state().items():
            if location.machine == "$globals":
                continue
            pairs.append(f"{location.machine}.{location.variable}={value!r}")
        if len(pairs) > limit:
            pairs = pairs[:limit] + [f"... (+{len(pairs) - limit} more)"]
        return ", ".join(pairs)


class ReferenceAdapter:
    """Binds the generic scoreboard to one design's ASM reference.

    Concrete adapters live next to their models
    (:mod:`repro.models.master_slave.scenario`,
    :mod:`repro.models.pci.scenario`) and implement
    :meth:`build_reference` plus :meth:`observe`; the lockstep
    bookkeeping and the dropped-transaction accounting are shared.
    """

    lockstep: Optional[AsmLockstep] = None

    def build_reference(self) -> AsmModel:
        """A fresh, sealed reference model (with a ``system.init``)."""
        raise NotImplementedError

    def begin(self) -> None:
        """Arm a fresh reference (called once per check pass)."""
        self._reset_reference()

    def _reset_reference(self) -> None:
        """(Re)build the golden model, preserving the replay counter --
        also used to re-arm after a protocol divergence so later
        transactions still get checked."""
        previous = self.lockstep.calls_executed if self.lockstep else 0
        self.lockstep = AsmLockstep(self.build_reference())
        self.lockstep.calls_executed = previous
        error = self.lockstep.call("system", "init")
        if error:  # pragma: no cover -- the case-study models always init
            raise RuntimeError(f"reference model failed to initialize: {error}")

    @property
    def replayed_calls(self) -> int:
        return self.lockstep.calls_executed if self.lockstep else 0

    def observe(self, txn: Transaction, item: SequenceItem) -> Iterable[Mismatch]:
        """Replay one completed transaction; yield divergences."""
        raise NotImplementedError

    def finish(
        self,
        completed: Mapping[str, int],
        recorded: Mapping[str, int],
    ) -> Iterable[Mismatch]:
        """End-of-run accounting; the default checks for dropped
        transactions (adapters may extend with model-specific checks)."""
        return self._dropped_mismatches(completed, recorded)

    def _dropped_mismatches(
        self,
        completed: Mapping[str, int],
        recorded: Mapping[str, int],
    ) -> Iterator[Mismatch]:
        for master, done in sorted(completed.items()):
            seen = recorded.get(master, 0)
            if seen < done:
                yield Mismatch(
                    kind=DivergenceKind.DROPPED,
                    master=master,
                    txn_id=-1,
                    detail=f"{done - seen} completed transaction(s) never reported",
                    expected=f"{done} records",
                    observed=f"{seen} records",
                )
            elif seen > done:  # pragma: no cover -- would be a driver bug
                yield Mismatch(
                    kind=DivergenceKind.COUNTER,
                    master=master,
                    txn_id=-1,
                    detail="more records than completed transactions",
                    expected=f"{done} records",
                    observed=f"{seen} records",
                )


class ScenarioSystem:
    """Shared scoreboard plumbing for model scenario tops.

    Subclasses build the simulator/clock/masters in ``__init__`` (each
    master exposing ``records``/``completed``/``name``) and implement
    :meth:`reference_adapter` and :meth:`coverage_context`.
    """

    simulator: Any
    clock: Any
    masters: Sequence[Any]

    def reference_adapter(self) -> ReferenceAdapter:
        raise NotImplementedError

    def coverage_context(self):
        """``(StimulusContext, address_window, target_base)`` for
        stimulus-bin coverage -- the model owns its address layout."""
        raise NotImplementedError

    def fsm_events(self) -> List[Tuple[str, str, tuple]]:
        """The run's observable behaviour as coarse ASM action events
        ``(machine, action, args)``, reconstructed from the completed
        transaction records.

        Model tops that know their coarse action vocabulary override
        this (usually via :meth:`_serialized_fsm_events`); the stream
        is what maps a scenario run onto the formally explored FSM
        (:func:`repro.explorer.goal_planner.walk_fsm_events`) and must
        be a sound under-approximation: only interleavings the records
        actually evidence may be emitted.  The default -- no mapping --
        claims no FSM coverage at all.
        """
        return []

    def _serialized_fsm_events(
        self, transaction_events
    ) -> List[Tuple[str, str, tuple]]:
        """Shared sound-serialization skeleton for :meth:`fsm_events`.

        Emits one ``master{i}.request`` per completed transaction plus
        ``transaction_events(txn, owner)``'s tail per transaction, in
        completion order.  Requests of *other* masters are emitted
        before a transaction only when the records prove they were
        pending at its grant (their window opened no later than the
        owner's) **and** lowest-index arbitration would still pick the
        observed owner -- i.e. only higher-index masters; a lower-index
        overlap would have won the grant, so its request is deferred to
        its own transaction.  Sorted by request time (master index on
        ties, matching same-cycle arbitration), every emitted
        interleaving is one the verified ASM model accepts for these
        records -- partial credit, never false credit.
        """
        completed = sorted(
            (txn for txn, _ in self.records()),
            key=lambda t: (t.end_cycle, t.txn_id),
        )
        queues: Dict[int, List[Transaction]] = {}
        for txn in completed:
            index = int(txn.master.replace("master", ""))
            queues.setdefault(index, []).append(txn)
        cursor = {index: 0 for index in queues}
        requested: set = set()
        events: List[Tuple[str, str, tuple]] = []
        for txn in completed:
            owner = int(txn.master.replace("master", ""))
            emit: List[Tuple[int, int]] = []
            if owner not in requested:
                emit.append((queues[owner][cursor[owner]].start_cycle, owner))
            for other in sorted(queues):
                if other <= owner or other in requested:
                    continue
                position = cursor[other]
                if (
                    position < len(queues[other])
                    and queues[other][position].start_cycle <= txn.start_cycle
                ):
                    emit.append((queues[other][position].start_cycle, other))
            for _, index in sorted(emit):
                events.append((f"master{index}", "request", ()))
                requested.add(index)
                cursor[index] += 1
            events.extend(transaction_events(txn, owner))
            requested.discard(owner)
        return events

    def run_cycles(self, cycles: int) -> None:
        self.simulator.run(self.clock.period * cycles)

    def records(self) -> List[Tuple[Transaction, SequenceItem]]:
        merged: List[Tuple[Transaction, SequenceItem]] = []
        for master in self.masters:
            merged.extend(master.records)
        return merged

    def completed_counts(self) -> Dict[str, int]:
        return {m.name: m.completed for m in self.masters}

    def transaction_stream(self) -> str:
        """Canonical, byte-stable rendering of everything that moved."""
        ordered = sorted(
            (txn for txn, _ in self.records()),
            key=lambda t: (t.end_cycle, t.txn_id),
        )
        return "\n".join(t.describe() for t in ordered)

    def check(self, scenario: str = "") -> "ScoreboardReport":
        name = scenario or self.simulator.name
        return Scoreboard(self.reference_adapter(), name).check(
            self.records(), self.completed_counts()
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deliberate defect injected into a scenario system.

    Used by the test suite to prove the scoreboard detects divergence
    rather than silently passing:

    * ``corrupt-read``: slave/record data path flips a bit from the
      ``nth`` read onward (master/slave index per ``unit``),
    * ``drop``: the ``nth`` completed transaction of master ``unit``
      is completed by the hardware but never reported.
    """

    kind: str              # "corrupt-read" | "drop"
    unit: int = 0          # slave index (corrupt-read) or master index (drop)
    nth: int = 1           # 1-based trigger point

    def __post_init__(self):
        if self.kind not in ("corrupt-read", "drop"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.nth < 1:
            raise ValueError("fault nth is 1-based")

    def to_json(self) -> dict:
        """Wire form for cross-host spec dispatch."""
        return {"kind": self.kind, "unit": self.unit, "nth": self.nth}

    @classmethod
    def from_json(cls, doc: dict) -> "FaultPlan":
        return cls(kind=doc["kind"], unit=doc["unit"], nth=doc["nth"])


class Scoreboard:
    """Checks a finished scenario run against its ASM reference.

    ``records`` pairs every reported transaction with the sequence
    item that stimulated it; ``completed`` counts what each master
    actually finished on the bus (reported or not).  Transactions are
    replayed in completion order (``end_cycle``, then issue order via
    ``txn_id``) so the golden memory evolves exactly as the shared
    bus serialized the transfers.
    """

    def __init__(self, adapter: ReferenceAdapter, scenario: str = "scenario"):
        self.adapter = adapter
        self.scenario = scenario

    def check(
        self,
        records: Sequence[Tuple[Transaction, SequenceItem]],
        completed: Optional[Mapping[str, int]] = None,
    ) -> ScoreboardReport:
        report = ScoreboardReport(scenario=self.scenario)
        self.adapter.begin()
        ordered = sorted(records, key=lambda pair: (pair[0].end_cycle, pair[0].txn_id))
        recorded_counts: Dict[str, int] = {}
        for txn, item in ordered:
            recorded_counts[txn.master] = recorded_counts.get(txn.master, 0) + 1
            found = list(self.adapter.observe(txn, item))
            if found:
                report.mismatches.extend(found)
            else:
                report.matches += 1
            report.words_checked += txn.burst_length
        if completed is not None:
            report.mismatches.extend(
                self.adapter.finish(completed, recorded_counts)
            )
        report.replayed_calls = self.adapter.replayed_calls
        return report
