"""CLI entry point: ``python -m repro.scenarios`` runs a regression."""

import sys

from .regression import main

sys.exit(main())
