"""A UVM-style sequence library for bus stimulus.

A :class:`Sequence` is a reusable, stateless recipe: ``items(rng,
ctx)`` yields :class:`SequenceItem` records describing abstract
transactions (target, direction, burst, address offset, payload, idle
gap).  A model-specific driver (``repro.models.*.scenario``) turns the
items into real :class:`repro.sysc.bus.Transaction` traffic, in either
bus mode -- blocking drivers move the item as one burst, non-blocking
drivers move single words.

Sequences compose: :class:`Chain` runs recipes back to back,
:class:`Interleave` round-robins them, :class:`Mix` picks per item by
weight, :class:`Repeat` loops a finite recipe.  Composition derives
child random streams by position, so adding a branch never perturbs
its siblings (see :mod:`.random_`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Iterator, Optional, Sequence as Seq, Tuple

from .random_ import BURST_PROFILES, BurstProfile, ScenarioRng


@dataclass(frozen=True)
class StimulusContext:
    """What the driven bus looks like from the stimulus side."""

    n_targets: int
    min_burst: int = 1
    max_burst: int = 2
    address_span: int = 16      # word offsets available inside a target window
    max_idle: int = 3
    payload_bits: int = 16

    def clamp_burst(self, burst: int) -> int:
        return min(max(burst, self.min_burst), self.max_burst)


@dataclass(frozen=True)
class SequenceItem:
    """One abstract transaction, before a driver binds it to a bus."""

    target: int
    is_write: bool
    burst: int
    address_offset: int
    payload: Tuple[int, ...] = ()
    idle: int = 1

    def describe(self) -> str:
        direction = "W" if self.is_write else "R"
        return (
            f"{direction} target{self.target}+{self.address_offset:#x} "
            f"x{self.burst} idle={self.idle}"
        )

    def to_json(self) -> dict:
        """Lossless wire form (checkpoints, remote dispatch)."""
        return {
            "target": self.target,
            "is_write": self.is_write,
            "burst": self.burst,
            "address_offset": self.address_offset,
            "payload": list(self.payload),
            "idle": self.idle,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "SequenceItem":
        return cls(
            target=doc["target"],
            is_write=doc["is_write"],
            burst=doc["burst"],
            address_offset=doc["address_offset"],
            payload=tuple(doc["payload"]),
            idle=doc["idle"],
        )


@dataclass(frozen=True)
class TrafficProfile:
    """Tunable knobs of constrained-random traffic.

    ``target_weights`` biases target selection (missing/empty means
    uniform); ``write_bias`` is P(write); ``burst`` shapes burst
    lengths; idle gaps are uniform in [idle_min, idle_max].
    """

    write_bias: float = 0.5
    target_weights: Tuple[float, ...] = ()
    burst: BurstProfile = field(default_factory=BurstProfile)
    idle_min: int = 0
    idle_max: int = 3

    def with_target_boost(self, target: int, boost: float, n_targets: int) -> "TrafficProfile":
        weights = list(self.target_weights) or [1.0] * n_targets
        while len(weights) < n_targets:
            weights.append(1.0)
        weights[target] += boost
        return replace(self, target_weights=tuple(weights))


#: Named profiles the regression runner can select by string.
NAMED_PROFILES = {
    "default": TrafficProfile(),
    "bursty": TrafficProfile(burst=BURST_PROFILES["long"], idle_min=0, idle_max=1),
    "writes": TrafficProfile(write_bias=0.85),
    "reads": TrafficProfile(write_bias=0.15),
    "edges": TrafficProfile(burst=BURST_PROFILES["edges"], idle_min=0, idle_max=4),
}


class Sequence:
    """Base class: a stateless generator of :class:`SequenceItem`."""

    name = "sequence"

    def items(self, rng: ScenarioRng, ctx: StimulusContext) -> Iterator[SequenceItem]:
        raise NotImplementedError

    def for_unit(self, unit: int) -> "Sequence":
        """The view of this sequence one driving unit (master) pulls
        from.  Shared constrained-random recipes are unit-agnostic --
        every master draws from the same recipe through its own derived
        stream -- so the default is identity.  Directed sequences
        override this to hand each master exactly its own goals."""
        return self

    # -- composition sugar -------------------------------------------------

    def then(self, other: "Sequence") -> "Chain":
        return Chain(self, other)

    def repeated(self, times: int) -> "Repeat":
        return Repeat(self, times)


def _payload_for(rng: ScenarioRng, ctx: StimulusContext, is_write: bool, burst: int) -> Tuple[int, ...]:
    if not is_write:
        return ()
    return rng.payload(burst, ctx.payload_bits)


def _offset_for(rng: ScenarioRng, ctx: StimulusContext, burst: int) -> int:
    return rng.ranged_int(0, max(ctx.address_span - burst, 0))


class RandomTraffic(Sequence):
    """Constrained-random traffic shaped by a :class:`TrafficProfile`.

    Infinite by default (``length=None``): the driver stops pulling
    when the simulation ends.
    """

    name = "random_traffic"

    def __init__(self, profile: TrafficProfile = TrafficProfile(), length: Optional[int] = None):
        self.profile = profile
        self.length = length

    def items(self, rng: ScenarioRng, ctx: StimulusContext) -> Iterator[SequenceItem]:
        profile = self.profile
        counter = itertools.count() if self.length is None else range(self.length)
        for _ in counter:
            weights = profile.target_weights or (1.0,) * ctx.n_targets
            target = rng.weighted_choice(
                [(t, weights[t] if t < len(weights) else 1.0) for t in range(ctx.n_targets)]
            )
            is_write = rng.weighted_choice(
                [(True, profile.write_bias), (False, 1.0 - profile.write_bias)]
            )
            burst = ctx.clamp_burst(
                profile.burst.sample(rng, ctx.min_burst, ctx.max_burst)
            )
            yield SequenceItem(
                target=target,
                is_write=is_write,
                burst=burst,
                address_offset=_offset_for(rng, ctx, burst),
                payload=_payload_for(rng, ctx, is_write, burst),
                idle=rng.ranged_int(
                    max(profile.idle_min, 0), max(profile.idle_max, profile.idle_min, 0)
                ),
            )


class BurstSweep(Sequence):
    """Deterministic sweep: every burst length against every target,
    alternating write/read -- the directed backbone of a regression."""

    name = "burst_sweep"

    def __init__(self, rounds: int = 1):
        self.rounds = rounds

    def items(self, rng: ScenarioRng, ctx: StimulusContext) -> Iterator[SequenceItem]:
        for round_index in range(self.rounds):
            for burst in range(ctx.min_burst, ctx.max_burst + 1):
                for target in range(ctx.n_targets):
                    is_write = (round_index + burst + target) % 2 == 0
                    offset = (burst * 3 + target) % max(ctx.address_span - burst + 1, 1)
                    yield SequenceItem(
                        target=target,
                        is_write=is_write,
                        burst=burst,
                        address_offset=offset,
                        payload=_payload_for(rng, ctx, is_write, burst),
                        idle=1,
                    )


class AddressWalk(Sequence):
    """Walk the address window of each target: a write pass laying down
    a known pattern, then a read pass over the same offsets."""

    name = "address_walk"

    def __init__(self, stride: int = 1):
        self.stride = max(stride, 1)

    def items(self, rng: ScenarioRng, ctx: StimulusContext) -> Iterator[SequenceItem]:
        burst = ctx.min_burst
        for target in range(ctx.n_targets):
            offsets = range(0, max(ctx.address_span - burst + 1, 1), self.stride)
            for offset in offsets:
                yield SequenceItem(
                    target=target,
                    is_write=True,
                    burst=burst,
                    address_offset=offset,
                    payload=_payload_for(rng, ctx, True, burst),
                    idle=0,
                )
            for offset in offsets:
                yield SequenceItem(
                    target=target,
                    is_write=False,
                    burst=burst,
                    address_offset=offset,
                    idle=0,
                )


class WriteReadback(Sequence):
    """Random write immediately followed by a read of the same words --
    the scoreboard's sharpest data-integrity probe."""

    name = "write_readback"

    def __init__(self, pairs: int = 8):
        self.pairs = pairs

    def items(self, rng: ScenarioRng, ctx: StimulusContext) -> Iterator[SequenceItem]:
        for _ in range(self.pairs):
            burst = rng.ranged_int(ctx.min_burst, ctx.max_burst)
            target = rng.ranged_int(0, ctx.n_targets - 1)
            offset = _offset_for(rng, ctx, burst)
            yield SequenceItem(
                target=target,
                is_write=True,
                burst=burst,
                address_offset=offset,
                payload=_payload_for(rng, ctx, True, burst),
                idle=0,
            )
            yield SequenceItem(
                target=target,
                is_write=False,
                burst=burst,
                address_offset=offset,
                idle=0,
            )


# -- combinators -----------------------------------------------------------


class Chain(Sequence):
    """Run finite sequences back to back (an infinite child starves
    its successors, as in UVM)."""

    name = "chain"

    def __init__(self, *parts: Sequence):
        self.parts = parts

    def items(self, rng: ScenarioRng, ctx: StimulusContext) -> Iterator[SequenceItem]:
        for index, part in enumerate(self.parts):
            yield from part.items(rng.derive(f"chain{index}:{part.name}"), ctx)


class Interleave(Sequence):
    """Round-robin across children until all are exhausted -- several
    virtual sequences sharing one driver."""

    name = "interleave"

    def __init__(self, *parts: Sequence):
        self.parts = parts

    def items(self, rng: ScenarioRng, ctx: StimulusContext) -> Iterator[SequenceItem]:
        streams = [
            part.items(rng.derive(f"lane{index}:{part.name}"), ctx)
            for index, part in enumerate(self.parts)
        ]
        while streams:
            exhausted = []
            for stream in streams:
                try:
                    yield next(stream)
                except StopIteration:
                    exhausted.append(stream)
            for stream in exhausted:
                streams.remove(stream)


class Mix(Sequence):
    """Pick the next item's source by weight, per item (an endless
    weighted blend of traffic shapes)."""

    name = "mix"

    def __init__(self, weighted_parts: Seq[Tuple[Sequence, float]], length: int = 64):
        self.weighted_parts = list(weighted_parts)
        self.length = length

    def items(self, rng: ScenarioRng, ctx: StimulusContext) -> Iterator[SequenceItem]:
        picker = rng.derive("mix-picker")
        streams = []
        for index, (part, weight) in enumerate(self.weighted_parts):
            stream = part.items(rng.derive(f"mix{index}:{part.name}"), ctx)
            streams.append([stream, weight])
        emitted = 0
        while emitted < self.length and streams:
            choice = picker.weighted_choice(
                [(index, weight) for index, (_, weight) in enumerate(streams)]
            )
            try:
                yield next(streams[choice][0])
                emitted += 1
            except StopIteration:
                del streams[choice]


class Repeat(Sequence):
    """Loop a finite sequence ``times`` times with fresh derived
    streams, so every pass explores different random values."""

    name = "repeat"

    def __init__(self, part: Sequence, times: int):
        self.part = part
        self.times = times

    def items(self, rng: ScenarioRng, ctx: StimulusContext) -> Iterator[SequenceItem]:
        for pass_index in range(self.times):
            yield from self.part.items(rng.derive(f"pass{pass_index}"), ctx)


def sequence_for_profile(profile_name: str) -> Sequence:
    """The regression runner's stimulus recipe for a named profile: a
    directed warm-up (sweep + readback) followed by endless
    constrained-random traffic in the requested shape."""
    if profile_name not in NAMED_PROFILES:
        raise ValueError(
            f"unknown traffic profile {profile_name!r} "
            f"(choose from {', '.join(sorted(NAMED_PROFILES))})"
        )
    profile = NAMED_PROFILES[profile_name]
    return Chain(
        BurstSweep(rounds=1),
        WriteReadback(pairs=4),
        RandomTraffic(profile),
    )
