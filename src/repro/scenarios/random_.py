"""Seeded, reproducible randomization for scenario generation.

Constrained-random stimulus is only useful when a failing run can be
replayed bit-for-bit from its seed.  :class:`ScenarioRng` therefore

* derives child generators by *name* through SHA-256 (``derive``), so
  the stream a sequence sees depends only on ``(root seed, path)`` --
  adding a new consumer elsewhere never perturbs existing streams
  (unlike handing one ``random.Random`` around), and
* sticks to a small set of primitives (ranged ints, weighted choices,
  Bernoulli trials, distribution sampling) whose CPython implementation
  is stable across the versions we support.

The distribution vocabulary (:class:`BurstProfile`) covers the shapes
bus stimulus actually needs: uniform, geometric (short bursts dominate,
the common-case traffic), fixed, and "edges" (min/max heavy -- the
boundary-condition hunter).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple, TypeVar

T = TypeVar("T")

_SEED_BYTES = 8


def derive_seed(seed: int, path: str) -> int:
    """Stable child seed for ``path`` under ``seed`` (SHA-256 based,
    therefore identical across processes and interpreter runs)."""
    digest = hashlib.sha256(f"{seed}:{path}".encode("utf-8")).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


class ScenarioRng:
    """A named, derivable random stream.

    ``ScenarioRng(2005).derive("master0").derive("bursts")`` always
    yields the same stream, independent of any other derivation made
    from the same root.
    """

    __slots__ = ("seed", "path", "_random")

    def __init__(self, seed: int, path: str = ""):
        self.seed = seed
        self.path = path
        self._random = random.Random(derive_seed(seed, path))

    def derive(self, name: str) -> "ScenarioRng":
        """A child stream named ``name`` (path-separated by ``/``)."""
        child_path = f"{self.path}/{name}" if self.path else name
        return ScenarioRng(self.seed, child_path)

    # -- primitives -------------------------------------------------------

    def ranged_int(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        if low > high:
            raise ValueError(f"empty range [{low}, {high}]")
        return self._random.randint(low, high)

    def chance(self, probability: float) -> bool:
        """One Bernoulli trial."""
        return self._random.random() < probability

    def weighted_choice(self, choices: Sequence[Tuple[T, float]]) -> T:
        """Pick one value from ``(value, weight)`` pairs.

        Non-positive weights exclude a value; if every weight is
        non-positive the choice degenerates to uniform (a biasing loop
        that zeroed everything out should still make progress).
        """
        if not choices:
            raise ValueError("weighted_choice over an empty sequence")
        total = sum(weight for _, weight in choices if weight > 0)
        if total <= 0:
            index = self._random.randrange(len(choices))
            return choices[index][0]
        point = self._random.random() * total
        for value, weight in choices:
            if weight <= 0:
                continue
            point -= weight
            if point <= 0:
                return value
        return choices[-1][0]

    def shuffled(self, values: Sequence[T]) -> List[T]:
        """A shuffled copy (the input is never mutated)."""
        copy = list(values)
        self._random.shuffle(copy)
        return copy

    def payload(self, words: int, width_bits: int = 16) -> Tuple[int, ...]:
        """A tuple of ``words`` random data words."""
        mask = (1 << width_bits) - 1
        return tuple(self._random.randint(0, mask) for _ in range(words))


@dataclass(frozen=True)
class BurstProfile:
    """A burst-length distribution over an inclusive range.

    kind:
        ``uniform``   -- flat over [low, high],
        ``geometric`` -- short bursts dominate (parameter ``p`` is the
                         per-step continuation probability),
        ``fixed``     -- always ``value`` (clamped into range),
        ``edges``     -- min/max heavy: boundary conditions first.
    """

    kind: str = "uniform"
    p: float = 0.5
    value: int = 1

    def sample(self, rng: ScenarioRng, low: int, high: int) -> int:
        if low > high:
            raise ValueError(f"empty burst range [{low}, {high}]")
        if low == high:
            return low
        if self.kind == "uniform":
            return rng.ranged_int(low, high)
        if self.kind == "geometric":
            length = low
            while length < high and rng.chance(self.p):
                length += 1
            return length
        if self.kind == "fixed":
            return min(max(self.value, low), high)
        if self.kind == "edges":
            if rng.chance(0.8):
                return low if rng.chance(0.5) else high
            return rng.ranged_int(low, high)
        raise ValueError(f"unknown burst profile kind {self.kind!r}")


#: Ready-made burst shapes by name (used by regression profiles).
BURST_PROFILES = {
    "uniform": BurstProfile("uniform"),
    "short": BurstProfile("geometric", p=0.3),
    "long": BurstProfile("geometric", p=0.8),
    "single": BurstProfile("fixed", value=1),
    "edges": BurstProfile("edges"),
}
