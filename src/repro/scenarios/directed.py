"""Directed sequences: FSM path plans lowered onto bus stimulus.

The counterpart of :mod:`repro.explorer.goal_planner` on the stimulus
side.  A planned FSM path arrives here as an ordered list of
:class:`TransactionGoal` records -- "master ``unit`` moves ``burst``
words to ``target``, posting its request ``idle`` cycles in" -- and a
:class:`DirectedSequence` feeds each master exactly its own goals, in
plan order, with per-goal randomization (address offset, payload)
derived from ``(seed, goal_index)`` so a directed scenario is as
reproducible as a constrained-random one and the regression digest
stays worker-count invariant.

:class:`DirectedClosureLoop` is the driving loop: plan goals for the
current residue, run them, fold the transitions the runs *actually*
exercised back into the residue, and re-plan until the residue stops
shrinking (dry) or the round budget is spent.  Achievement is measured,
never assumed -- the runner reconstructs each scenario's observable ASM
call stream and :func:`~repro.explorer.goal_planner.walk_fsm_events`
walks it on the FSM, so a plan the simulation could not realize simply
stays in the residue.

Goal lowering is model-specific (the coarse action vocabulary and the
arbitration discipline differ per design); the per-model entry points
live next to the drivers in ``repro.models.*.scenario`` and are
dispatched by :func:`lower_path_for_model`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence as Seq, Tuple

from .random_ import ScenarioRng
from .sequences import Sequence, SequenceItem, StimulusContext


@dataclass(frozen=True)
class TransactionGoal:
    """One directed transaction: the unit that must issue it, where it
    must go, and how its request is timed relative to the plan."""

    unit: int                 # master index that must drive the goal
    target: int               # slave/target index
    is_write: bool
    burst: int
    #: cycles the unit idles before posting this goal's request --
    #: the lowering's lever over request interleavings
    idle: int = 0

    def describe(self) -> str:
        """One-line human form, e.g. ``master0:W target1 x2 idle=3``."""
        direction = "W" if self.is_write else "R"
        return (
            f"master{self.unit}:{direction} target{self.target} "
            f"x{self.burst} idle={self.idle}"
        )

    def to_json(self) -> dict:
        """Goal wire form: plain JSON scalars, carried in
        :class:`~repro.scenarios.regression.ScenarioSpec.goals` so
        directed shards cross host boundaries like random ones."""
        return {
            "unit": self.unit,
            "target": self.target,
            "is_write": self.is_write,
            "burst": self.burst,
            "idle": self.idle,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "TransactionGoal":
        """Rebuild a goal from its :meth:`to_json` form (lossless)."""
        return cls(
            unit=doc["unit"],
            target=doc["target"],
            is_write=doc["is_write"],
            burst=doc["burst"],
            idle=doc.get("idle", 0),
        )


class DirectedSequence(Sequence):
    """Plays an ordered goal list; each driving unit sees its own goals.

    The scenario systems hand every master ``sequence.for_unit(index)``,
    so one :class:`DirectedSequence` carries the whole plan and each
    master pulls only the goals addressed to it -- in global plan order,
    with the per-goal stream derived from the *global* goal index under
    the master's own ``rng``.  Randomization is therefore a function of
    ``(seed, unit, goal_index)``: stable for a fixed plan, but
    re-attributing a goal to a different unit draws a fresh stream.
    """

    name = "directed"

    def __init__(
        self, goals: Seq[TransactionGoal], unit: Optional[int] = None
    ):
        self.goals = tuple(goals)
        self.unit = unit

    def for_unit(self, unit: int) -> "DirectedSequence":
        """This plan narrowed to one master's goals (the driver seam)."""
        return DirectedSequence(self.goals, unit=unit)

    def items(
        self, rng: ScenarioRng, ctx: StimulusContext
    ) -> Iterator[SequenceItem]:
        """Yield the unit's goals, in plan order, with per-goal
        ``(seed, goal_index)``-derived address/payload randomization."""
        for index, goal in enumerate(self.goals):
            if self.unit is not None and goal.unit != self.unit:
                continue
            stream = rng.derive(f"goal{index}")
            burst = ctx.clamp_burst(goal.burst)
            offset = stream.ranged_int(0, max(ctx.address_span - burst, 0))
            payload = (
                stream.payload(burst, ctx.payload_bits) if goal.is_write else ()
            )
            yield SequenceItem(
                target=goal.target,
                is_write=goal.is_write,
                burst=burst,
                address_offset=offset,
                payload=payload,
                idle=max(goal.idle, 0),
            )


def lower_path_for_model(
    model: str, calls: Seq, topology: Tuple[int, ...]
) -> Optional[List[TransactionGoal]]:
    """Dispatch a planned FSM path to the model's goal lowering.

    Returns None when the path contains actions the model's drivers
    cannot realize at transaction level (e.g. PCI target-initiated
    STOP#) -- the planner's edge then simply stays in the residue.
    """
    # imported lazily, mirroring regression._build_system: the model
    # packages import this module's types
    if model == "master_slave":
        from ..models.master_slave.scenario import lower_path_to_goals

        return lower_path_to_goals(calls, *topology)
    if model == "pci":
        from ..models.pci.scenario import lower_path_to_goals

        return lower_path_to_goals(calls, *topology)
    raise ValueError(f"unknown model {model!r}")


@dataclass
class ClosureRound:
    """One iteration of the directed-closure loop."""

    index: int
    goals_planned: int
    achieved_edges: Tuple[str, ...]
    residue_before: int
    residue_after: int

    def summary(self) -> str:
        """One line: goals planned, edges closed, residue remaining."""
        return (
            f"round {self.index}: {self.goals_planned} goal(s) -> "
            f"{len(self.achieved_edges)} residue edge(s) closed, "
            f"{self.residue_after} remain"
        )


class DirectedClosureLoop:
    """Plan -> run -> fold -> re-plan until dry or out of rounds.

    ``plan_round(edges, round_index)`` returns the round's planned
    goals (opaque to the loop; an empty plan ends it).
    ``run_round(planned, round_index)`` executes them and returns the
    residue edge labels the runs demonstrably exercised.  The loop owns
    the folding: achieved edges leave the residue, and a round that
    closes nothing new ends the loop (the plan is dry -- re-running it
    would reproduce the same outcome).
    """

    def __init__(
        self,
        residue_edges: Seq[str],
        plan_round: Callable[[Tuple[str, ...], int], Seq],
        run_round: Callable[[Seq, int], Seq[str]],
        max_rounds: int = 3,
    ):
        # preserve residue order (FSM order) while deduplicating
        self.residue: List[str] = list(dict.fromkeys(residue_edges))
        self.plan_round = plan_round
        self.run_round = run_round
        self.max_rounds = max(max_rounds, 1)
        self.rounds: List[ClosureRound] = []
        self.went_dry = False

    @property
    def remaining(self) -> Tuple[str, ...]:
        """Residue edges still unexercised, in FSM order."""
        return tuple(self.residue)

    @property
    def closed(self) -> int:
        """Total residue edges the loop's rounds demonstrably closed."""
        return sum(len(r.achieved_edges) for r in self.rounds)

    def run(self) -> List[ClosureRound]:
        """Drive plan/run/fold rounds until dry or out of budget."""
        for round_index in range(self.max_rounds):
            if not self.residue:
                break
            before = len(self.residue)
            planned = self.plan_round(tuple(self.residue), round_index)
            if not planned:
                self.went_dry = True
                break
            achieved = set(self.run_round(planned, round_index))
            achieved &= set(self.residue)
            self.residue = [e for e in self.residue if e not in achieved]
            self.rounds.append(
                ClosureRound(
                    index=round_index,
                    goals_planned=len(planned),
                    achieved_edges=tuple(sorted(achieved)),
                    residue_before=before,
                    residue_after=len(self.residue),
                )
            )
            if not achieved:
                self.went_dry = True
                break
        return self.rounds

    def summary(self) -> str:
        """Per-round lines plus the remaining-residue tail."""
        lines = [r.summary() for r in self.rounds]
        tail = f"{len(self.residue)} residue edge(s) remain"
        if self.went_dry:
            tail += " (closure went dry)"
        lines.append(tail)
        return "\n".join(lines)
