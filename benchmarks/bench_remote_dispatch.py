"""Remote dispatch benchmarks: work-stealing rebalance + HTTP transport.

Two entries in the BENCH trajectory:

* ``test_work_stealing_rebalance`` -- the scheduler claim, measured:
  the same spec list over one deliberately slowed host and one fast
  host, static schedule vs work-stealing.  Static round-robin pins
  half the shards to the slow host so wall clock is bounded by it;
  stealing lets the fast host drain the queue tail.  The benchmark
  times the stealing run and asserts it beats the static run recorded
  in ``extra_info``.
* ``test_http_dispatch_round_trip`` -- the network tier's overhead:
  a sharded regression POSTed to two in-process worker daemons through
  :class:`HttpHost`, digest-gated against serial.

``REPRO_FULL=1`` scales the workload up, like the other harnesses.
"""

import time

import pytest

from repro.dispatch import HttpHost, InProcessHost, ShardDispatcher
from repro.dispatch.worker import start_worker
from repro.scenarios.regression import RegressionRunner, build_specs
from repro.workbench import SerialEngine

from common import FULL_RUN

#: Bounded by default so CI stays fast; REPRO_FULL=1 scales up.
SCENARIOS = 24 if FULL_RUN else 12
CYCLES = 300 if FULL_RUN else 150
SHARDS = 6
#: Per-shard delay injected into the slow host.  Static assignment
#: gives it SHARDS/2 shards (>= 3x this delay of dead time on the
#: critical path); stealing should leave it 1-2.
SLOW_DELAY = 0.4


class _SlowHost:
    """In-process host with a fixed per-shard delay (runtime skew)."""

    def __init__(self, name, delay):
        self.name = name
        self.delay = delay
        self._inner = InProcessHost(name)

    def run_shard(self, work):
        time.sleep(self.delay)
        return self._inner.run_shard(work)


def test_work_stealing_rebalance(benchmark):
    """Stealing must beat static assignment under a skewed host pool."""
    specs = build_specs(count=SCENARIOS, cycles=CYCLES)
    serial_digest = RegressionRunner(specs, engine=SerialEngine()).run().digest()

    def dispatch(schedule):
        hosts = [_SlowHost("slow", SLOW_DELAY), InProcessHost("fast")]
        return ShardDispatcher(
            specs, shards=SHARDS, hosts=hosts, schedule=schedule
        ).run()

    static_started = time.perf_counter()
    static_outcome = dispatch("static")
    static_wall = time.perf_counter() - static_started

    stealing_outcome = benchmark.pedantic(
        lambda: dispatch("stealing"), rounds=1, iterations=1
    )
    stealing_wall = stealing_outcome.report.wall_seconds

    assert static_outcome.report.digest() == serial_digest
    assert stealing_outcome.report.digest() == serial_digest
    # the rebalance win: the fast host stole the tail the static
    # schedule would have left queued behind the slow host
    assert stealing_wall < static_wall, (
        f"stealing {stealing_wall:.2f}s did not beat static {static_wall:.2f}s"
    )
    loads = stealing_outcome.host_loads()
    assert loads["fast"] > SHARDS // 2, loads
    benchmark.extra_info.update(
        {
            "digest": serial_digest,
            "static_wall_seconds": round(static_wall, 3),
            "stealing_wall_seconds": round(stealing_wall, 3),
            "speedup": round(static_wall / stealing_wall, 2),
            "static_loads": static_outcome.host_loads(),
            "stealing_loads": loads,
        }
    )
    print(
        f"\nstatic {static_wall:.2f}s -> stealing {stealing_wall:.2f}s "
        f"({static_wall / stealing_wall:.1f}x) loads {loads}"
    )


def test_http_dispatch_round_trip(benchmark):
    """Sharded regression through two HTTP worker daemons, digest-gated."""
    specs = build_specs(count=SCENARIOS, cycles=CYCLES)
    serial_digest = RegressionRunner(specs, engine=SerialEngine()).run().digest()
    workers = [start_worker(), start_worker()]
    try:
        def run():
            hosts = [HttpHost(w.address) for w in workers]
            return ShardDispatcher(specs, shards=4, hosts=hosts).run()

        outcome = benchmark.pedantic(run, rounds=1, iterations=1)
        report = outcome.report
        assert report.ok, report.summary()
        assert report.digest() == serial_digest
        assert outcome.retries == 0
        benchmark.extra_info.update(
            {
                "digest": report.digest(),
                "scenarios": len(report.verdicts),
                "txn_per_second": round(report.throughput),
                "hosts": list(outcome.host_loads()),
            }
        )
        print(f"\n{report.summary()}")
    finally:
        for worker in workers:
            worker.stop()
