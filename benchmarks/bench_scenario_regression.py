"""Scenario-regression throughput: scoreboarded transactions per second.

The ROADMAP's production lens on the paper's Section 4.3 claim: not
just "simulation is fast" but "N seeded, scoreboard-checked scenarios
per second across worker processes".  Measures

* single-process scoreboard overhead (scenario run vs run + check),
* multiprocessing scaling of the regression runner (1 vs N workers),
* determinism (the report digest must not depend on the worker count).
"""

import multiprocessing

import pytest

from repro.models.master_slave.scenario import MsScenarioSystem
from repro.scenarios import build_specs, sequence_for_profile
from repro.scenarios.regression import RegressionRunner

from common import FULL_RUN

#: Bounded by default so CI stays fast; REPRO_FULL=1 scales up.
SCENARIOS = 200 if FULL_RUN else 48
CYCLES = 600 if FULL_RUN else 250
WORKERS = min(multiprocessing.cpu_count(), 8 if FULL_RUN else 4)


def test_scoreboard_overhead(benchmark):
    """Scoreboard cost on top of one simulated scenario."""
    system = MsScenarioSystem(1, 2, 2, sequence_for_profile("default"), seed=2005)
    system.run_cycles(CYCLES)
    transactions = len(system.records())

    report = benchmark(system.check)
    assert report.ok
    benchmark.extra_info.update(
        {
            "transactions": transactions,
            "replayed_calls": report.replayed_calls,
            "words_checked": report.words_checked,
        }
    )


# fixed ids: WORKERS is machine-dependent and the benchmark names feed
# the committed baseline gate (benchmarks/check_baseline.py)
@pytest.mark.parametrize("workers", [1, WORKERS], ids=["serial", "fanned"])
def test_regression_throughput(benchmark, workers):
    """Checked transactions per wall second at 1 vs N workers."""
    specs = build_specs(count=SCENARIOS, cycles=CYCLES)

    def run():
        return RegressionRunner(specs, workers=workers).run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.ok, report.summary()
    benchmark.extra_info.update(
        {
            "workers": workers,
            "scenarios": len(report.verdicts),
            "transactions": report.transactions,
            "txn_per_second": round(report.throughput),
            "digest": report.digest(),
        }
    )
    print(f"\n{report.summary()}")


def test_digest_is_worker_count_invariant(benchmark):
    """Same specs, different fan-out: byte-identical digest."""
    specs = build_specs(count=12, cycles=150)

    def run():
        inline = RegressionRunner(specs, workers=1).run()
        fanned = RegressionRunner(specs, workers=WORKERS).run()
        return inline, fanned

    inline, fanned = benchmark.pedantic(run, rounds=1, iterations=1)
    assert inline.digest() == fanned.digest()
