"""Monitor overhead and kernel throughput benches (paper Section 4.3).

The paper's delta column shows "a very short time (few seconds) to
simulate million[s] of cycles" with the assertion monitors attached.
These benches quantify the monitor cost on this kernel:

* kernel throughput with 0 / few / many monitors,
* per-step cost of each monitor class (micro),
* the derivative SERE tracker on long random traces.
"""

import random

import pytest

from repro.abv import AbvHarness
from repro.psl import build_monitor, parse_formula, run_monitor
from repro.models.pci import PciSystemModel
from repro.models.pci.properties import (
    pci_invariant_properties,
    pci_safety_properties,
)

CYCLES = 10_000


def _run_with_monitor_count(count: int) -> float:
    system = PciSystemModel(2, 2, seed=7)
    directives = pci_safety_properties(2, 2)[:count]
    if directives:
        harness = AbvHarness(system.simulator, system.clock, system.letter)
        harness.add_monitors([build_monitor(d) for d in directives])
    system.run_cycles(CYCLES)
    return system.simulator.stats.wall_seconds


@pytest.mark.parametrize("monitors", [0, 4, 8, 16])
def test_monitor_count_overhead(benchmark, monitors):
    """Wall time per cycle as the attached monitor count grows."""
    seconds = benchmark.pedantic(
        _run_with_monitor_count, args=(monitors,), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {
            "monitors": monitors,
            "delta_ns_per_cycle": round(seconds * 1e9 / CYCLES, 1),
        }
    )
    print(f"\n{monitors} monitors: {seconds * 1e9 / CYCLES:.0f} ns/cycle")


MICRO_PROPS = {
    "boolean_invariant": "always (frame -> !bus_idle)",
    "suffix_implication": "always {req0} |=> {(!gnt0)[*0:8] ; gnt0}",
    "never_sere": "never {stop_any ; stop_any ; stop_any}",
    "edge_detect": "always (rose(gnt0) -> req0)",
}


@pytest.mark.parametrize("name", sorted(MICRO_PROPS))
def test_monitor_step_micro(benchmark, name):
    """Per-step cost of one monitor on a synthetic letter stream."""
    monitor = build_monitor(parse_formula(MICRO_PROPS[name]), name=name)
    rng = random.Random(13)
    letters = [
        {
            "frame": rng.random() < 0.5,
            "bus_idle": rng.random() < 0.4,
            "req0": rng.random() < 0.3,
            "gnt0": rng.random() < 0.6,
            "stop_any": rng.random() < 0.2,
        }
        for _ in range(2000)
    ]
    # make the invariant hold so the monitor never latches FAILS
    for letter in letters:
        if letter["frame"]:
            letter["bus_idle"] = False
        if letter["gnt0"] and not letter["req0"]:
            letter["gnt0"] = False
        letter["stop_any"] = False

    def run():
        monitor.reset()
        for letter in letters:
            monitor.step(letter)
        return monitor.cycle

    cycles = benchmark(run)
    assert cycles == len(letters) - 1
    if benchmark.stats:  # absent under --benchmark-disable
        benchmark.extra_info["ns_per_step"] = round(
            benchmark.stats["mean"] * 1e9 / len(letters), 1
        )


def test_replay_vs_incremental_cost(benchmark):
    """The incremental monitor's raison d'etre: the replay oracle is
    quadratic, the derivative monitor linear."""
    formula = parse_formula("always {req0} |=> {gnt0}")
    incremental = build_monitor(formula, name="inc")
    import warnings

    from repro.psl.monitor import ReplayMonitor

    # the replay oracle is interpreted-only and deliberately
    # constructed directly; silence the compile_properties() shim
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        replay = ReplayMonitor(formula, name="rp")
    rng = random.Random(3)
    letters = [
        {"req0": rng.random() < 0.3, "gnt0": True} for _ in range(400)
    ]

    def run():
        run_monitor(incremental, letters, stop_early=False)
        run_monitor(replay, letters, stop_early=False)
        return incremental.verdict(), replay.verdict()

    inc_verdict, rep_verdict = benchmark.pedantic(run, rounds=1, iterations=1)
    assert inc_verdict == rep_verdict
