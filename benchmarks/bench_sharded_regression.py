"""Shard-count scaling of the sharded regression dispatcher.

The third execution tier's entry in the BENCH trajectory: the same
seeded spec list dispatched over N ``python -m repro.scenarios
--shard`` subprocess hosts, measuring

* end-to-end dispatch wall time at 1 vs N shards (includes the
  per-shard interpreter start-up that a remote host would also pay),
* the determinism gate: the merged digest must be byte-identical to a
  serial in-process run at every shard count.

Numbers land in ``benchmark.extra_info`` next to the timings, like the
other harnesses; ``REPRO_FULL=1`` scales the workload up.
"""

import pytest

from repro.dispatch import InProcessHost, ShardDispatcher
from repro.scenarios.regression import RegressionRunner, build_specs
from repro.workbench import SerialEngine

from common import FULL_RUN

#: Bounded by default so CI stays fast; REPRO_FULL=1 scales up.
SCENARIOS = 48 if FULL_RUN else 12
CYCLES = 400 if FULL_RUN else 200
SHARD_COUNTS = (1, 3)


@pytest.mark.parametrize("shards", SHARD_COUNTS, ids=["s1", "s3"])
def test_sharded_dispatch_throughput(benchmark, shards):
    """Merged-report throughput across N subprocess shard hosts."""
    specs = build_specs(count=SCENARIOS, cycles=CYCLES)

    def run():
        return ShardDispatcher(specs, shards=shards).run()

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    report = outcome.report
    assert report.ok, report.summary()
    assert len(report.verdicts) == SCENARIOS
    assert outcome.retries == 0
    benchmark.extra_info.update(
        {
            "shards": shards,
            "scenarios": len(report.verdicts),
            "transactions": report.transactions,
            "txn_per_second": round(report.throughput),
            "digest": report.digest(),
            "plan": outcome.plan_fingerprint,
        }
    )
    print(f"\n{report.summary()}")


def test_sharded_digest_equals_serial(benchmark):
    """The equivalence gate, timed: serial vs 3 in-process shards."""
    specs = build_specs(count=8, cycles=150)

    def run():
        serial = RegressionRunner(specs, engine=SerialEngine()).run()
        sharded = ShardDispatcher(
            specs, shards=3, hosts=[InProcessHost(f"h{i}") for i in range(3)]
        ).run()
        return serial, sharded

    serial, sharded = benchmark.pedantic(run, rounds=1, iterations=1)
    assert serial.digest() == sharded.report.digest()
    benchmark.extra_info.update({"digest": serial.digest()})
