"""Ablation benches for the design choices DESIGN.md calls out.

1. **Violation filter** (paper Section 3.1): stopping the generation at
   the first ``P_eval and not P_value`` state produces a small
   counterexample fragment instead of the full bounded FSM -- "this
   technique minimizes radically the number of the state variables
   (the FSM size and its generation time)".
2. **State-variable selection** (Section 2.2.1): keying states on a
   subset of variables under-approximates but shrinks the FSM.
3. **Domain restriction** (rule R4): a wider burst domain inflates the
   candidate set and the FSM.
4. **Action-set granularity** (Section 2.2.1's "set of actions"):
   coarse transaction-level actions vs fine cycle-level actions.
5. **Search order**: BFS yields minimal counterexamples; DFS usually
   finds *a* violation with fewer visited states.
"""

import pytest

from repro.asm import Domain, Location
from repro.explorer import ExplorationConfig, SearchOrder, explore
from repro.psl import AssertionProperty, parse_formula
from repro.models.pci import (
    build_pci_model,
    pci_coarse_actions,
    pci_domains,
    pci_init_call,
    pci_letter_from_model,
)
from repro.models.pci.properties import pci_invariant_properties


def _pci_config(masters=2, targets=2, **overrides):
    base = dict(
        domains=pci_domains(targets),
        init_action=pci_init_call(),
        actions=pci_coarse_actions(masters, targets),
        max_states=60_000,
        max_transitions=600_000,
    )
    base.update(overrides)
    return ExplorationConfig(**base)


def _broken_model_and_property(masters=2, targets=2):
    """A model with an injected mutual-exclusion bug for filter benches.

    The bug: a property that *cannot* hold -- two masters must never
    both have a pending request -- stands in for a design error so the
    explorer has something to find quickly.
    """
    model = build_pci_model(masters, targets)
    impossible = AssertionProperty(
        parse_formula("never (req0 && req1)"),
        extractor=pci_letter_from_model,
        name="injected_bug",
    )
    return model, impossible


class TestViolationFilterAblation:
    def test_stop_on_violation_prunes_radically(self, benchmark):
        def run():
            model, prop = _broken_model_and_property()
            stopped = explore(
                model, _pci_config(properties=[prop], stop_on_violation=True)
            )
            model2, prop2 = _broken_model_and_property()
            full = explore(
                model2, _pci_config(properties=[prop2], stop_on_violation=False)
            )
            return stopped, full

        stopped, full = benchmark.pedantic(run, rounds=1, iterations=1)
        assert not stopped.ok and not full.ok
        assert stopped.counterexample is not None
        # the filter's radical pruning:
        assert stopped.fsm.state_count() < full.fsm.state_count() / 5
        assert stopped.stats.elapsed_seconds < full.stats.elapsed_seconds
        benchmark.extra_info.update(
            {
                "stopped_nodes": stopped.fsm.state_count(),
                "full_nodes": full.fsm.state_count(),
                "stopped_seconds": round(stopped.stats.elapsed_seconds, 3),
                "full_seconds": round(full.stats.elapsed_seconds, 3),
                "counterexample_len": stopped.counterexample.length,
            }
        )
        print(
            f"\nfilter ablation: stop-on-violation {stopped.fsm.state_count()} "
            f"nodes vs full {full.fsm.state_count()} nodes"
        )


class TestStateVariableSelectionAblation:
    def test_projection_shrinks_fsm(self, benchmark):
        def run():
            model = build_pci_model(2, 2)
            full = explore(model, _pci_config())
            model2 = build_pci_model(2, 2)
            selected = [
                Location("arbiter", "m_ActiveMaster"),
                Location("arbiter", "m_gnt"),
                Location("bus", "m_owner"),
                Location("master0", "m_state"),
                Location("master1", "m_state"),
            ]
            projected = explore(
                model2, _pci_config(state_variables=selected)
            )
            return full, projected

        full, projected = benchmark.pedantic(run, rounds=1, iterations=1)
        assert projected.fsm.state_count() < full.fsm.state_count()
        benchmark.extra_info.update(
            {
                "full_nodes": full.fsm.state_count(),
                "projected_nodes": projected.fsm.state_count(),
            }
        )
        print(
            f"\nstate-var selection: {full.fsm.state_count()} -> "
            f"{projected.fsm.state_count()} nodes"
        )


class TestDomainRestrictionAblation:
    def test_wider_burst_domain_inflates_fsm(self, benchmark):
        def run():
            model = build_pci_model(2, 1)
            narrow = dict(pci_domains(1))
            narrow["start_transaction.burst"] = Domain.int_range("burst", 1, 1)
            small = explore(model, _pci_config(masters=2, targets=1, domains=narrow))
            model2 = build_pci_model(2, 1)
            wide = dict(pci_domains(1))
            wide["start_transaction.burst"] = Domain.int_range("burst", 1, 3)
            big = explore(model2, _pci_config(masters=2, targets=1, domains=wide))
            return small, big

        small, big = benchmark.pedantic(run, rounds=1, iterations=1)
        assert small.fsm.transition_count() < big.fsm.transition_count()
        benchmark.extra_info.update(
            {
                "narrow_transitions": small.fsm.transition_count(),
                "wide_transitions": big.fsm.transition_count(),
            }
        )
        print(
            f"\nR4 domains: burst 1..1 -> {small.fsm.transition_count()} trans, "
            f"burst 1..3 -> {big.fsm.transition_count()} trans"
        )


class TestActionGranularityAblation:
    def test_fine_actions_explode_state_count(self, benchmark):
        def run():
            model = build_pci_model(1, 2)
            coarse = explore(model, _pci_config(masters=1, targets=2))
            model2 = build_pci_model(1, 2)
            fine = explore(
                model2, _pci_config(masters=1, targets=2, actions=None)
            )
            return coarse, fine

        coarse, fine = benchmark.pedantic(run, rounds=1, iterations=1)
        assert fine.fsm.state_count() > coarse.fsm.state_count()
        benchmark.extra_info.update(
            {
                "coarse_nodes": coarse.fsm.state_count(),
                "fine_nodes": fine.fsm.state_count(),
            }
        )
        print(
            f"\ngranularity: coarse {coarse.fsm.state_count()} vs fine "
            f"{fine.fsm.state_count()} nodes"
        )


class TestSearchOrderAblation:
    def test_bfs_counterexample_is_no_longer_than_dfs(self, benchmark):
        def run():
            model, prop = _broken_model_and_property()
            bfs = explore(
                model,
                _pci_config(
                    properties=[prop], search_order=SearchOrder.BFS
                ),
            )
            model2, prop2 = _broken_model_and_property()
            dfs = explore(
                model2,
                _pci_config(
                    properties=[prop2], search_order=SearchOrder.DFS
                ),
            )
            return bfs, dfs

        bfs, dfs = benchmark.pedantic(run, rounds=1, iterations=1)
        assert bfs.counterexample is not None and dfs.counterexample is not None
        assert bfs.counterexample.length <= dfs.counterexample.length
        benchmark.extra_info.update(
            {
                "bfs_cex_len": bfs.counterexample.length,
                "dfs_cex_len": dfs.counterexample.length,
                "bfs_states": bfs.fsm.state_count(),
                "dfs_states": dfs.fsm.state_count(),
            }
        )
        print(
            f"\nsearch order: BFS cex length {bfs.counterexample.length}, "
            f"DFS cex length {dfs.counterexample.length}"
        )
