"""Coordinator-tier benchmarks: warm-submit latency + spec-cache wins.

Two entries in the BENCH trajectory:

* ``test_warm_submit_latency`` -- the result store's claim, measured:
  the same job submitted twice against a live coordinator fleet.  The
  cold run dispatches shards over HTTP workers; the warm run must be
  answered from the persistent store without touching a worker, so its
  latency is pure submit/poll round-trip and far below the cold wall.
* ``test_spec_cache_bytes_saved`` -- the by-reference shard protocol:
  a multi-shard job ships the spec list to each worker once, then
  every further shard request is a fingerprint reference.  The
  benchmark asserts the bytes saved exceed the bytes shipped once the
  shard count outgrows the worker count.

``REPRO_FULL=1`` scales the workload up, like the other harnesses.
"""

import time

import pytest

from repro.coordinator import CoordinatorClient, start_coordinator
from repro.dispatch.worker import start_worker
from repro.scenarios.regression import RegressionRunner, build_specs
from repro.workbench import SerialEngine

from common import FULL_RUN

#: Bounded by default so CI stays fast; REPRO_FULL=1 scales up.
SCENARIOS = 24 if FULL_RUN else 12
CYCLES = 300 if FULL_RUN else 150


@pytest.fixture()
def fleet(tmp_path):
    """One coordinator + two self-registering workers, torn down after."""
    coordinator = start_coordinator(store_path=str(tmp_path))
    workers = [
        start_worker(coordinator=coordinator.url, heartbeat=0.2)
        for _ in range(2)
    ]
    client = CoordinatorClient(coordinator.url, timeout=300)
    deadline = time.monotonic() + 10
    while len(client.status()["workers"]) < 2:
        assert time.monotonic() < deadline, "workers never registered"
        time.sleep(0.05)
    yield client
    for worker in workers:
        worker.stop()
    coordinator.stop()


def test_warm_submit_latency(benchmark, fleet):
    """A repeat submission must come from the store, not the fleet."""
    specs = build_specs(count=SCENARIOS, cycles=CYCLES)
    serial_digest = RegressionRunner(specs, engine=SerialEngine()).run().digest()

    cold_started = time.perf_counter()
    cold_report, cold_job = fleet.run(specs)
    cold_wall = time.perf_counter() - cold_started
    assert cold_report.digest() == serial_digest
    assert cold_job["from_cache"] is False

    walls = []

    def warm():
        started = time.perf_counter()
        result = fleet.run(specs)
        walls.append(time.perf_counter() - started)
        return result

    # self-timed so --benchmark-disable smoke runs keep the assertions
    warm_report, warm_job = benchmark.pedantic(warm, rounds=1, iterations=1)
    warm_wall = walls[-1]

    assert warm_report.digest() == serial_digest
    assert warm_job["from_cache"] is True
    # the store answered: no new dispatch, and orders of magnitude
    # under the cold run (pure HTTP round trips, no scenarios run)
    assert warm_wall < cold_wall, (
        f"warm {warm_wall:.3f}s did not beat cold {cold_wall:.3f}s"
    )
    benchmark.extra_info.update(
        {
            "digest": serial_digest,
            "cold_wall_seconds": round(cold_wall, 3),
            "warm_wall_seconds": round(warm_wall, 4),
            "speedup": round(cold_wall / max(warm_wall, 1e-9), 1),
            "cold_shards": cold_job["dispatch"]["shards"],
        }
    )
    print(
        f"\ncold {cold_wall:.2f}s -> warm {warm_wall:.3f}s "
        f"({cold_wall / max(warm_wall, 1e-9):.0f}x, from the result store)"
    )


def test_spec_cache_bytes_saved(benchmark, fleet):
    """By-reference shards: each worker downloads the list once."""
    # a different seed so the warm-latency store entry cannot answer
    specs = build_specs(count=SCENARIOS, cycles=CYCLES, base_seed=4242)
    serial_digest = RegressionRunner(specs, engine=SerialEngine()).run().digest()

    report, job = benchmark.pedantic(
        lambda: fleet.run(specs), rounds=1, iterations=1
    )
    assert report.digest() == serial_digest
    saved = job["dispatch"]["spec_cache_bytes_saved"]
    shards = job["dispatch"]["shards"]
    # with shards > workers, at least one worker served a second shard
    # purely by reference -- the cache must have saved real bytes
    assert shards >= 2
    assert saved > 0, job["dispatch"]
    benchmark.extra_info.update(
        {
            "digest": serial_digest,
            "shards": shards,
            "bytes_saved": saved,
        }
    )
    print(f"\n{shards} shards, {saved} spec-list bytes never re-shipped")
