"""Compiled-monitor engine benches: compile cost, step throughput, fast path.

Quantifies what the table-driven engine buys over the derivative
interpreter (see ``docs/compiled-monitors.md``):

* cold vs warm property-compilation cost (the process-wide plan and
  automaton caches should make every scenario after the first free),
* per-cycle stepping cost of both engines over the same trace,
* the kernel fast-path ratio on a plain scenario (how many simulated
  instants take the merged-phase single-driver path).
"""

import random

import pytest

from repro.models.pci.properties import pci_safety_properties
from repro.psl import Verdict, compile_properties
from repro.psl.compiled import clear_compile_caches

CYCLES = 2_000
SUITE = pci_safety_properties(2, 2)


def _random_trace(directives, cycles, seed=2005):
    monitors = compile_properties(directives)
    names = sorted(set().union(*(m.variables() for m in monitors)))
    rng = random.Random(seed)
    return [{n: rng.random() < 0.5 for n in names} for _ in range(cycles)]


def test_compile_cold(benchmark):
    """Cold-cache compile of the full PCI safety suite."""

    def compile_cold():
        clear_compile_caches()
        return compile_properties(SUITE)

    monitors = benchmark(compile_cold)
    benchmark.extra_info["properties"] = len(monitors)


def test_compile_warm(benchmark):
    """Warm-cache compile: what every scenario after the first pays."""
    compile_properties(SUITE)  # prime
    monitors = benchmark(lambda: compile_properties(SUITE))
    benchmark.extra_info["properties"] = len(monitors)


@pytest.mark.parametrize("engine", ["compiled", "interpreted"])
def test_monitor_step_throughput(benchmark, engine):
    """Per-cycle stepping cost of one engine over a shared random trace."""
    trace = _random_trace(SUITE, CYCLES)
    monitors = compile_properties(SUITE, engine=engine)

    def run():
        for monitor in monitors:
            monitor.reset()
        for letter in trace:
            for monitor in monitors:
                monitor.step(letter)
        return [monitor.verdict() for monitor in monitors]

    verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "engine": engine,
            "cycles": CYCLES,
            "monitors": len(monitors),
            "failures": sum(v is Verdict.FAILS for v in verdicts),
        }
    )


def test_kernel_fast_path_ratio(benchmark):
    """Fraction of simulated instants on the merged-phase fast path."""
    from repro.models.master_slave.scenario import MsScenarioSystem
    from repro.scenarios import sequence_for_profile

    def run():
        system = MsScenarioSystem(
            1, 2, 2, sequence_for_profile("default"), seed=2005
        )
        system.run_cycles(400)
        return system.simulator.stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    total = stats.fast_path_instants + stats.full_path_instants
    benchmark.extra_info.update(
        {
            "fast_path_instants": stats.fast_path_instants,
            "full_path_instants": stats.full_path_instants,
            "fast_path_ratio": round(stats.fast_path_instants / max(total, 1), 3),
        }
    )
    assert stats.fast_path_instants > stats.full_path_instants
