"""Directed residue closure vs profile re-biasing, at the same budget.

The both-ways formal<->simulation loop's entry in the BENCH trajectory:

* wall time of a full ``Workbench.close_coverage`` session on the
  Master/Slave case study (explore + plan + directed scenarios + the
  coverage fold-back),
* the headline comparison in ``extra_info``: FSM residue transitions
  exercised by directed goals vs by PR 2's residue-biased
  constrained-random regression at the same per-scenario budget.

Numbers land in ``benchmark.extra_info`` next to the timings, like the
other harnesses; ``REPRO_FULL=1`` scales the workload up.
"""

from repro.explorer.goal_planner import walk_fsm_events
from repro.scenarios.regression import RegressionRunner, build_specs
from repro.workbench import SerialEngine, Workbench

from common import FULL_RUN

#: Bounded by default so CI stays fast; REPRO_FULL=1 scales up.
CYCLES = 400 if FULL_RUN else 140
BIAS_ROUNDS = 4
BIAS_SCENARIOS = 24 if FULL_RUN else 12


def _biased_coverage(fsm) -> set:
    """FSM edges 4 rounds of residue-biased regression exercise."""
    covered: set = set()
    for round_index in range(BIAS_ROUNDS):
        specs = [
            spec
            for spec in build_specs(
                models=["master_slave"],
                count=BIAS_SCENARIOS,
                base_seed=2005 + 1000 * round_index,
                cycles=CYCLES,
                profiles=("bursty", "edges"),
                track_fsm=True,
            )
            if spec.topology == (1, 1, 2)
        ]
        report = RegressionRunner(specs, engine=SerialEngine()).run()
        for verdict in report.verdicts:
            covered.update(walk_fsm_events(fsm, verdict.fsm_events).exercised)
    return covered


def test_directed_closure_master_slave(benchmark):
    """End-to-end closure session, with the bias comparison attached."""

    def run():
        workbench = Workbench("master_slave")
        result = workbench.close_coverage(rounds=2, cycles=CYCLES)
        return workbench, result

    workbench, result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ok, result.summary

    fsm = workbench._exploration.fsm
    biased = _biased_coverage(fsm)
    closed = set(result.data["closed_transitions"])
    beyond_bias = sorted(closed - biased)
    assert beyond_bias, "directed closure must beat re-biasing somewhere"
    benchmark.extra_info.update(
        {
            "residue_transitions": result.data["residue_before"][
                "uncovered_transitions"
            ],
            "closed_directed": len(closed),
            "covered_by_bias": len(biased),
            "closed_beyond_bias": len(beyond_bias),
            "remaining_formal_only": result.data["residue"][
                "uncovered_transitions"
            ],
            "digest": result.digest(),
        }
    )
    print(
        f"\ndirected closure: {len(closed)} closed "
        f"({len(beyond_bias)} beyond {BIAS_ROUNDS}-round bias re-weighting, "
        f"bias covered {len(biased)}); "
        f"{result.data['residue']['uncovered_transitions']} formal-only remain"
    )


def test_goal_planning_only(benchmark):
    """Planner cost in isolation: BFS + greedy dedup over the full
    residue (no scenarios run)."""
    from repro.explorer.goal_planner import GoalPlanner, residue_label

    workbench = Workbench("master_slave")
    workbench.explore()
    fsm = workbench._exploration.fsm
    uncovered = [residue_label(t) for t in fsm.transitions]

    plans = benchmark(lambda: GoalPlanner(fsm).plan(uncovered))
    assert plans
    benchmark.extra_info.update(
        {
            "uncovered_edges": len(uncovered),
            "plans": len(plans),
            "longest_plan": max(len(p.transitions) for p in plans),
        }
    )
