"""CI benchmark-regression gate.

Compares a pytest-benchmark JSON run against the committed baseline
(``benchmarks/baseline.json``) and fails when any benchmark's mean
exceeds its baseline mean by more than the tolerance factor::

    python benchmarks/check_baseline.py BENCH_workbench.json \
        benchmarks/baseline.json --tolerance 2.0

The baseline records a *generous envelope*, not a fastest-ever number:
CI machines vary, so the gate is meant to catch order-of-magnitude
regressions (an accidentally quadratic hot path, a serialized pool),
never to flake on scheduler noise.  Regenerate it after an intentional
perf change with ``--update``.

Exit status: 0 when every baseline benchmark is present and within
tolerance, 1 otherwise.  Benchmarks present in the run but absent from
the baseline are reported as new (not failures) so adding a benchmark
and refreshing the baseline can land in the same PR.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict


def load_means(path: str) -> Dict[str, float]:
    """name -> mean seconds, from either a pytest-benchmark run file or
    a previously written baseline file (same shape)."""
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    return {
        bench["name"]: bench["stats"]["mean"] for bench in doc["benchmarks"]
    }


def write_baseline(path: str, means: Dict[str, float], source: str) -> None:
    doc = {
        "note": (
            "Generous benchmark envelope for the CI regression gate "
            "(see benchmarks/check_baseline.py). Means are seconds."
        ),
        "source": source,
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}}
            for name, mean in sorted(means.items())
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("run", help="pytest-benchmark JSON output to check")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="fail when run mean > baseline mean * tolerance (default 2.0)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )
    options = parser.parse_args(argv)

    run_means = load_means(options.run)
    if options.update:
        write_baseline(options.baseline, run_means, source=options.run)
        print(f"baseline refreshed from {options.run} "
              f"({len(run_means)} benchmarks)")
        return 0

    baseline_means = load_means(options.baseline)
    failures = []
    width = max((len(n) for n in run_means | baseline_means), default=4)
    print(f"{'benchmark':<{width}}  {'baseline':>10}  {'run':>10}  ratio")
    for name in sorted(baseline_means):
        base = baseline_means[name]
        if name not in run_means:
            failures.append(f"{name}: missing from run (coverage lost?)")
            print(f"{name:<{width}}  {base:>9.3f}s  {'MISSING':>10}")
            continue
        mean = run_means[name]
        ratio = mean / base if base > 0 else float("inf")
        flag = ""
        if ratio > options.tolerance:
            failures.append(
                f"{name}: mean {mean:.3f}s exceeds baseline "
                f"{base:.3f}s x {options.tolerance:g} (ratio {ratio:.2f})"
            )
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {base:>9.3f}s  {mean:>9.3f}s  {ratio:5.2f}{flag}")
    for name in sorted(set(run_means) - set(baseline_means)):
        print(f"{name:<{width}}  {'(new)':>10}  {run_means[name]:>9.3f}s  "
              f"-- not in baseline; refresh with --update")

    if failures:
        print("\nbenchmark regression gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nbenchmark regression gate OK "
          f"({len(baseline_means)} benchmarks within {options.tolerance:g}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
