"""Static-analyzer benches: per-model analysis cost, witness overhead.

The ``analyze`` stage runs before anything is simulated, so its cost
bounds how early the gate can sit in a flow.  Three numbers:

* full static analysis (race detection + property lint) of one
  shipped model,
* the same with the witnessed kernel cross-check folded in (the
  witness forces the kernel off the merged fast path, so this is the
  expensive variant),
* the repo lint gate over ``src/repro`` (what CI pays per push).
"""

import sys
from pathlib import Path

from repro.analyze import analyze_duv, analyze_models
from repro.workbench import default_registry

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT) not in sys.path:
    sys.path.insert(0, str(REPO_ROOT))

from tools.lint import run_checks  # noqa: E402  (path bootstrap above)

WITNESS_CYCLES = 100


def test_analyze_static_pci(benchmark):
    """Static race + property analysis of the PCI model."""
    duv = default_registry().get("pci")
    report = benchmark(lambda: analyze_duv(duv))
    assert report.ok
    benchmark.extra_info["findings"] = len(report.findings)


def test_analyze_witnessed_pci(benchmark):
    """The same analysis with a witnessed kernel run cross-checking it."""
    duv = default_registry().get("pci")
    report = benchmark(
        lambda: analyze_duv(duv, witness=True, witness_cycles=WITNESS_CYCLES)
    )
    assert report.ok
    benchmark.extra_info["witness_deltas"] = report.facts["witness"]["deltas"]


def test_analyze_all_models(benchmark):
    """Full ``python -m repro analyze`` equivalent: every model, merged."""
    report = benchmark(analyze_models)
    assert report.ok
    benchmark.extra_info["findings"] = len(report.findings)


def test_repo_lint_gate(benchmark):
    """``python -m tools.lint`` equivalent: all four checks over src."""
    report = benchmark(run_checks)
    assert report.ok
    benchmark.extra_info["rules"] = len(report.facts["checks"])
