"""Shared machinery for the benchmark harness.

Every benchmark regenerates one row (or series) of the paper's
evaluation: Table 1 (PCI), Table 2 (Master/Slave), or one of the
design-choice ablations DESIGN.md calls out.  Numbers land in
``benchmark.extra_info`` so ``pytest benchmarks/ --benchmark-only``
reports them next to the timings, and each harness prints a
paper-style row for eyeballing with ``-s``.

Set ``REPRO_FULL=1`` to run the largest configurations uncapped (the
paper's (3,3) PCI row took their 2005 machine 6836 s; ours takes a few
minutes -- bounded by default so CI stays fast).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.abv import AbvHarness
from repro.explorer import ExplorationConfig, ExplorationResult, explore
from repro.psl import AssertionProperty, build_monitor
from repro.models.master_slave import (
    MsSystemModel,
    build_master_slave_model,
    master_slave_domains,
    master_slave_init_call,
    ms_coarse_actions,
    ms_invariant_properties,
    ms_letter_from_model,
)
from repro.models.pci import (
    PciSystemModel,
    build_pci_model,
    pci_coarse_actions,
    pci_domains,
    pci_init_call,
    pci_letter_from_model,
)
from repro.models.pci.properties import (
    pci_invariant_properties,
    pci_safety_properties,
)
from repro.models.master_slave.properties import ms_timed_properties

FULL_RUN = os.environ.get("REPRO_FULL", "") == "1"

#: Exploration caps for the default (CI-friendly) benchmark run.
DEFAULT_MAX_STATES = 200_000 if FULL_RUN else 40_000
DEFAULT_MAX_TRANSITIONS = 2_000_000 if FULL_RUN else 400_000

#: Simulated cycles for the delta (ns/cycle) measurements.
SIM_CYCLES = 200_000 if FULL_RUN else 20_000


@dataclass
class McRow:
    """One model-checking row: the paper's CPU time / nodes / transitions."""

    label: str
    seconds: float
    nodes: int
    transitions: int
    completed: bool
    ok: bool

    def __str__(self) -> str:
        flag = "" if self.completed else " (bounded)"
        return (
            f"{self.label:<16} {self.seconds:>9.2f}s {self.nodes:>8} nodes "
            f"{self.transitions:>9} trans{flag}"
        )


def pci_model_check(n_masters: int, n_targets: int) -> tuple[ExplorationResult, McRow]:
    """One Table 1 model-checking cell (coarse, paper-scale granularity)."""
    model = build_pci_model(n_masters, n_targets)
    properties = [
        AssertionProperty(d.prop, extractor=pci_letter_from_model, name=d.prop.name)
        for d in pci_invariant_properties(n_masters, n_targets)
    ]
    config = ExplorationConfig(
        domains=pci_domains(n_targets),
        init_action=pci_init_call(),
        actions=pci_coarse_actions(n_masters, n_targets),
        properties=properties,
        max_states=DEFAULT_MAX_STATES,
        max_transitions=DEFAULT_MAX_TRANSITIONS,
    )
    result = explore(model, config)
    row = McRow(
        label=f"PCI {n_masters}M/{n_targets}S",
        seconds=result.stats.elapsed_seconds,
        nodes=result.fsm.state_count(),
        transitions=result.fsm.transition_count(),
        completed=result.stats.completed,
        ok=result.ok,
    )
    return result, row


def ms_model_check(
    n_blocking: int, n_non_blocking: int, n_slaves: int
) -> tuple[ExplorationResult, McRow]:
    """One Table 2 model-checking cell."""
    n_masters = n_blocking + n_non_blocking
    model = build_master_slave_model(n_blocking, n_non_blocking, n_slaves)
    properties = [
        AssertionProperty(d.prop, extractor=ms_letter_from_model, name=d.prop.name)
        for d in ms_invariant_properties(n_masters, n_slaves)
    ]
    config = ExplorationConfig(
        domains=master_slave_domains(n_slaves),
        init_action=master_slave_init_call(),
        actions=ms_coarse_actions(n_masters),
        properties=properties,
        max_states=DEFAULT_MAX_STATES,
        max_transitions=DEFAULT_MAX_TRANSITIONS,
    )
    result = explore(model, config)
    row = McRow(
        label=f"MS {n_slaves}S/{n_blocking}B/{n_non_blocking}NB",
        seconds=result.stats.elapsed_seconds,
        nodes=result.fsm.state_count(),
        transitions=result.fsm.transition_count(),
        completed=result.stats.completed,
        ok=result.ok,
    )
    return result, row


@dataclass
class SimRow:
    """One simulation delta cell: average wall ns per simulated cycle."""

    label: str
    cycles: int
    wall_seconds: float
    assertions: int
    all_passing: bool

    @property
    def delta_ns(self) -> float:
        return self.wall_seconds * 1e9 / max(self.cycles, 1)

    def __str__(self) -> str:
        return (
            f"{self.label:<16} {self.cycles:>8} cycles "
            f"{self.wall_seconds:>7.2f}s  delta={self.delta_ns:>8.0f} ns/cycle "
            f"({self.assertions} monitors)"
        )


def pci_simulate(
    n_masters: int, n_targets: int, cycles: int = SIM_CYCLES, seed: int = 2005
) -> SimRow:
    """One Table 1 simulation cell: PCI with the full ABV suite."""
    system = PciSystemModel(n_masters, n_targets, seed=seed)
    harness = AbvHarness(system.simulator, system.clock, system.letter)
    monitors = [
        build_monitor(d) for d in pci_safety_properties(n_masters, n_targets)
    ]
    harness.add_monitors(monitors)
    system.run_cycles(cycles)
    harness.finish()
    return SimRow(
        label=f"PCI {n_masters}M/{n_targets}S",
        cycles=harness.cycles_observed,
        wall_seconds=system.simulator.stats.wall_seconds,
        assertions=len(monitors),
        all_passing=harness.all_passing,
    )


def ms_simulate(
    n_blocking: int,
    n_non_blocking: int,
    n_slaves: int,
    cycles: int = SIM_CYCLES,
    seed: int = 2005,
) -> SimRow:
    """One Table 2 simulation cell."""
    n_masters = n_blocking + n_non_blocking
    system = MsSystemModel(n_blocking, n_non_blocking, n_slaves, seed=seed)
    harness = AbvHarness(system.simulator, system.clock, system.letter)
    monitors = [
        build_monitor(d)
        for d in ms_invariant_properties(n_masters, n_slaves, include_handshake=False)
        + ms_timed_properties(n_masters, n_slaves, system.blocking_flags)
    ]
    harness.add_monitors(monitors)
    system.run_cycles(cycles)
    harness.finish()
    return SimRow(
        label=f"MS {n_slaves}S/{n_blocking}B/{n_non_blocking}NB",
        cycles=harness.cycles_observed,
        wall_seconds=system.simulator.stats.wall_seconds,
        assertions=len(monitors),
        all_passing=harness.all_passing,
    )


#: Table 1's (masters, slaves) configurations, in paper order.
TABLE1_CONFIGS: Sequence[tuple[int, int]] = (
    (1, 1), (1, 2), (3, 1), (2, 2), (2, 3), (3, 2), (3, 3),
)

#: Table 2's (slaves, blocking, non-blocking) configurations, paper order.
TABLE2_CONFIGS: Sequence[tuple[int, int, int]] = (
    (2, 1, 1), (2, 3, 3), (2, 3, 4), (2, 4, 4),
    (3, 1, 1), (3, 3, 3), (3, 3, 4), (3, 4, 4),
    (4, 1, 1), (4, 3, 3), (4, 3, 4), (4, 4, 4),
)

#: Paper-reported values for side-by-side display:
#: (masters, slaves) -> (cpu_s, nodes, transitions, delta_ns)
TABLE1_PAPER = {
    (1, 1): (2.31, 20, 25, 24.31),
    (1, 2): (2.93, 39, 53, 29.32),
    (3, 1): (26.01, 236, 341, 29.76),
    (2, 2): (26.84, 293, 449, 30.89),
    (2, 3): (101.37, 658, 1117, 32.74),
    (3, 2): (574.18, 1881, 3153, 34.03),
    (3, 3): (6836.01, 6346, 12097, 36.82),
}

#: (slaves, blocking, non_blocking) -> (cpu_s, nodes, transitions, delta_ns)
TABLE2_PAPER = {
    (2, 1, 1): (3.54, 14, 22, 27.04),
    (2, 3, 3): (142.32, 146, 531, 31.44),
    (2, 3, 4): (402.32, 276, 1174, 33.02),
    (2, 4, 4): (1192.57, 530, 2584, 35.41),
    (3, 1, 1): (4.32, 15, 27, 28.01),
    (3, 3, 3): (186.64, 147, 723, 36.85),
    (3, 3, 4): (518.73, 278, 1622, 38.82),
    (3, 4, 4): (1541.32, 535, 3606, 40.08),
    (4, 1, 1): (5.21, 17, 31, 29.92),
    (4, 3, 3): (214.46, 148, 915, 39.41),
    (4, 3, 4): (630.48, 280, 2070, 41.11),
    (4, 4, 4): (2002.54, 538, 4630, 43.25),
}
