"""Table 2 -- Master/Slave Bus: Model Checking and Simulation Results.

Regenerates the paper's Table 2 over (slaves, blocking masters,
non-blocking masters): model-checking CPU time, FSM nodes/transitions,
and simulation delta.  The shape targets: node counts dominated by the
master count (near-constant across slave counts), transition counts
growing with the slave count (the address domain), checking time
growing super-linearly, delta growing mildly.
"""

import pytest

from common import (
    SIM_CYCLES,
    TABLE2_CONFIGS,
    TABLE2_PAPER,
    ms_model_check,
    ms_simulate,
)


@pytest.mark.parametrize("slaves,blocking,non_blocking", TABLE2_CONFIGS)
def test_table2_model_checking(benchmark, slaves, blocking, non_blocking):
    """Columns 3-5: CPU time, FSM nodes, FSM transitions."""

    def run():
        return ms_model_check(blocking, non_blocking, slaves)

    result, row = benchmark.pedantic(run, rounds=1, iterations=1)
    paper = TABLE2_PAPER[(slaves, blocking, non_blocking)]
    benchmark.extra_info.update(
        {
            "nodes": row.nodes,
            "transitions": row.transitions,
            "mc_seconds": round(row.seconds, 3),
            "completed": row.completed,
            "paper_nodes": paper[1],
            "paper_transitions": paper[2],
            "paper_seconds": paper[0],
        }
    )
    assert row.ok, f"property violated in {row.label}"
    print(f"\n{row}   [paper: {paper[0]:.0f}s {paper[1]} nodes {paper[2]} trans]")


@pytest.mark.parametrize("slaves,blocking,non_blocking", TABLE2_CONFIGS)
def test_table2_simulation_delta(benchmark, slaves, blocking, non_blocking):
    """Last column: average simulation time per cycle (delta, ns)."""

    def run():
        return ms_simulate(blocking, non_blocking, slaves, cycles=SIM_CYCLES)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    paper = TABLE2_PAPER[(slaves, blocking, non_blocking)]
    benchmark.extra_info.update(
        {
            "cycles": row.cycles,
            "delta_ns_per_cycle": round(row.delta_ns, 1),
            "monitors": row.assertions,
            "paper_delta_ns": paper[3],
        }
    )
    assert row.all_passing, f"assertion failed in {row.label}"
    print(f"\n{row}   [paper delta: {paper[3]} ns/cycle]")


def test_table2_shape_nodes_track_masters_not_slaves(benchmark):
    """Nodes stay (nearly) flat across slave counts but explode with
    the master count -- the paper's 14/15/17 vs 146/.../538 pattern."""

    def run():
        flat = [ms_model_check(1, 1, s)[1] for s in (2, 3, 4)]
        steep = [ms_model_check(b, nb, 2)[1] for (b, nb) in ((1, 1), (3, 3), (4, 4))]
        return flat, steep

    flat, steep = benchmark.pedantic(run, rounds=1, iterations=1)
    flat_nodes = [r.nodes for r in flat]
    steep_nodes = [r.nodes for r in steep]
    # slave sweep: within 25% of each other
    assert max(flat_nodes) <= 1.25 * min(flat_nodes), flat_nodes
    # master sweep: at least x4 per step
    assert steep_nodes[1] / steep_nodes[0] > 4
    assert steep_nodes[2] / steep_nodes[1] > 2
    benchmark.extra_info["slave_sweep_nodes"] = flat_nodes
    benchmark.extra_info["master_sweep_nodes"] = steep_nodes


def test_table2_shape_transitions_track_slaves(benchmark):
    """Transitions grow with the slave count for a fixed master mix
    (paper: 22 -> 27 -> 31 for 1B/1NB)."""

    def run():
        return [ms_model_check(1, 1, s)[1] for s in (2, 3, 4)]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    transitions = [r.transitions for r in rows]
    assert transitions[0] < transitions[1] < transitions[2], transitions
    benchmark.extra_info["transition_series"] = transitions
