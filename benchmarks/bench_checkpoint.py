"""Checkpoint mechanics cost and the frontier-forked closure payoff.

Two rows for the BENCH trajectory:

* the mechanics: snapshot a half-run monitored scenario system, round
  trip it through the canonical wire form, restore it and run out the
  remaining cycles -- asserting the resumed verdict is byte-identical
  (transaction stream digest included) to the uninterrupted run it
  replaces,
* the payoff: ``close_coverage(frontier=True)`` on the Master/Slave
  case study against the same budget replayed from reset every round.
  Forked goals, simulated cycles saved, and the cumulative
  cycles-to-coverage comparison land in ``benchmark.extra_info``.
"""

import json
from dataclasses import replace

from repro.checkpoint import (
    Checkpoint,
    global_registry,
    reset_global_registry,
    snapshot_scenario_run,
)
from repro.scenarios.regression import ScenarioSpec, run_scenario
from repro.workbench import Workbench

from common import FULL_RUN

#: The mechanics spec: monitored Master/Slave, snapshot at half-run.
CYCLES = 240 if FULL_RUN else 120
SNAP_AT = CYCLES // 2

#: The closure regime the ROADMAP's acceptance criterion names: 6
#: rounds x 160 cycles, 6 from-reset goals per round (forked goals ride
#: on top with prorated budgets).
ROUNDS = 6
CLOSE_CYCLES = 160
MAX_GOALS = 6
#: Out of the 29 formal-only Master/Slave residue transitions.
TARGET_CLOSED = 23
#: Intermediate coverage point for the cycles-to-coverage comparison.
MIDPOINT = 17


def _spec(cycles):
    return ScenarioSpec(
        model="master_slave",
        seed=2005,
        topology=(2, 2, 2),
        profile="bursty",
        cycles=cycles,
        with_monitors=True,
    )


def test_snapshot_wire_restore_resume(benchmark):
    """The full mechanics loop, digest-gated against the fresh run."""
    fresh = run_scenario(_spec(CYCLES))

    def run():
        reset_global_registry()
        checkpoint = snapshot_scenario_run(_spec(SNAP_AT), SNAP_AT)
        wire = json.dumps(checkpoint.to_json(), sort_keys=True)
        parsed = Checkpoint.from_json(json.loads(wire))
        digest = global_registry().put(parsed)
        resumed = replace(
            _spec(CYCLES), resume_from=digest, checkpoint_at=None
        )
        return len(wire), run_scenario(resumed)

    wire_bytes, verdict = benchmark.pedantic(run, rounds=1, iterations=1)
    assert verdict.stream_digest == fresh.stream_digest
    assert verdict.scoreboard_digest == fresh.scoreboard_digest
    assert verdict.failed_assertions == fresh.failed_assertions
    benchmark.extra_info.update(
        {
            "cycles": CYCLES,
            "snapshot_at": SNAP_AT,
            "wire_bytes": wire_bytes,
            "stream_digest": verdict.stream_digest,
        }
    )
    print(
        f"\ncheckpoint mechanics: snapshot@{SNAP_AT} -> wire "
        f"({wire_bytes} bytes) -> restore -> {CYCLES} total cycles; "
        f"digest {verdict.stream_digest} == fresh run"
    )


def _close(frontier):
    workbench = Workbench("master_slave")
    workbench.explore()
    result = workbench.close_coverage(
        rounds=ROUNDS,
        cycles=CLOSE_CYCLES,
        max_goals=MAX_GOALS,
        frontier=frontier,
    )
    assert result.ok, result.summary
    return result.data


def _cycles_until(data, target):
    """Cumulative simulated cycles until ``target`` edges are closed."""
    closed_by_round = {r["round"]: r["edges_closed"] for r in data["rounds"]}
    cum_cycles = 0
    cum_closed = 0
    for entry in data["run"]:
        cum_cycles += entry["cycles_simulated"]
        cum_closed += closed_by_round.get(entry["round"], 0)
        if cum_closed >= target:
            return cum_cycles
    return None


def test_frontier_closure_master_slave(benchmark):
    """Directed closure with frontier forking, vs from-reset replay."""
    baseline = _close(frontier=False)

    data = benchmark.pedantic(
        lambda: _close(frontier=True), rounds=1, iterations=1
    )
    total = data["residue_before"]["uncovered_transitions"]
    assert data["frontier"] is True
    assert data["achieved"] >= baseline["achieved"]
    assert data["achieved"] >= TARGET_CLOSED, (
        f"frontier closure reached only {data['achieved']}/{total} "
        f"(target {TARGET_CLOSED})"
    )
    assert data["forked_goals"] >= 1
    assert data["cycles_saved"] > 0

    to_mid = _cycles_until(data, MIDPOINT)
    baseline_to_mid = _cycles_until(baseline, MIDPOINT)
    assert to_mid is not None and baseline_to_mid is not None
    assert to_mid < baseline_to_mid, (
        f"frontier forking should reach {MIDPOINT} closed in fewer "
        f"simulated cycles ({to_mid} vs {baseline_to_mid})"
    )
    benchmark.extra_info.update(
        {
            "residue_transitions": total,
            "closed_frontier": data["achieved"],
            "closed_from_reset": baseline["achieved"],
            "forked_goals": data["forked_goals"],
            "cycles_saved": data["cycles_saved"],
            "cycles_simulated": data["cycles_simulated"],
            "cycles_simulated_from_reset": baseline["cycles_simulated"],
            f"cycles_to_{MIDPOINT}_closed": to_mid,
            f"cycles_to_{MIDPOINT}_closed_from_reset": baseline_to_mid,
        }
    )
    print(
        f"\nfrontier closure: {data['achieved']}/{total} closed "
        f"(from reset: {baseline['achieved']}), "
        f"{data['forked_goals']} forked goals saved "
        f"{data['cycles_saved']} cycles; {MIDPOINT} closed after "
        f"{to_mid} simulated cycles vs {baseline_to_mid} from reset"
    )
