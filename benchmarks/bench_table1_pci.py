"""Table 1 -- PCI Bus: Model Checking and Simulation Results.

Regenerates every row of the paper's Table 1: model-checking CPU time,
FSM node and transition counts (per masters x slaves configuration),
and the simulation delta (average ns per cycle with the assertion
monitors attached).

Absolute numbers differ from the paper (their AsmL tester on a 2.4 GHz
Pentium IV vs this pure-Python explorer); the *shape* -- exponential
node/transition growth in the component count, super-linear checking
time, slow-growing delta -- is the reproduction target.
"""

import pytest

from common import (
    SIM_CYCLES,
    TABLE1_CONFIGS,
    TABLE1_PAPER,
    pci_model_check,
    pci_simulate,
)


@pytest.mark.parametrize("masters,slaves", TABLE1_CONFIGS)
def test_table1_model_checking(benchmark, masters, slaves):
    """Columns 3-5: CPU time, FSM nodes, FSM transitions."""

    def run():
        return pci_model_check(masters, slaves)

    result, row = benchmark.pedantic(run, rounds=1, iterations=1)
    paper = TABLE1_PAPER[(masters, slaves)]
    benchmark.extra_info.update(
        {
            "nodes": row.nodes,
            "transitions": row.transitions,
            "mc_seconds": round(row.seconds, 3),
            "completed": row.completed,
            "paper_nodes": paper[1],
            "paper_transitions": paper[2],
            "paper_seconds": paper[0],
        }
    )
    assert row.ok, f"property violated in {row.label}"
    print(f"\n{row}   [paper: {paper[0]:.0f}s {paper[1]} nodes {paper[2]} trans]")


@pytest.mark.parametrize("masters,slaves", TABLE1_CONFIGS)
def test_table1_simulation_delta(benchmark, masters, slaves):
    """Last column: average simulation time per cycle (delta, ns)."""

    def run():
        return pci_simulate(masters, slaves, cycles=SIM_CYCLES)

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    paper = TABLE1_PAPER[(masters, slaves)]
    benchmark.extra_info.update(
        {
            "cycles": row.cycles,
            "delta_ns_per_cycle": round(row.delta_ns, 1),
            "monitors": row.assertions,
            "paper_delta_ns": paper[3],
        }
    )
    assert row.all_passing, f"assertion failed in {row.label}"
    print(f"\n{row}   [paper delta: {paper[3]} ns/cycle]")


def test_table1_shape(benchmark):
    """The qualitative claims: nodes and time grow monotonically with
    the configuration size along the paper's row order."""

    def run():
        rows = [pci_model_check(m, s)[1] for (m, s) in ((1, 1), (2, 2), (3, 3))]
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    nodes = [r.nodes for r in rows]
    times = [r.seconds for r in rows]
    assert nodes[0] < nodes[1] < nodes[2], nodes
    assert times[0] < times[2], times
    # exponential-ish growth: each step multiplies nodes by > 2
    assert nodes[1] / nodes[0] > 2
    assert nodes[2] / nodes[1] > 2
    benchmark.extra_info["nodes_series"] = nodes
