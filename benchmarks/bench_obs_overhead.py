"""Observability overhead benches: the disabled path must be free.

The tracing + metrics layer (:mod:`repro.obs`) instruments the two
hottest loops in the repo -- ``Monitor.step`` and the kernel's delta
cycle -- behind a single ``OBS.enabled`` attribute check.  These
benches price that check and the enabled-path cost:

* per-step monitor cost with observability off vs fully on (micro),
* regression throughput with observability off (must track the plain
  ``test_regression_throughput[serial]`` bench within noise) vs on.

Run ids feed the committed baseline gate, so they are fixed strings.
"""

import random

import pytest

from repro.obs import runtime
from repro.psl import build_monitor, parse_formula
from repro.scenarios import build_specs
from repro.scenarios.regression import RegressionRunner

from common import FULL_RUN

SCENARIOS = 100 if FULL_RUN else 24
CYCLES = 400 if FULL_RUN else 200
STEPS = 5_000


@pytest.fixture
def observability(request):
    """Enable tracing + metrics for ``on`` params, guarantee off after."""
    if request.param == "on":
        runtime.enable_tracing()
        runtime.enable_metrics()
    yield request.param
    runtime.disable()


def _letter_stream():
    rng = random.Random(41)
    letters = []
    for _ in range(STEPS):
        req = rng.random() < 0.3
        letters.append({"req0": req, "gnt0": req or rng.random() < 0.5})
    return letters


@pytest.mark.parametrize("observability", ["off", "on"], indirect=True)
def test_monitor_step_obs(benchmark, observability):
    """Per-step monitor cost: the OBS.enabled guard plus timing when on."""
    monitor = build_monitor(
        parse_formula("always {req0} |=> {gnt0}"), name="bench"
    )
    letters = _letter_stream()

    def run():
        monitor.reset()
        for letter in letters:
            monitor.step(letter)
        return monitor.cycle

    cycles = benchmark(run)
    assert cycles == len(letters) - 1
    benchmark.extra_info["observability"] = observability
    if benchmark.stats:  # absent under --benchmark-disable
        benchmark.extra_info["ns_per_step"] = round(
            benchmark.stats["mean"] * 1e9 / STEPS, 1
        )


@pytest.mark.parametrize("observability", ["off", "on"], indirect=True)
def test_regression_obs(benchmark, observability):
    """Serial regression throughput with the obs layer off vs on."""
    specs = build_specs(count=SCENARIOS, cycles=CYCLES, with_monitors=True)

    def run():
        return RegressionRunner(specs, workers=1).run()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.ok, report.summary()
    benchmark.extra_info.update(
        {
            "observability": observability,
            "scenarios": len(report.verdicts),
            "transactions": report.transactions,
            "txn_per_second": round(report.throughput),
        }
    )
    if observability == "on":
        spans = runtime.OBS.tracer.spans()
        benchmark.extra_info["spans"] = len(spans)
        assert spans, "enabled run must have produced spans"
