#!/usr/bin/env python3
"""Remote sharded regression over HTTP worker daemons.

Demonstrates the :mod:`repro.dispatch` network transport end to end:

1. spin up two local ``python -m repro.dispatch.worker`` daemons on
   ephemeral ports (real subprocesses -- the same thing you would run
   on two machines),
2. dispatch a sharded regression to them through :class:`HttpHost`
   under the work-stealing schedule and assert the merged digest is
   byte-identical to a serial in-process run,
3. kill one worker and dispatch again to *both* addresses: every shard
   the dead worker would have served fails over to the survivor, and
   the digest still matches.

Run:  python examples/remote_regression.py [scenarios]
"""

import re
import subprocess
import sys

from repro.dispatch import HttpHost, ShardDispatcher, shards_for_hosts
from repro.dispatch.hosts import _child_env
from repro.scenarios.regression import RegressionRunner, build_specs
from repro.workbench import SerialEngine

READY_LINE = re.compile(r"repro-worker listening on http://([\d.]+):(\d+)")


def spawn_worker() -> "tuple[subprocess.Popen, str]":
    """Start a worker daemon on an ephemeral port; return (process, address)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.dispatch.worker", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=_child_env(),
        text=True,
    )
    line = process.stdout.readline()
    match = READY_LINE.search(line)
    if not match:
        process.kill()
        process.wait()
        raise RuntimeError(f"worker did not announce readiness: {line!r}")
    return process, f"{match.group(1)}:{match.group(2)}"


def main(scenarios: int = 12) -> int:
    specs = build_specs(count=scenarios, cycles=200)
    serial = RegressionRunner(specs, engine=SerialEngine()).run()
    print(f"serial reference: {len(specs)} specs, digest {serial.digest()}")

    workers = [spawn_worker() for _ in range(2)]
    processes = [process for process, _ in workers]
    addresses = [address for _, address in workers]
    try:
        print(f"\n== two live workers: {', '.join(addresses)} ==")
        hosts = [HttpHost(address) for address in addresses]
        shards = shards_for_hosts(len(hosts), len(specs))
        outcome = ShardDispatcher(specs, shards=shards, hosts=hosts).run()
        for line in outcome.log_lines():
            print("  " + line)
        if outcome.report.digest() != serial.digest():
            print("DIGEST MISMATCH on the two-worker run", file=sys.stderr)
            return 1
        print(f"  digest {outcome.report.digest()} == serial: OK")

        print(f"\n== worker {addresses[0]} killed; both addresses dispatched ==")
        processes[0].kill()
        processes[0].wait()
        hosts = [HttpHost(address) for address in addresses]
        outcome = ShardDispatcher(
            specs, shards=shards, hosts=hosts, max_attempts=shards + 1
        ).run()
        for line in outcome.log_lines():
            print("  " + line)
        if outcome.report.digest() != serial.digest():
            print("DIGEST MISMATCH after killing a worker", file=sys.stderr)
            return 1
        if outcome.retries == 0:
            print(
                "expected the dead worker to cause at least one retry",
                file=sys.stderr,
            )
            return 1
        print(
            f"  digest {outcome.report.digest()} == serial after "
            f"{outcome.retries} recovered failure(s): OK"
        )
        return 0
    finally:
        for process in processes:
            if process.poll() is None:
                process.kill()
                process.wait()


if __name__ == "__main__":
    sys.exit(main(*[int(a) for a in sys.argv[1:2]]))
