#!/usr/bin/env python3
"""Constrained-random scenario regression with ASM-reference checking.

Demonstrates the :mod:`repro.scenarios` subsystem end to end:

1. one seeded scenario, watched closely -- the sequence items, the
   transaction stream and the scoreboard verdict against the ASM
   golden reference,
2. a fault-injected run proving the scoreboard catches divergence,
3. a coverage-driven loop that re-biases traffic toward unhit
   stimulus bins,
4. a parallel regression per case study through the public
   :class:`repro.Workbench` session API -- seeded scenarios fanned
   across worker processes, one digest-stable report per session.

Run:  python examples/scenario_regression.py [scenarios] [workers]
"""

import sys

from repro import Workbench
from repro.models.master_slave.scenario import MsScenarioSystem
from repro.scenarios import (
    CoverageDrivenLoop,
    CoverageFeedback,
    FaultPlan,
    RandomTraffic,
    StimulusContext,
    TrafficProfile,
    sequence_for_profile,
)


def one_scenario() -> None:
    print("== one seeded scenario, scoreboarded ==")
    system = MsScenarioSystem(
        1, 2, 2, sequence_for_profile("default"), seed=2005
    )
    system.run_cycles(300)
    stream = system.transaction_stream().splitlines()
    for line in stream[:5]:
        print("  " + line)
    print(f"  ... ({len(stream)} transactions total)")
    print("  " + system.check().summary())


def fault_injection() -> None:
    print("\n== the same scenario with a corrupted slave ==")
    system = MsScenarioSystem(
        1, 2, 2, sequence_for_profile("default"), seed=2005,
        fault=FaultPlan("corrupt-read", unit=0, nth=4),
    )
    system.run_cycles(300)
    report = system.check()
    print(f"  {report.matches} matched, {len(report.mismatches)} mismatched")
    if report.mismatches:
        print("  first divergence:")
        for line in report.mismatches[0].describe().splitlines():
            print("    " + line)


def coverage_loop() -> None:
    print("\n== coverage-driven re-biasing ==")
    ctx = StimulusContext(n_targets=2, min_burst=1, max_burst=2)
    feedback = CoverageFeedback(ctx, TrafficProfile())

    def run_batch(profile, round_index):
        system = MsScenarioSystem(
            1, 1, 2, RandomTraffic(profile), seed=3000 + round_index
        )
        system.run_cycles(200)
        return [txn for txn, _ in system.records()]

    loop = CoverageDrivenLoop(feedback, run_batch)
    loop.run(max_rounds=4)
    for line in loop.summary().splitlines():
        print("  " + line)


def regression(scenarios: int, workers: int) -> bool:
    print(f"\n== parallel regression: {scenarios} scenarios/model, {workers} workers ==")
    ok = True
    for model in ("master_slave", "pci"):
        stage = Workbench(model).regress(
            scenarios=scenarios, cycles=300, workers=workers
        )
        report = stage.payload["report"]
        print(f"  -- {model} (stage digest {stage.digest()}) --")
        for line in report.summary().splitlines():
            print("  " + line)
        ok = ok and stage.ok
    return ok


def main(scenarios: int = 40, workers: int = 4) -> int:
    one_scenario()
    fault_injection()
    coverage_loop()
    return 0 if regression(scenarios, workers) else 1


if __name__ == "__main__":
    arguments = [int(a) for a in sys.argv[1:3]]
    sys.exit(main(*arguments))
