#!/usr/bin/env python3
"""From a model-checking counterexample to a waveform.

The paper's two verification legs meet here: the FSM explorer finds a
violation and produces a *complete scenario*; the scenario is replayed
on the translated SystemC design, traced to a VCD file, and the same
PSL property -- now a runtime monitor -- fires at the same point.

Run:  python examples/counterexample_to_simulation.py
"""

from repro.asm import AsmMachine, AsmModel, StateVar, action, choose_min, require
from repro.explorer import ExplorationConfig, counterexample_to_dot, explore
from repro.psl import AssertionProperty, Verdict, build_monitor, parse_formula
from repro.translate import build_runtime


class Master(AsmMachine):
    m_req = StateVar(False)
    m_gnt = StateVar(False)

    @action
    def request(self):
        require(not self.m_req and not self.m_gnt)
        self.m_req = True

    @action
    def done(self):
        require(self.m_gnt)
        self.m_gnt = False


class RacyArbiter(AsmMachine):
    """The seeded bug: no mutual exclusion on grants."""

    @action
    def grant(self):
        masters = self.model.machines_of(Master)
        requesting = [i for i, m in enumerate(masters) if m.m_req]
        require(requesting)
        winner = choose_min(requesting)
        masters[winner].m_req = False
        masters[winner].m_gnt = True


def build() -> AsmModel:
    model = AsmModel("racy_bus")
    Master(model=model, name="m0")
    Master(model=model, name="m1")
    RacyArbiter(model=model, name="arbiter")
    model.seal()
    return model


def main() -> None:
    mutex = parse_formula("never (m0.m_gnt && m1.m_gnt)")

    # -- 1. find the violation at the ASM level ------------------------------
    print("== FSM generation finds the violation ==")
    result = explore(
        build(), ExplorationConfig(properties=[AssertionProperty(mutex, name="mutex")])
    )
    assert result.counterexample is not None
    print(result.summary())
    print(result.counterexample.describe())

    print("\n-- counterexample as DOT (paste into graphviz) --")
    print(counterexample_to_dot(result.counterexample))

    # -- 2. replay the exact scenario on the translated design ----------------
    print("\n== replaying on the SystemC level ==")
    model = build()
    simulator, clock, module = build_runtime(model)

    from repro.sysc import VcdTracer

    tracer = VcdTracer(simulator)
    for signal in module.state_signals.values():
        tracer.trace(signal)

    monitor = build_monitor(mutex, name="mutex")
    monitor.reset()

    calls = result.counterexample.calls()
    scripted = iter(calls)

    # drive the runtime with the scripted scenario instead of a policy
    class ScriptedPolicy:
        name = "scripted"

        def choose(self, enabled, cycle):
            try:
                wanted = next(scripted)
            except StopIteration:
                return None
            return wanted if wanted in enabled else None

    module.policy = ScriptedPolicy()
    for _ in range(len(calls) + 2):
        simulator.run(clock.period)
        monitor.step(module.letter())
        if monitor.verdict() is Verdict.FAILS:
            break

    print(f"monitor verdict after replay: {monitor.verdict().value}")
    assert monitor.verdict() is Verdict.FAILS

    # -- 3. the waveform ---------------------------------------------------------
    vcd = tracer.dump()
    print(f"\n-- VCD waveform ({len(vcd.splitlines())} lines, excerpt) --")
    print("\n".join(vcd.splitlines()[:14]))


if __name__ == "__main__":
    main()
