#!/usr/bin/env python3
"""Figure 2: from a modified UML sequence diagram to a checked property.

Rebuilds the paper's Figure 2 diagram ("if a bus sends a new request,
then in the next cycle the arbiter will be notified and will make the
arbitration...") with the extended notation -- cycle offsets, the E
(eventually) operator, failure text -- extracts the PSL property,
instantiates it onto concrete design objects, and checks it against
conforming and violating traces with the four-valued semantics and
with a compiled online monitor.

Run:  python examples/sequence_diagram_property.py
"""

from repro.psl import Verdict, build_monitor, run_monitor, verdict
from repro.uml import figure2_diagram, instantiate, sequence_to_property


def letter_factory(names):
    def letter(*active):
        return {n: n in active for n in names}

    return letter


def main() -> None:
    diagram = figure2_diagram()
    print("== the Figure 2 diagram ==")
    print(diagram)

    prop = sequence_to_property(diagram)
    print("\n== extracted PSL ==")
    print(prop.formula)
    print(f"report: {prop.report!r}")

    names = sorted(prop.variables())
    letter = letter_factory(names)

    good_trace = [
        letter("bus.new_request"),
        letter("arbiter.notify", "arbiter.arbitrate"),
        letter("bus.send"),
        letter("bus.release"),
        letter(),  # the slave takes its time (E = eventually)
        letter(),
        letter("bus.notify_done"),
        letter("master.forward_notification"),
    ]
    bad_trace = good_trace[:-1] + [letter()]  # notification never forwarded

    print("\n== four-valued semantics ==")
    print(f"conforming trace : {verdict(prop.formula, good_trace).value}")
    print(f"violating trace  : {verdict(prop.formula, bad_trace).value}")

    print("\n== compiled online monitor ==")
    monitor = build_monitor(prop)
    result = run_monitor(monitor, bad_trace)
    print(f"monitor verdict  : {result.value} (cycle {monitor.failure_cycle})")
    print(f"monitor report   : {monitor.report()}")
    assert result is Verdict.FAILS

    print("\n== instantiation onto design objects ==")
    concrete = instantiate(
        diagram, {"master": "master0", "slave": "slave1"},
    )
    concrete_prop = sequence_to_property(concrete)
    print("variables:", ", ".join(sorted(concrete_prop.variables())))

    print("\n== the Figure 1 feedback edge: updating the diagram ==")
    # suppose model checking showed the arbiter needs two cycles:
    diagram.replace_message(1, start_offset=2)
    revised = sequence_to_property(diagram, name="figure2_revised")
    print(revised.formula)


if __name__ == "__main__":
    main()
