#!/usr/bin/env python3
"""The PCI case study end to end (paper Section 4.1/4.2, Table 1).

* builds the PCI ASM model for a chosen number of masters and targets,
* model checks the invariant suite during FSM generation,
* checks the liveness properties on the generated FSM (the results
  "that cannot be verified using simulation"),
* simulates the SystemC PCI model with the full assertion suite and
  reports the delta (ns/cycle) figure of Table 1.

Run:  python examples/pci_bus_verification.py [masters] [targets]
"""

import sys

from repro.abv import AbvHarness
from repro.explorer import ExplorationConfig, check_eventually, explore
from repro.psl import AssertionProperty, build_monitor
from repro.models.pci import (
    PciSystemModel,
    build_pci_model,
    grant_goal,
    pci_coarse_actions,
    pci_domains,
    pci_init_call,
    pci_letter_from_model,
    request_trigger,
)
from repro.models.pci.properties import (
    pci_cover_properties,
    pci_invariant_properties,
    pci_safety_properties,
)


def main(n_masters: int = 2, n_targets: int = 2) -> None:
    # -- model checking --------------------------------------------------------
    print(f"== PCI {n_masters} masters / {n_targets} targets ==")
    model = build_pci_model(n_masters, n_targets)
    properties = [
        AssertionProperty(d.prop, extractor=pci_letter_from_model, name=d.prop.name)
        for d in pci_invariant_properties(n_masters, n_targets)
    ]
    config = ExplorationConfig(
        domains=pci_domains(n_targets),
        init_action=pci_init_call(),
        actions=pci_coarse_actions(n_masters, n_targets),
        properties=properties,
        max_states=60_000,
    )
    result = explore(model, config)
    print(result.summary())

    # -- liveness on the FSM ------------------------------------------------------
    print("\n== liveness (model checking only) ==")
    for master in range(n_masters):
        liveness = check_eventually(
            result.fsm,
            request_trigger(master),
            grant_goal(master),
            f"req{master}_eventually_granted",
        )
        print(liveness.summary())
        if not liveness.holds and liveness.violation is not None:
            print("   (fixed-priority arbitration starves low-priority masters;")
            print("    the lasso witness:)")
            text = liveness.violation.describe(result.fsm)
            print("   " + "\n   ".join(text.splitlines()[:6]))

    # -- assertion-based verification by simulation --------------------------------
    print("\n== SystemC simulation with assertion monitors ==")
    system = PciSystemModel(n_masters, n_targets, seed=2005)
    harness = AbvHarness(system.simulator, system.clock, system.letter)
    monitors = [
        build_monitor(d)
        for d in pci_safety_properties(n_masters, n_targets)
        + pci_cover_properties(n_masters, n_targets)
    ]
    harness.add_monitors(monitors)
    cycles = 50_000
    system.run_cycles(cycles)
    harness.finish()

    wall = system.simulator.stats.wall_seconds
    print(harness.summary())
    print(f"delta = {wall * 1e9 / cycles:.0f} ns/cycle ({cycles} cycles in {wall:.2f}s)")
    stats = system.collect_statistics()
    print(stats.summary())

    from repro.abv import CoverageCollector

    print("\n-- coverage --")
    print(CoverageCollector(monitors).report())


if __name__ == "__main__":
    masters = int(sys.argv[1]) if len(sys.argv) > 1 else 2
    targets = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    main(masters, targets)
