#!/usr/bin/env python3
"""Quickstart: the full Figure 1 flow on a small bus design.

The example walks the paper's whole methodology in one file:

1. capture the design as an ASM model (three machines),
2. state a PSL property,
3. model check by FSM generation (with on-the-fly checking),
4. deliberately break the arbiter and watch the counterexample,
5. run the verified design through a :class:`repro.Workbench` session:
   translate to the SystemC level and re-use the same property as a
   runtime assertion monitor.

Run:  python examples/quickstart.py
"""

from repro.asm import AsmMachine, AsmModel, StateVar, action, choose_min, require
from repro.explorer import ExplorationConfig, explore
from repro.psl import AssertionProperty, Property, parse_formula
from repro.workbench import DUV, Workbench


# -- 1. the design: two masters and an arbiter ------------------------------------


class Master(AsmMachine):
    """Requests the bus, holds the grant until done."""

    m_req = StateVar(False)
    m_gnt = StateVar(False)

    @action
    def request(self):
        require(not self.m_req and not self.m_gnt)
        self.m_req = True

    @action
    def done(self):
        require(self.m_gnt)
        self.m_gnt = False


class Arbiter(AsmMachine):
    """Grants the lowest-index requesting master, one at a time."""

    m_owner = StateVar(-1)

    @action
    def grant(self):
        require(self.m_owner == -1, "bus already granted")
        masters = self.model.machines_of(Master)
        requesting = [i for i, m in enumerate(masters) if m.m_req]
        require(requesting, "no REQ pending")
        winner = choose_min(requesting)
        masters[winner].m_req = False
        masters[winner].m_gnt = True
        self.m_owner = winner

    @action
    def reclaim(self):
        masters = self.model.machines_of(Master)
        require(self.m_owner != -1 and not masters[self.m_owner].m_gnt)
        self.m_owner = -1


class BrokenArbiter(Arbiter):
    """The bug: grants without checking the bus is free."""

    @action
    def grant(self):  # noqa: D102
        masters = self.model.machines_of(Master)
        requesting = [i for i, m in enumerate(masters) if m.m_req]
        require(requesting)
        winner = choose_min(requesting)
        masters[winner].m_req = False
        masters[winner].m_gnt = True


def build(broken: bool = False) -> AsmModel:
    model = AsmModel("quickstart_bus")
    Master(model=model, name="m0")
    Master(model=model, name="m1")
    (BrokenArbiter if broken else Arbiter)(model=model, name="arbiter")
    model.seal()
    return model


# -- 2. the property -----------------------------------------------------------------

MUTEX = Property(
    "mutex",
    parse_formula("never (m0.m_gnt && m1.m_gnt)"),
    report="two masters granted at once",
)


def main() -> None:
    # -- 3. model checking: FSM generation with the property embedded ------
    print("== model checking the correct design ==")
    result = explore(
        build(),
        ExplorationConfig(properties=[AssertionProperty(MUTEX)]),
    )
    print(result.summary())

    # -- 4. the broken design: violation + counterexample scenario ---------
    print("\n== model checking the broken design ==")
    broken = explore(
        build(broken=True),
        ExplorationConfig(properties=[AssertionProperty(MUTEX)]),
    )
    print(broken.summary())
    assert broken.counterexample is not None
    print(broken.counterexample.describe())

    # -- 5. the full flow: verify, translate, simulate with monitors ---------
    print("\n== full design flow (Figure 1) ==")
    duv = DUV(name="quickstart_bus", model_factory=build, directives=[MUTEX])
    workbench = Workbench(duv)
    workbench.explore()
    translated = workbench.translate()
    workbench.simulate_abv(cycles=2_000)
    print(workbench.report().summary())

    print("\n-- generated SystemC (excerpt) --")
    print("\n".join(translated.payload["systemc"].splitlines()[:20]))
    print("\n-- generated C# monitor (excerpt) --")
    print("\n".join(translated.payload["csharp"].splitlines()[:16]))


if __name__ == "__main__":
    main()
