#!/usr/bin/env python3
"""The generic Master/Slave bus case study (paper Section 4.1, Table 2).

Exercises the blocking (burst) vs non-blocking (single word) modes:
model checks the arbiter/transfer invariants, verifies eventual service
for the highest-priority master on the FSM, then simulates the mixed
system and reports per-master throughput plus the burst-atomicity
assertions.

Run:  python examples/master_slave_bus.py [blocking] [non_blocking] [slaves]
"""

import sys

from repro.abv import AbvHarness
from repro.explorer import ExplorationConfig, check_eventually, explore
from repro.psl import AssertionProperty, build_monitor
from repro.models.master_slave import (
    MsSystemModel,
    build_master_slave_model,
    master_slave_domains,
    master_slave_init_call,
    ms_coarse_actions,
    ms_invariant_properties,
    ms_letter_from_model,
    ms_timed_properties,
    want_trigger,
)
from repro.models.master_slave.properties import served_goal


def main(n_blocking: int = 1, n_non_blocking: int = 1, n_slaves: int = 2) -> None:
    n_masters = n_blocking + n_non_blocking
    print(
        f"== Master/Slave bus: {n_blocking} blocking + "
        f"{n_non_blocking} non-blocking masters, {n_slaves} slaves =="
    )

    # -- model checking ----------------------------------------------------------
    model = build_master_slave_model(n_blocking, n_non_blocking, n_slaves)
    properties = [
        AssertionProperty(d.prop, extractor=ms_letter_from_model, name=d.prop.name)
        for d in ms_invariant_properties(n_masters, n_slaves)
    ]
    config = ExplorationConfig(
        domains=master_slave_domains(n_slaves),
        init_action=master_slave_init_call(),
        actions=ms_coarse_actions(n_masters),
        properties=properties,
        max_states=60_000,
    )
    result = explore(model, config)
    print(result.summary())

    print("\n== liveness on the FSM ==")
    highest = check_eventually(
        result.fsm, want_trigger(0), served_goal(0), "master0_served"
    )
    print(highest.summary())
    lowest = check_eventually(
        result.fsm,
        want_trigger(n_masters - 1),
        served_goal(n_masters - 1),
        f"master{n_masters - 1}_served",
    )
    print(lowest.summary())
    if not lowest.holds:
        print("   (the fixed-priority arbiter can starve the last master)")

    # -- simulation with monitors ---------------------------------------------------
    print("\n== SystemC simulation ==")
    system = MsSystemModel(n_blocking, n_non_blocking, n_slaves, seed=2005)
    harness = AbvHarness(system.simulator, system.clock, system.letter)
    monitors = [
        build_monitor(d)
        for d in ms_invariant_properties(
            n_masters, n_slaves, include_handshake=False
        )
        + ms_timed_properties(n_masters, n_slaves, system.blocking_flags)
    ]
    harness.add_monitors(monitors)
    cycles = 30_000
    system.run_cycles(cycles)
    harness.finish()

    wall = system.simulator.stats.wall_seconds
    print(harness.summary())
    print(f"delta = {wall * 1e9 / cycles:.0f} ns/cycle")

    print("\n-- per-master throughput --")
    for master in system.masters:
        mode = "blocking " if master.blocking else "non-block"
        print(
            f"  {master.name:<12} [{mode}] {len(master.transactions):>5} "
            f"transfers, {master.words_moved:>6} words, "
            f"{master.wait_cycles:>6} wait cycles"
        )
    print(system.collect_statistics().summary())


if __name__ == "__main__":
    blocking = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    non_blocking = int(sys.argv[2]) if len(sys.argv) > 2 else 1
    slaves = int(sys.argv[3]) if len(sys.argv) > 3 else 2
    main(blocking, non_blocking, slaves)
